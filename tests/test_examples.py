"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "dga_hunting.py", "campus_investigation.py",
     "exposure_benchmark.py", "streaming_detection.py",
     "federated_campuses.py", "host_forensics.py"],
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
