"""Unit tests for the public suffix list implementation."""

import pytest

from repro.dns.psl import PublicSuffixList, default_psl
from repro.errors import DomainNameError


@pytest.fixture()
def small_psl():
    return PublicSuffixList(
        ["com", "co.uk", "uk", "*.ck", "!www.ck", "blogspot.com"]
    )


class TestPublicSuffixMatching:
    def test_simple_tld(self, small_psl):
        assert small_psl.public_suffix("example.com") == "com"

    def test_longest_rule_wins(self, small_psl):
        assert small_psl.public_suffix("shop.example.co.uk") == "co.uk"

    def test_private_suffix_beats_parent(self, small_psl):
        assert small_psl.public_suffix("me.blogspot.com") == "blogspot.com"

    def test_wildcard_rule(self, small_psl):
        assert small_psl.public_suffix("example.foo.ck") == "foo.ck"

    def test_exception_rule_beats_wildcard(self, small_psl):
        assert small_psl.public_suffix("www.ck") == "ck"
        assert small_psl.registered_domain("www.ck") == "www.ck"

    def test_unlisted_tld_is_suffix(self, small_psl):
        assert small_psl.public_suffix("example.zz") == "zz"
        assert small_psl.registered_domain("www.example.zz") == "example.zz"


class TestRegisteredDomain:
    def test_basic(self, small_psl):
        assert small_psl.registered_domain("a.b.example.com") == "example.com"

    def test_exact_e2ld_maps_to_itself(self, small_psl):
        assert small_psl.registered_domain("example.com") == "example.com"

    def test_bare_suffix_raises(self, small_psl):
        with pytest.raises(DomainNameError):
            small_psl.registered_domain("co.uk")

    def test_is_public_suffix(self, small_psl):
        assert small_psl.is_public_suffix("co.uk")
        assert not small_psl.is_public_suffix("example.co.uk")


class TestDefaultPsl:
    def test_is_cached_singleton(self):
        assert default_psl() is default_psl()

    def test_has_rules(self):
        assert default_psl().rule_count > 100

    @pytest.mark.parametrize(
        ("hostname", "e2ld"),
        [
            ("maps.google.com", "google.com"),
            ("www.bbc.co.uk", "bbc.co.uk"),
            ("a.b.c.example.com.cn", "example.com.cn"),
            ("cdn7.akamaized.net", "cdn7.akamaized.net"),
            ("x.y.duckdns.org", "y.duckdns.org"),
            ("oorfapjflmp.ws", "oorfapjflmp.ws"),
            ("fattylivercur.bid", "fattylivercur.bid"),
        ],
    )
    def test_real_world_cases(self, hostname, e2ld):
        assert default_psl().registered_domain(hostname) == e2ld
