"""Tests for repro.obs.metrics and the snapshot/export round-trip."""

import json
import threading

import pytest

from repro.obs.export import (
    SNAPSHOT_SCHEMA_VERSION,
    load_snapshot,
    snapshot_to_dict,
    write_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_negative_increment(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0.0

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(2)
        assert counter.snapshot() == {"value": 2.0}


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-2.5)
        assert gauge.value == 7.5

    def test_can_go_negative(self):
        gauge = Gauge("g")
        gauge.add(-3)
        assert gauge.value == -3.0


class TestHistogram:
    def test_exact_count_sum_min_max_mean(self):
        hist = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 8.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(13.0)
        assert hist.min == 0.5
        assert hist.max == 8.0
        assert hist.mean == pytest.approx(3.25)

    def test_empty_histogram_reports_zeros(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(95) == 0.0

    def test_bucket_assignment_includes_upper_bound(self):
        hist = Histogram("h", buckets=[1.0, 2.0])
        hist.observe(1.0)  # lands in the <= 1.0 bucket
        hist.observe(2.5)  # lands in the overflow bucket
        snap = hist.snapshot()
        assert snap["buckets"]["le_1"] == 1
        assert snap["buckets"]["le_2"] == 0
        assert snap["buckets"]["le_inf"] == 1

    def test_percentiles_are_ordered_and_bounded(self):
        hist = Histogram("h", buckets=list(DEFAULT_TIME_BUCKETS))
        values = [0.001 * (i + 1) for i in range(100)]
        for value in values:
            hist.observe(value)
        p50, p95, p99 = (hist.percentile(q) for q in (50, 95, 99))
        assert hist.min <= p50 <= p95 <= p99 <= hist.max

    def test_overflow_percentile_is_observed_max(self):
        hist = Histogram("h", buckets=[1.0])
        hist.observe(50.0)
        assert hist.percentile(99) == 50.0

    def test_percentile_range_validated(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_rejects_empty_and_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[1.0, 1.0])


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.counter("x").value == 0.0

    def test_contains_get_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert "a" in registry and "b" in registry and "c" not in registry
        assert registry.get("c") is None
        assert registry.names() == ["a", "b"]

    def test_default_registry_is_process_global(self):
        assert default_registry() is default_registry()

    def test_thread_safety_smoke(self):
        """Concurrent increments from several threads are all counted."""
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 2000

        def work():
            counter = registry.counter("shared")
            hist = registry.histogram("lat", buckets=[0.5, 1.0])
            for i in range(per_thread):
                counter.inc()
                hist.observe((i % 3) / 2.0)

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("shared").value == threads_n * per_thread
        assert registry.histogram("lat").count == threads_n * per_thread


class TestSnapshotRoundTrip:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("records").inc(42)
        registry.gauge("size").set(7.5)
        hist = registry.histogram("stage.x.seconds", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(2.0)
        return registry

    def test_snapshot_schema(self):
        snap = snapshot_to_dict(self._populated())
        assert snap["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert snap["counters"]["records"]["value"] == 42.0
        assert snap["gauges"]["size"]["value"] == 7.5
        hist = snap["histograms"]["stage.x.seconds"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(2.05)
        assert hist["buckets"] == {"le_0.1": 1, "le_1": 0, "le_inf": 1}

    def test_snapshot_is_json_serializable(self):
        json.dumps(snapshot_to_dict(self._populated()))

    def test_write_and_load_round_trip(self, tmp_path):
        registry = self._populated()
        path = write_snapshot(registry, tmp_path / "nested" / "metrics.json")
        assert path.exists()
        assert load_snapshot(path) == snapshot_to_dict(registry)

    def test_registry_snapshot_method_matches_export(self):
        registry = self._populated()
        assert registry.snapshot() == snapshot_to_dict(registry)
