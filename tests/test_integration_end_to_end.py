"""Full-system integration test: trace -> pipeline -> detection -> mining.

Exercises every stage on a freshly generated trace (not the shared
fixture), including persistence round-trips between stages — the way a
deployment would run from logs on disk.
"""

import numpy as np
import pytest

from repro import (
    IntelligenceFeed,
    MaliciousDomainDetector,
    PipelineConfig,
    SimulatedThreatBook,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
    expand_from_seeds,
)
from repro.core.clustering import DomainClusterer
from repro.dns.dhcp import DhcpLog
from repro.dns.logfmt import DnsTraceReader
from repro.dns.types import DnsQuery, DnsResponse
from repro.embedding.line import LineConfig
from repro.ml import roc_auc_score
from repro.netflow import NetflowSimulator, mine_cluster_patterns
from repro.simulation.groundtruth import GroundTruth

# Full pipeline over a fresh trace: by far the slowest file in the
# suite. The CI matrix deselects it (-m "not slow"); the bench job and
# plain local `pytest` still run it.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """Generate a trace, persist it, and reload from disk."""
    directory = tmp_path_factory.mktemp("capture")
    config = SimulationConfig.tiny(seed=77)
    config.duration_days = 2.0
    trace = TraceGenerator(config).generate()
    trace.save(directory)

    records = list(DnsTraceReader(directory / "dns.log"))
    queries = [r for r in records if isinstance(r, DnsQuery)]
    responses = [r for r in records if isinstance(r, DnsResponse)]
    dhcp = DhcpLog.load(directory / "dhcp.log")
    truth = GroundTruth.load(directory / "groundtruth.tsv")
    return queries, responses, dhcp, truth


@pytest.fixture(scope="module")
def full_run(workspace):
    queries, responses, dhcp, truth = workspace
    detector = MaliciousDomainDetector(
        PipelineConfig(
            embedding=LineConfig(dimension=16, total_samples=150_000, seed=9)
        )
    )
    detector.process(queries, responses, dhcp)
    feed = IntelligenceFeed(truth)
    virustotal = SimulatedVirusTotal(truth)
    dataset = build_labeled_dataset(feed, virustotal, detector.domains)
    detector.fit(dataset)
    return detector, dataset, truth, virustotal, responses


class TestEndToEnd:
    def test_detection_quality_from_disk(self, full_run):
        detector, dataset, truth, __, __ = full_run
        scores = detector.decision_scores(dataset.domains)
        assert roc_auc_score(dataset.labels, scores) > 0.85  # training fit

    def test_segment_kernel_matches_add_at_quality(self, workspace, full_run):
        """Downstream SVM AUC is kernel-independent (within SGD noise).

        The fused ``segment`` kernel draws a different random stream
        than the ``add_at`` reference, so the embeddings differ vector
        by vector — but the detection quality they support must not.
        """
        queries, responses, dhcp, truth = workspace
        detector, dataset, __, __, __ = full_run  # default: segment
        reference = MaliciousDomainDetector(
            PipelineConfig(
                embedding=LineConfig(
                    dimension=16,
                    total_samples=150_000,
                    seed=9,
                    kernel="add_at",
                )
            )
        )
        reference.process(queries, responses, dhcp)
        reference.fit(dataset)
        segment_auc = roc_auc_score(
            dataset.labels, detector.decision_scores(dataset.domains)
        )
        add_at_auc = roc_auc_score(
            dataset.labels, reference.decision_scores(dataset.domains)
        )
        assert add_at_auc > 0.85
        assert abs(segment_auc - add_at_auc) < 0.05

    def test_scores_rank_unlabeled_malicious_domains(self, full_run):
        """Generalization: unlabeled malicious score above unlabeled benign."""
        detector, dataset, truth, __, __ = full_run
        labeled = set(dataset.domains)
        unlabeled = [d for d in detector.domains if d not in labeled]
        malicious = [d for d in unlabeled if truth.is_malicious(d)]
        benign = [d for d in unlabeled if not truth.is_malicious(d)]
        if len(malicious) < 5 or len(benign) < 5:
            pytest.skip("not enough unlabeled domains in tiny trace")
        mal_scores = detector.decision_scores(malicious)
        ben_scores = detector.decision_scores(benign)
        assert np.median(mal_scores) > np.median(ben_scores)

    def test_cluster_mining_and_expansion(self, full_run):
        detector, dataset, truth, virustotal, __ = full_run
        clusterer = DomainClusterer(k_min=4, k_max=30, seed=2)
        clusters = clusterer.fit(
            detector.domains, detector.features_for(detector.domains)
        )
        assert len(clusters) >= 4
        seeds = dataset.malicious_domains[:5]
        result = expand_from_seeds(clusters, seeds, virustotal)
        discovered = result.true_domains + result.suspicious_domains
        if discovered:
            truly_malicious = sum(truth.is_malicious(d) for d in discovered)
            assert truly_malicious / len(discovered) > 0.5

    def test_netflow_patterns_join(self, full_run):
        detector, dataset, truth, __, responses = full_run
        clusterer = DomainClusterer(k_min=4, k_max=30, seed=2)
        clusters = clusterer.fit(
            detector.domains, detector.features_for(detector.domains)
        )
        simulator = NetflowSimulator(truth, seed=3)
        flows = list(simulator.flows_from(responses))
        patterns = mine_cluster_patterns(clusters, flows)
        assert len(patterns) == len(clusters)
        assert any(p.flow_count > 0 for p in patterns)

    def test_threatbook_annotation(self, full_run):
        detector, dataset, truth, __, __ = full_run
        clusterer = DomainClusterer(k_min=4, k_max=30, seed=2)
        clusterer.fit(
            detector.domains, detector.features_for(detector.domains)
        )
        reports = clusterer.annotate(SimulatedThreatBook(truth))
        categories = {r.dominant_category for r in reports}
        assert categories & {"dga", "spam", "phishing", "c2", "fastflux"}
