"""Unit tests for the admission controller (bounded concurrency,
bounded queue, deadlines, Retry-After estimates)."""

import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import (
    ADMITTED,
    DEADLINE,
    SHED,
    AdmissionController,
    AdmissionResult,
    Deadline,
)


@pytest.fixture()
def metrics():
    return MetricsRegistry()


class TestDeadline:
    def test_remaining_counts_down(self):
        deadline = Deadline.after(10.0)
        assert 9.0 < deadline.remaining() <= 10.0
        assert not deadline.expired

    def test_expired_after_budget(self):
        deadline = Deadline.after(-0.001)
        assert deadline.expired
        assert deadline.remaining() <= 0.0


class TestAcquire:
    def test_admits_under_limit(self, metrics):
        controller = AdmissionController(2, 0, metrics=metrics)
        first = controller.try_acquire(Deadline.after(1.0))
        second = controller.try_acquire(Deadline.after(1.0))
        assert first.admitted and second.admitted
        assert controller.inflight == 2
        assert metrics.counter("serve.admitted").value == 2

    def test_release_frees_slot(self, metrics):
        controller = AdmissionController(1, 0, metrics=metrics)
        controller.try_acquire(Deadline.after(1.0))
        controller.release(0.01)
        assert controller.inflight == 0
        assert controller.try_acquire(Deadline.after(1.0)).admitted

    def test_sheds_when_queue_full(self, metrics):
        controller = AdmissionController(1, 0, metrics=metrics)
        controller.try_acquire(Deadline.after(1.0))
        result = controller.try_acquire(Deadline.after(1.0))
        assert result.status == SHED
        assert not result.admitted
        assert result.retry_after_seconds >= 1
        assert metrics.counter("serve.shed").value == 1
        # A shed request holds nothing: no release needed, slot intact.
        assert controller.inflight == 1
        assert controller.waiting == 0

    def test_queued_request_admitted_on_release(self, metrics):
        controller = AdmissionController(1, 4, metrics=metrics)
        controller.try_acquire(Deadline.after(5.0))
        outcome: dict[str, AdmissionResult] = {}

        def waiter() -> None:
            outcome["result"] = controller.try_acquire(Deadline.after(5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = time.monotonic() + 2.0
        while controller.waiting == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert controller.waiting == 1
        controller.release(0.01)
        thread.join(timeout=2.0)
        assert outcome["result"].status == ADMITTED
        assert outcome["result"].queue_wait_seconds >= 0.0
        assert metrics.histogram("serve.queue_wait.seconds").count == 1

    def test_deadline_expires_while_queued(self, metrics):
        controller = AdmissionController(1, 4, metrics=metrics)
        controller.try_acquire(Deadline.after(5.0))
        result = controller.try_acquire(Deadline.after(0.05))
        assert result.status == DEADLINE
        assert not result.admitted
        assert controller.waiting == 0
        assert metrics.counter("serve.deadline_exceeded").value == 1

    def test_expired_deadline_rejected_even_with_queue_room(self, metrics):
        controller = AdmissionController(1, 8, metrics=metrics)
        controller.try_acquire(Deadline.after(5.0))
        result = controller.try_acquire(Deadline.after(-1.0))
        assert result.status == DEADLINE


class TestRetryAfter:
    def test_clamped_to_at_least_one_second(self, metrics):
        controller = AdmissionController(1, 0, metrics=metrics)
        controller.try_acquire(Deadline.after(1.0))
        shed = controller.try_acquire(Deadline.after(1.0))
        assert 1 <= shed.retry_after_seconds <= 30

    def test_grows_with_observed_service_time(self, metrics):
        controller = AdmissionController(1, 0, metrics=metrics)
        controller.try_acquire(Deadline.after(1.0))
        # Teach the EWMA that requests take ~20s each.
        for __ in range(20):
            controller.release(20.0)
            controller.try_acquire(Deadline.after(1.0))
        shed = controller.try_acquire(Deadline.after(1.0))
        assert shed.retry_after_seconds > 1
        assert shed.retry_after_seconds <= 30  # still clamped


class TestValidationAndAccounting:
    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionController(0, 4)
        with pytest.raises(ValueError, match="queue_depth"):
            AdmissionController(1, -1)

    def test_release_without_acquire_rejected(self, metrics):
        controller = AdmissionController(1, 0, metrics=metrics)
        with pytest.raises(RuntimeError, match="release"):
            controller.release()

    def test_gauges_track_state(self, metrics):
        controller = AdmissionController(2, 2, metrics=metrics)
        controller.try_acquire(Deadline.after(1.0))
        assert metrics.gauge("serve.inflight").value == 1
        controller.release()
        assert metrics.gauge("serve.inflight").value == 0


class TestConcurrency:
    def test_inflight_never_exceeds_limit(self, metrics):
        controller = AdmissionController(3, 16, metrics=metrics)
        peak = {"value": 0, "current": 0}
        lock = threading.Lock()
        failures: list[str] = []

        def worker() -> None:
            for __ in range(25):
                result = controller.try_acquire(Deadline.after(5.0))
                if result.status == SHED:
                    continue
                if result.status == DEADLINE:
                    failures.append("deadline under generous budget")
                    return
                with lock:
                    peak["current"] += 1
                    peak["value"] = max(peak["value"], peak["current"])
                time.sleep(0.001)
                with lock:
                    peak["current"] -= 1
                controller.release(0.001)

        threads = [threading.Thread(target=worker) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        assert 1 <= peak["value"] <= 3
        assert controller.inflight == 0
        assert controller.waiting == 0
