"""Netflow simulation over a full simulated trace (integration)."""

import pytest

from repro.netflow import NetflowSimulator, mine_cluster_patterns
from repro.core.clustering import DomainCluster
import numpy as np


@pytest.fixture(scope="module")
def flows(tiny_trace):
    simulator = NetflowSimulator(
        tiny_trace.ground_truth, benign_sampling_rate=0.1, seed=2
    )
    return list(simulator.flows_from(tiny_trace.responses))


class TestTraceScaleNetflow:
    def test_flows_generated(self, flows):
        assert len(flows) > 100

    def test_every_malicious_resolution_has_a_flow(self, tiny_trace, flows):
        truth = tiny_trace.ground_truth
        malicious_resolutions = sum(
            1
            for r in tiny_trace.responses
            if not r.nxdomain
            and r.resolved_ips
            and truth.is_malicious(r.qname)
        )
        malicious_flows = sum(
            1 for f in flows if truth.is_malicious(f.domain)
        )
        # qnames of malicious domains equal their e2LD in the simulator,
        # so counts must match exactly.
        assert malicious_flows == malicious_resolutions

    def test_flow_sources_are_campus_hosts(self, flows):
        assert all(f.src_ip.startswith("10.20.") for f in flows[:200])

    def test_family_cluster_shares_infrastructure(self, tiny_trace, flows):
        """Flows of one family concentrate on its campaign addresses."""
        family, domains = max(
            tiny_trace.families.items(), key=lambda kv: len(kv[1])
        )
        cluster = DomainCluster(0, list(domains), np.zeros(2))
        pattern = mine_cluster_patterns([cluster], flows)[0]
        if pattern.flow_count == 0:
            pytest.skip("family unresolved in tiny trace")
        assert len(pattern.server_ips) <= max(len(domains), 4)
        assert pattern.campus_hosts
