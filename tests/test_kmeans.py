"""Unit tests for k-means with k-means++ initialization."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.kmeans import KMeans, _kmeans_plus_plus, cluster_means, cluster_sums


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
    data = np.vstack([rng.normal(c, 0.4, size=(50, 2)) for c in centers])
    return data, centers


class TestKMeans:
    def test_recovers_blob_centers(self, blobs):
        data, true_centers = blobs
        model = KMeans(n_clusters=3, seed=1).fit(data)
        # Each true center must be close to exactly one found center.
        matched = set()
        for true_center in true_centers:
            distances = np.linalg.norm(
                model.cluster_centers_ - true_center, axis=1
            )
            nearest = int(np.argmin(distances))
            assert distances[nearest] < 0.5
            matched.add(nearest)
        assert len(matched) == 3

    def test_labels_partition_data(self, blobs):
        data, __ = blobs
        model = KMeans(n_clusters=3, seed=1).fit(data)
        sizes = np.bincount(model.labels_, minlength=3)
        assert sizes.sum() == data.shape[0]
        assert np.all(sizes > 30)

    def test_inertia_decreases_with_more_clusters(self, blobs):
        data, __ = blobs
        inertia_2 = KMeans(n_clusters=2, seed=1).fit(data).inertia_
        inertia_3 = KMeans(n_clusters=3, seed=1).fit(data).inertia_
        assert inertia_3 < inertia_2

    def test_predict_assigns_nearest_center(self, blobs):
        data, __ = blobs
        model = KMeans(n_clusters=3, seed=1).fit(data)
        assignments = model.predict(np.array([[0.1, 0.1], [5.9, 0.2]]))
        centers = model.cluster_centers_
        assert np.linalg.norm(centers[assignments[0]] - [0, 0]) < 1.0
        assert np.linalg.norm(centers[assignments[1]] - [6, 0]) < 1.0

    def test_fit_predict_matches_labels(self, blobs):
        data, __ = blobs
        model = KMeans(n_clusters=3, seed=1)
        labels = model.fit_predict(data)
        assert np.array_equal(labels, model.labels_)

    def test_deterministic_with_seed(self, blobs):
        data, __ = blobs
        a = KMeans(n_clusters=3, seed=9).fit(data)
        b = KMeans(n_clusters=3, seed=9).fit(data)
        assert np.array_equal(a.labels_, b.labels_)

    def test_k_equals_n(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        model = KMeans(n_clusters=3, seed=0).fit(data)
        assert model.inertia_ == pytest.approx(0.0)

    def test_duplicate_points(self):
        data = np.vstack([np.zeros((5, 2)), np.ones((5, 2))])
        model = KMeans(n_clusters=2, seed=0).fit(data)
        assert model.inertia_ == pytest.approx(0.0)


class TestValidation:
    def test_more_clusters_than_samples(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_not_fitted_predict(self):
        with pytest.raises(NotFittedError):
            KMeans(n_clusters=2).predict(np.zeros((2, 2)))

    def test_bad_constructor(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, n_init=0)

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=2).fit(np.zeros(5))


class TestKMeansPlusPlus:
    def test_centers_are_data_points(self, blobs, rng):
        data, __ = blobs
        centers = _kmeans_plus_plus(data, 3, rng)
        for center in centers:
            assert np.any(np.all(np.isclose(data, center), axis=1))

    def test_spreads_across_blobs(self, blobs, rng):
        data, __ = blobs
        centers = _kmeans_plus_plus(data, 3, rng)
        # Pairwise distances between picked seeds should be blob-scale.
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.linalg.norm(centers[i] - centers[j]) > 2.0


class TestClusterSums:
    def test_matches_per_cluster_loop(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(200, 6))
        labels = rng.integers(0, 5, size=200)
        sums, counts = cluster_sums(data, labels, 5)
        for cluster in range(5):
            members = data[labels == cluster]
            assert counts[cluster] == members.shape[0]
            np.testing.assert_allclose(
                sums[cluster], members.sum(axis=0), atol=1e-9
            )

    def test_empty_clusters_zeroed(self):
        data = np.ones((4, 2))
        labels = np.array([0, 0, 3, 3])
        means, counts = cluster_means(data, labels, 5)
        np.testing.assert_array_equal(counts, [2, 0, 0, 2, 0])
        np.testing.assert_array_equal(means[1], np.zeros(2))
        np.testing.assert_array_equal(means[0], np.ones(2))

    def test_lloyd_update_unchanged_qualitatively(self):
        # Same blobs must still recover the same partition.
        rng = np.random.default_rng(1)
        blobs = np.vstack(
            [rng.normal(loc=c, scale=0.2, size=(30, 2)) for c in (0, 5, 10)]
        )
        model = KMeans(n_clusters=3, seed=0).fit(blobs)
        labels = model.labels_
        for start in (0, 30, 60):
            group = labels[start : start + 30]
            assert np.all(group == group[0])
