"""Unit tests for traffic statistics (Figure 1 series)."""

import numpy as np
import pytest

from repro.analysis.stats import compute_traffic_statistics
from repro.dns.types import DnsQuery


def query(t, qname="www.example.com"):
    return DnsQuery(t, 1, "10.0.0.1", qname)


class TestComputeTrafficStatistics:
    def test_hourly_binning(self):
        queries = [query(10.0), query(3500.0), query(3700.0), query(7300.0)]
        stats = compute_traffic_statistics(queries, bin_seconds=3600.0)
        assert stats.bin_count == 3
        assert stats.query_volume.tolist() == [2, 1, 1]
        assert stats.total_queries == 4

    def test_unique_fqdn_vs_e2ld(self):
        queries = [
            query(10.0, "a.example.com"),
            query(20.0, "b.example.com"),
            query(30.0, "other.net"),
        ]
        stats = compute_traffic_statistics(queries, bin_seconds=3600.0)
        assert stats.unique_fqdns[0] == 3
        assert stats.unique_e2lds[0] == 2
        assert stats.total_unique_fqdns == 3
        assert stats.total_unique_e2lds == 2

    def test_invalid_names_excluded_from_e2ld_series(self):
        queries = [query(10.0, "bad name!"), query(20.0, "ok.example.com")]
        stats = compute_traffic_statistics(queries, bin_seconds=3600.0)
        assert stats.unique_fqdns[0] == 2  # FQDNs counted as observed
        assert stats.unique_e2lds[0] == 1

    def test_empty_trace(self):
        stats = compute_traffic_statistics([])
        assert stats.bin_count == 0
        assert stats.total_queries == 0

    def test_gap_bins_are_zero(self):
        queries = [query(10.0), query(4 * 3600.0 + 5)]
        stats = compute_traffic_statistics(queries, bin_seconds=3600.0)
        assert stats.query_volume.tolist() == [1, 0, 0, 0, 1]

    def test_invalid_bin_rejected(self):
        with pytest.raises(ValueError):
            compute_traffic_statistics([], bin_seconds=0.0)

    def test_peak_bin(self):
        queries = [query(10.0), query(3700.0), query(3800.0)]
        stats = compute_traffic_statistics(queries, bin_seconds=3600.0)
        assert stats.peak_bin() == 1

    def test_daily_profile_shape(self):
        queries = [
            query(day * 86400.0 + hour * 3600.0 + 5)
            for day in range(3)
            for hour in range(24)
        ]
        stats = compute_traffic_statistics(queries, bin_seconds=3600.0)
        profile = stats.daily_profile()
        assert profile.shape == (24,)
        assert np.allclose(profile, 1.0)


class TestDiurnalShapeOnSimulatedTrace:
    def test_day_night_cycle_visible(self, tiny_trace):
        stats = compute_traffic_statistics(
            tiny_trace.queries, bin_seconds=3600.0
        )
        profile = stats.daily_profile()
        night = profile[2:5].mean()
        day = profile[10:17].mean()
        assert day > 2 * night
