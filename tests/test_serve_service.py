"""HTTP smoke tests for the scoring service (ephemeral port)."""

import http.client
import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    DomainScorer,
    ModelRegistry,
    ScoringService,
    ServiceConfig,
)


def _request(port, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = None if body is None else json.dumps(body).encode()
        connection.request(method, path, body=payload, headers=headers or {})
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        connection.close()


def _get(port, path):
    return _request(port, "GET", path)


def _post(port, path, body):
    return _request(port, "POST", path, body=body)


@pytest.fixture()
def service_setup(make_bundle, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    registry.publish(make_bundle(seed=1))
    metrics = MetricsRegistry()
    config = ServiceConfig(
        port=0,
        max_request_bytes=4096,
        max_batch_size=8,
        request_timeout_seconds=5.0,
    )
    service = ScoringService(registry, config, metrics=metrics)
    __, port = service.start()
    yield service, registry, port, metrics, make_bundle
    service.stop()


class TestHealth:
    def test_healthz(self, service_setup):
        __, __, port, __, __ = service_setup
        assert _get(port, "/healthz") == (200, {"status": "ok"})

    def test_readyz_with_model(self, service_setup):
        __, __, port, __, __ = service_setup
        status, body = _get(port, "/readyz")
        assert status == 200
        assert body == {"ready": True, "model_version": 1}

    def test_unready_without_model(self, tmp_path):
        registry = ModelRegistry(tmp_path / "empty")
        service = ScoringService(
            registry, ServiceConfig(port=0), metrics=MetricsRegistry()
        )
        assert service.ready is False
        with service:
            __, port = service._server.server_address[:2]
            status, body = _get(port, "/readyz")
            assert status == 503
            assert body["ready"] is False
            status, body = _post(port, "/v1/score", {"domain": "a.example"})
            assert status == 503

    def test_unknown_paths_404(self, service_setup):
        __, __, port, __, __ = service_setup
        assert _get(port, "/nope")[0] == 404
        assert _post(port, "/nope", {})[0] == 404


class TestScore:
    def test_http_matches_in_process_scorer(self, service_setup):
        __, registry, port, __, __ = service_setup
        scorer = DomainScorer(registry.load(1), cache_size=0)
        domains = registry.load(1).domains[:5]
        status, body = _post(port, "/v1/score", {"domains": domains})
        assert status == 200
        assert body["model_version"] == 1
        # One batch on both sides: same shapes -> bit-identical scores.
        verdicts = scorer.score_batch(domains)
        for result, verdict in zip(body["results"], verdicts):
            assert result["domain"] == verdict.domain
            assert result["score"] == verdict.score
            assert result["malicious"] == verdict.malicious
            assert result["known"] is True

    def test_single_domain_form(self, service_setup):
        __, registry, port, __, __ = service_setup
        domain = registry.load(1).domains[0]
        status, body = _post(port, "/v1/score", {"domain": domain})
        assert status == 200
        assert len(body["results"]) == 1
        assert body["results"][0]["domain"] == domain

    def test_unknown_domain_flagged(self, service_setup):
        __, __, port, __, __ = service_setup
        status, body = _post(
            port, "/v1/score", {"domains": ["never-seen.example"]}
        )
        assert status == 200
        assert body["results"][0]["known"] is False

    def test_bad_payloads_rejected(self, service_setup):
        __, __, port, __, __ = service_setup
        assert _post(port, "/v1/score", {})[0] == 400
        assert _post(port, "/v1/score", {"domains": []})[0] == 400
        assert _post(port, "/v1/score", {"domains": "x.example"})[0] == 400
        assert _post(port, "/v1/score", {"domains": [1, 2]})[0] == 400

    def test_batch_cap_enforced(self, service_setup):
        __, __, port, __, __ = service_setup
        batch = [f"d{i}.example" for i in range(9)]  # cap is 8
        status, body = _post(port, "/v1/score", {"domains": batch})
        assert status == 413
        assert "max_batch_size" in body["error"]

    def test_oversize_body_rejected(self, service_setup):
        __, __, port, __, __ = service_setup
        huge = {"domains": ["x" * 5000 + ".example"]}  # > 4096 bytes
        assert _post(port, "/v1/score", huge)[0] == 413

    def test_non_json_body_rejected(self, service_setup):
        __, __, port, __, __ = service_setup
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.request("POST", "/v1/score", body=b"not json {")
            assert connection.getresponse().status == 400
        finally:
            connection.close()

    def test_missing_content_length_rejected(self, service_setup):
        __, __, port, __, __ = service_setup
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/score")
            connection.endheaders()
            assert connection.getresponse().status == 411
        finally:
            connection.close()


class TestReload:
    def test_reload_swaps_to_new_version(self, service_setup):
        service, registry, port, __, make_bundle = service_setup
        registry.publish(make_bundle(seed=2))
        status, body = _post(port, "/admin/reload", {})
        assert status == 200
        assert body == {"model_version": 2, "previous_version": 1}
        assert service.active_version == 2
        status, body = _post(
            port, "/v1/score", {"domains": [registry.load(2).domains[0]]}
        )
        assert body["model_version"] == 2
        assert body["results"][0]["known"] is True

    def test_reload_to_explicit_version(self, service_setup):
        __, registry, port, __, make_bundle = service_setup
        registry.publish(make_bundle(seed=2))
        _post(port, "/admin/reload", {})
        status, body = _post(port, "/admin/reload", {"version": 1})
        assert status == 200
        assert body["model_version"] == 1

    def test_reload_missing_version_conflicts(self, service_setup):
        __, __, port, __, __ = service_setup
        status, body = _post(port, "/admin/reload", {"version": 99})
        assert status == 409
        assert "error" in body

    def test_reload_bad_version_type(self, service_setup):
        __, __, port, __, __ = service_setup
        assert _post(port, "/admin/reload", {"version": "two"})[0] == 400

    def test_reload_under_concurrent_scoring(self, service_setup):
        """Requests racing a hot swap all succeed on a whole model."""
        __, registry, port, __, make_bundle = service_setup
        domain = registry.load(1).domains[0]
        errors: list[object] = []

        def hammer() -> None:
            for __ in range(10):
                status, body = _post(
                    port, "/v1/score", {"domains": [domain]}
                )
                if status != 200 or body["model_version"] not in (1, 2):
                    errors.append((status, body))
                    return

        threads = [threading.Thread(target=hammer) for __ in range(4)]
        for thread in threads:
            thread.start()
        registry.publish(make_bundle(seed=2))
        _post(port, "/admin/reload", {})
        for thread in threads:
            thread.join()
        assert errors == []


class TestMetrics:
    def test_metrics_endpoint_reports_serving_metrics(self, service_setup):
        __, registry, port, metrics, __ = service_setup
        _post(port, "/v1/score", {"domains": [registry.load(1).domains[0]]})
        status, snapshot = _get(port, "/metrics")
        assert status == 200
        assert snapshot["gauges"]["serve.model_version"]["value"] == 1
        assert snapshot["counters"]["serve.reloads"]["value"] >= 1
        assert snapshot["counters"]["serve.requests"]["value"] >= 1
        assert "serve.request.seconds" in snapshot["histograms"]
        assert metrics.counter("serve.scored_domains").value >= 1


class TestLifecycle:
    def test_stop_releases_port(self, make_bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle())
        service = ScoringService(
            registry, ServiceConfig(port=0), metrics=MetricsRegistry()
        )
        __, port = service.start()
        assert _get(port, "/healthz")[0] == 200
        service.stop()
        with pytest.raises(OSError):
            _get(port, "/healthz")

    def test_double_start_rejected(self, service_setup):
        service, __, __, __, __ = service_setup
        with pytest.raises(RuntimeError, match="already running"):
            service.start()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(port=-1).validate()
        with pytest.raises(ValueError):
            ServiceConfig(max_request_bytes=0).validate()
        with pytest.raises(ValueError):
            ServiceConfig(request_timeout_seconds=0).validate()
        with pytest.raises(ValueError):
            ServiceConfig(max_batch_size=0).validate()
        with pytest.raises(ValueError):
            ServiceConfig(unknown_policy="bogus").validate()
