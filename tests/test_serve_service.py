"""HTTP smoke tests for the scoring service (ephemeral port)."""

import http.client
import json
import socket
import struct
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    DomainScorer,
    ModelRegistry,
    ScoringService,
    ServiceConfig,
)


def _request(port, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = None if body is None else json.dumps(body).encode()
        connection.request(method, path, body=payload, headers=headers or {})
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        connection.close()


def _request_with_headers(port, method, path, body=None, timeout=10):
    connection = http.client.HTTPConnection(
        "127.0.0.1", port, timeout=timeout
    )
    try:
        payload = None if body is None else json.dumps(body).encode()
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        return (
            response.status,
            json.loads(response.read() or b"{}"),
            dict(response.getheaders()),
        )
    finally:
        connection.close()


def _get(port, path):
    return _request(port, "GET", path)


def _post(port, path, body):
    return _request(port, "POST", path, body=body)


@pytest.fixture()
def service_setup(make_bundle, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    registry.publish(make_bundle(seed=1))
    metrics = MetricsRegistry()
    config = ServiceConfig(
        port=0,
        max_request_bytes=4096,
        max_batch_size=8,
        request_timeout_seconds=5.0,
    )
    service = ScoringService(registry, config, metrics=metrics)
    __, port = service.start()
    yield service, registry, port, metrics, make_bundle
    service.stop()


class TestHealth:
    def test_healthz(self, service_setup):
        __, __, port, __, __ = service_setup
        assert _get(port, "/healthz") == (200, {"status": "ok"})

    def test_readyz_with_model(self, service_setup):
        __, __, port, __, __ = service_setup
        status, body = _get(port, "/readyz")
        assert status == 200
        assert body == {"ready": True, "model_version": 1}

    def test_unready_without_model(self, tmp_path):
        registry = ModelRegistry(tmp_path / "empty")
        service = ScoringService(
            registry, ServiceConfig(port=0), metrics=MetricsRegistry()
        )
        assert service.ready is False
        with service:
            __, port = service._server.server_address[:2]
            status, body = _get(port, "/readyz")
            assert status == 503
            assert body["ready"] is False
            status, body = _post(port, "/v1/score", {"domain": "a.example"})
            assert status == 503

    def test_unknown_paths_404(self, service_setup):
        __, __, port, __, __ = service_setup
        assert _get(port, "/nope")[0] == 404
        assert _post(port, "/nope", {})[0] == 404


class TestScore:
    def test_http_matches_in_process_scorer(self, service_setup):
        __, registry, port, __, __ = service_setup
        scorer = DomainScorer(registry.load(1), cache_size=0)
        domains = registry.load(1).domains[:5]
        status, body = _post(port, "/v1/score", {"domains": domains})
        assert status == 200
        assert body["model_version"] == 1
        # One batch on both sides: same shapes -> bit-identical scores.
        verdicts = scorer.score_batch(domains)
        for result, verdict in zip(body["results"], verdicts):
            assert result["domain"] == verdict.domain
            assert result["score"] == verdict.score
            assert result["malicious"] == verdict.malicious
            assert result["known"] is True

    def test_single_domain_form(self, service_setup):
        __, registry, port, __, __ = service_setup
        domain = registry.load(1).domains[0]
        status, body = _post(port, "/v1/score", {"domain": domain})
        assert status == 200
        assert len(body["results"]) == 1
        assert body["results"][0]["domain"] == domain

    def test_unknown_domain_flagged(self, service_setup):
        __, __, port, __, __ = service_setup
        status, body = _post(
            port, "/v1/score", {"domains": ["never-seen.example"]}
        )
        assert status == 200
        assert body["results"][0]["known"] is False

    def test_bad_payloads_rejected(self, service_setup):
        __, __, port, __, __ = service_setup
        assert _post(port, "/v1/score", {})[0] == 400
        assert _post(port, "/v1/score", {"domains": []})[0] == 400
        assert _post(port, "/v1/score", {"domains": "x.example"})[0] == 400
        assert _post(port, "/v1/score", {"domains": [1, 2]})[0] == 400

    def test_batch_cap_enforced(self, service_setup):
        __, __, port, __, __ = service_setup
        batch = [f"d{i}.example" for i in range(9)]  # cap is 8
        status, body = _post(port, "/v1/score", {"domains": batch})
        assert status == 413
        assert "max_batch_size" in body["error"]

    def test_oversize_body_rejected(self, service_setup):
        __, __, port, __, __ = service_setup
        huge = {"domains": ["x" * 5000 + ".example"]}  # > 4096 bytes
        assert _post(port, "/v1/score", huge)[0] == 413

    def test_non_json_body_rejected(self, service_setup):
        __, __, port, __, __ = service_setup
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.request("POST", "/v1/score", body=b"not json {")
            assert connection.getresponse().status == 400
        finally:
            connection.close()

    def test_missing_content_length_rejected(self, service_setup):
        __, __, port, __, __ = service_setup
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/score")
            connection.endheaders()
            assert connection.getresponse().status == 411
        finally:
            connection.close()


class TestReload:
    def test_reload_swaps_to_new_version(self, service_setup):
        service, registry, port, __, make_bundle = service_setup
        registry.publish(make_bundle(seed=2))
        status, body = _post(port, "/admin/reload", {})
        assert status == 200
        assert body == {"model_version": 2, "previous_version": 1}
        assert service.active_version == 2
        status, body = _post(
            port, "/v1/score", {"domains": [registry.load(2).domains[0]]}
        )
        assert body["model_version"] == 2
        assert body["results"][0]["known"] is True

    def test_reload_to_explicit_version(self, service_setup):
        __, registry, port, __, make_bundle = service_setup
        registry.publish(make_bundle(seed=2))
        _post(port, "/admin/reload", {})
        status, body = _post(port, "/admin/reload", {"version": 1})
        assert status == 200
        assert body["model_version"] == 1

    def test_reload_missing_version_conflicts(self, service_setup):
        __, __, port, __, __ = service_setup
        status, body = _post(port, "/admin/reload", {"version": 99})
        assert status == 409
        assert "error" in body

    def test_reload_bad_version_type(self, service_setup):
        __, __, port, __, __ = service_setup
        assert _post(port, "/admin/reload", {"version": "two"})[0] == 400

    def test_reload_under_concurrent_scoring(self, service_setup):
        """Requests racing a hot swap all succeed on a whole model."""
        __, registry, port, __, make_bundle = service_setup
        domain = registry.load(1).domains[0]
        errors: list[object] = []

        def hammer() -> None:
            for __ in range(10):
                status, body = _post(
                    port, "/v1/score", {"domains": [domain]}
                )
                if status != 200 or body["model_version"] not in (1, 2):
                    errors.append((status, body))
                    return

        threads = [threading.Thread(target=hammer) for __ in range(4)]
        for thread in threads:
            thread.start()
        registry.publish(make_bundle(seed=2))
        _post(port, "/admin/reload", {})
        for thread in threads:
            thread.join()
        assert errors == []


class TestMetrics:
    def test_metrics_endpoint_reports_serving_metrics(self, service_setup):
        __, registry, port, metrics, __ = service_setup
        _post(port, "/v1/score", {"domains": [registry.load(1).domains[0]]})
        status, snapshot = _get(port, "/metrics")
        assert status == 200
        assert snapshot["gauges"]["serve.model_version"]["value"] == 1
        assert snapshot["counters"]["serve.reloads"]["value"] >= 1
        assert snapshot["counters"]["serve.requests"]["value"] >= 1
        assert "serve.request.seconds" in snapshot["histograms"]
        assert metrics.counter("serve.scored_domains").value >= 1


class TestLifecycle:
    def test_stop_releases_port(self, make_bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle())
        service = ScoringService(
            registry, ServiceConfig(port=0), metrics=MetricsRegistry()
        )
        __, port = service.start()
        assert _get(port, "/healthz")[0] == 200
        service.stop()
        with pytest.raises(OSError):
            _get(port, "/healthz")

    def test_double_start_rejected(self, service_setup):
        service, __, __, __, __ = service_setup
        with pytest.raises(RuntimeError, match="already running"):
            service.start()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(port=-1).validate()
        with pytest.raises(ValueError):
            ServiceConfig(max_request_bytes=0).validate()
        with pytest.raises(ValueError):
            ServiceConfig(request_timeout_seconds=0).validate()
        with pytest.raises(ValueError):
            ServiceConfig(max_batch_size=0).validate()
        with pytest.raises(ValueError):
            ServiceConfig(unknown_policy="bogus").validate()

    def test_config_rejects_out_of_range_port(self):
        with pytest.raises(ValueError, match="65535"):
            ServiceConfig(port=70000).validate()
        ServiceConfig(port=65535).validate()  # boundary is fine

    def test_config_rejects_blank_host(self):
        with pytest.raises(ValueError, match="host"):
            ServiceConfig(host="").validate()
        with pytest.raises(ValueError, match="host"):
            ServiceConfig(host="   ").validate()

    def test_config_validates_hardening_knobs(self):
        with pytest.raises(ValueError, match="max_inflight"):
            ServiceConfig(max_inflight=0).validate()
        with pytest.raises(ValueError, match="queue_depth"):
            ServiceConfig(queue_depth=-1).validate()
        with pytest.raises(ValueError, match="deadline_seconds"):
            ServiceConfig(deadline_seconds=0).validate()
        with pytest.raises(ValueError, match="batch_window_seconds"):
            ServiceConfig(batch_window_seconds=-0.001).validate()
        with pytest.raises(ValueError, match="batch_max_size"):
            ServiceConfig(batch_max_size=0).validate()
        with pytest.raises(ValueError, match="reload_retries"):
            ServiceConfig(reload_retries=-1).validate()
        with pytest.raises(ValueError, match="reload_backoff_seconds"):
            ServiceConfig(reload_backoff_seconds=-0.1).validate()


class TestAdmissionOverHttp:
    """Load shedding and deadlines end-to-end through the HTTP layer."""

    def _overloaded_service(self, make_bundle, tmp_path, **overrides):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=1))
        metrics = MetricsRegistry()
        defaults = dict(
            port=0,
            max_inflight=1,
            queue_depth=0,
            deadline_seconds=5.0,
            request_timeout_seconds=10.0,
        )
        defaults.update(overrides)
        service = ScoringService(
            registry, ServiceConfig(**defaults), metrics=metrics
        )
        __, port = service.start()
        return service, port, metrics

    def _hold_slot(self, service, metrics, port, seconds):
        """Occupy the single scoring slot with an injected-latency
        request on a background thread; wait until it is in flight."""
        service.faults.inject(
            "scorer.score_batch", latency_seconds=seconds, times=1
        )
        result = {}

        def holder():
            result["response"] = _request(
                port, "POST", "/v1/score", {"domain": "holder.example"}
            )

        thread = threading.Thread(target=holder)
        thread.start()
        deadline = time.monotonic() + 2.0
        while (
            metrics.gauge("serve.inflight").value < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert metrics.gauge("serve.inflight").value == 1
        return thread, result

    def test_excess_load_shed_with_429_and_retry_after(
        self, make_bundle, tmp_path
    ):
        service, port, metrics = self._overloaded_service(
            make_bundle, tmp_path
        )
        try:
            thread, held = self._hold_slot(service, metrics, port, 0.5)
            status, body, headers = _request_with_headers(
                port, "POST", "/v1/score", {"domain": "shed.example"}
            )
            thread.join()
            assert status == 429
            assert "overloaded" in body["error"]
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after_seconds"] == int(headers["Retry-After"])
            assert metrics.counter("serve.shed").value == 1
            # The held request completed normally despite the overload.
            assert held["response"][0] == 200
        finally:
            service.stop()

    def test_deadline_exceeded_while_queued_is_503(
        self, make_bundle, tmp_path
    ):
        service, port, metrics = self._overloaded_service(
            make_bundle, tmp_path, queue_depth=4, deadline_seconds=0.2
        )
        try:
            thread, held = self._hold_slot(service, metrics, port, 0.8)
            started = time.perf_counter()
            status, body = _request(
                port, "POST", "/v1/score", {"domain": "late.example"}
            )
            waited = time.perf_counter() - started
            thread.join()
            assert status == 503
            assert "deadline" in body["error"]
            # Rejected at the deadline, well before the slot freed.
            assert waited < 0.8
            assert metrics.counter("serve.deadline_exceeded").value >= 1
            assert held["response"][0] == 200
        finally:
            service.stop()

    def test_health_endpoints_not_gated_by_admission(
        self, make_bundle, tmp_path
    ):
        """Probes must answer even when scoring is saturated."""
        service, port, metrics = self._overloaded_service(
            make_bundle, tmp_path
        )
        try:
            thread, __ = self._hold_slot(service, metrics, port, 0.5)
            assert _request(port, "GET", "/healthz")[0] == 200
            assert _request(port, "GET", "/readyz")[0] == 200
            assert _request(port, "GET", "/metrics")[0] == 200
            thread.join()
        finally:
            service.stop()

    def test_malformed_requests_do_not_consume_slots(
        self, make_bundle, tmp_path
    ):
        service, port, metrics = self._overloaded_service(
            make_bundle, tmp_path
        )
        try:
            thread, __ = self._hold_slot(service, metrics, port, 0.5)
            # Validation rejects these before admission: 400, not 429.
            assert _request(port, "POST", "/v1/score", {})[0] == 400
            assert (
                _request(port, "POST", "/v1/score", {"domains": []})[0]
                == 400
            )
            thread.join()
            assert metrics.counter("serve.shed").value == 0
        finally:
            service.stop()


class TestMicroBatchingOverHttp:
    def test_concurrent_requests_coalesce_and_map_back(
        self, make_bundle, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=3))
        metrics = MetricsRegistry()
        service = ScoringService(
            registry,
            ServiceConfig(
                port=0,
                batch_window_seconds=0.05,
                batch_max_size=256,
                max_inflight=16,
                queue_depth=32,
                request_timeout_seconds=10.0,
            ),
            metrics=metrics,
        )
        __, port = service.start()
        try:
            domains = registry.load(1).domains[:8]
            barrier = threading.Barrier(len(domains))
            outputs = {}
            lock = threading.Lock()

            def client(domain):
                barrier.wait()
                status, body = _request(
                    port, "POST", "/v1/score", {"domain": domain}
                )
                with lock:
                    outputs[domain] = (status, body)

            threads = [
                threading.Thread(target=client, args=(d,)) for d in domains
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for domain in domains:
                status, body = outputs[domain]
                assert status == 200
                assert body["results"][0]["domain"] == domain
                assert body["results"][0]["known"] is True
            # Coalescing happened: fewer flushes than requests.
            flushes = metrics.counter("serve.batch.flushes").value
            assert 1 <= flushes < len(domains)
            # Verdicts are cached per domain, so a repeat query returns
            # the same bytes the batched pass produced.
            for domain in domains:
                status, body = _request(
                    port, "POST", "/v1/score", {"domain": domain}
                )
                assert body["results"][0] == outputs[domain][1]["results"][0]
        finally:
            service.stop()


class TestClientDisconnects:
    def test_mid_response_disconnect_counted_not_crashed(
        self, make_bundle, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=1))
        metrics = MetricsRegistry()
        service = ScoringService(
            registry,
            ServiceConfig(port=0, request_timeout_seconds=5.0),
            metrics=metrics,
        )
        __, port = service.start()
        try:
            # Slow the scorer so the client can vanish before the
            # response write; SO_LINGER(0) turns close() into an RST so
            # the server's write genuinely fails.
            service.faults.inject(
                "scorer.score_batch", latency_seconds=0.3, times=1
            )
            requests_before = metrics.counter("serve.requests").value
            errors_before = metrics.counter("serve.errors").value
            sock = socket.create_connection(("127.0.0.1", port), timeout=5)
            body = json.dumps({"domain": "gone.example"}).encode()
            sock.sendall(
                b"POST /v1/score HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: " + str(len(body)).encode()
                + b"\r\n\r\n" + body
            )
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            time.sleep(0.05)
            sock.close()
            deadline = time.monotonic() + 3.0
            while (
                metrics.counter("serve.client_disconnects").value == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert metrics.counter("serve.client_disconnects").value >= 1
            # Accounting not skewed: the aborted request is neither a
            # served response nor an error.
            assert metrics.counter("serve.requests").value == requests_before
            assert metrics.counter("serve.errors").value == errors_before
            # The service keeps answering.
            assert _request(port, "GET", "/healthz")[0] == 200
        finally:
            service.stop()


class TestConcurrentReload:
    def test_racing_reloads_cannot_interleave_load_and_swap(
        self, make_bundle, tmp_path
    ):
        """Two threads hammering /admin/reload with different versions
        must leave the gauge and the active model agreeing."""
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=1))
        registry.publish(make_bundle(seed=2))
        metrics = MetricsRegistry()
        service = ScoringService(
            registry, ServiceConfig(port=0), metrics=metrics
        )
        __, port = service.start()
        try:
            errors = []

            def reloader(version):
                for __ in range(8):
                    status, __body = _request(
                        port, "POST", "/admin/reload", {"version": version}
                    )
                    if status != 200:
                        errors.append((version, status))
                        return

            threads = [
                threading.Thread(target=reloader, args=(v,))
                for v in (1, 2, 1, 2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            # Serialized load-and-swap: whatever won last, the gauge
            # agrees with the active scorer's version.
            assert metrics.gauge("serve.model_version").value == (
                service.active_version
            )
            assert service.active_version in (1, 2)
        finally:
            service.stop()


@pytest.mark.slow
class TestClosedLoopLoad:
    def test_32_clients_against_one_slot_never_hang_or_crash(
        self, make_bundle, tmp_path
    ):
        """The acceptance scenario: a 32-client closed loop against
        ``max_inflight=1`` always gets an orderly answer — 200 within
        the deadline, 429 with Retry-After, or 503 on deadline — and
        the service stays healthy throughout."""
        registry = ModelRegistry(tmp_path / "models")
        bundle = make_bundle(seed=9, count=64)
        registry.publish(bundle)
        metrics = MetricsRegistry()
        service = ScoringService(
            registry,
            ServiceConfig(
                port=0,
                max_inflight=1,
                queue_depth=4,
                deadline_seconds=2.0,
                batch_window_seconds=0.002,
                batch_max_size=256,
                request_timeout_seconds=10.0,
            ),
            metrics=metrics,
        )
        __, port = service.start()
        try:
            domains = bundle.domains
            failures = []
            statuses = []
            lock = threading.Lock()

            def client(index):
                for step in range(6):
                    domain = domains[(index * 6 + step) % len(domains)]
                    try:
                        status, body, headers = _request_with_headers(
                            port, "POST", "/v1/score", {"domain": domain},
                            timeout=10,
                        )
                    except Exception as exc:  # reset/hang = hard fail
                        with lock:
                            failures.append(
                                f"client {index}: {type(exc).__name__}: "
                                f"{exc}"
                            )
                        return
                    with lock:
                        statuses.append(status)
                    if status == 200:
                        if body["results"][0]["domain"] != domain:
                            with lock:
                                failures.append("result misrouted")
                            return
                    elif status == 429:
                        if "Retry-After" not in headers:
                            with lock:
                                failures.append("429 without Retry-After")
                            return
                        time.sleep(0.01)
                    elif status == 503:
                        if "deadline" not in body.get("error", ""):
                            with lock:
                                failures.append(f"unexpected 503: {body}")
                            return
                    else:
                        with lock:
                            failures.append(f"unexpected status {status}")
                        return

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(32)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert all(not t.is_alive() for t in threads), "client hung"
            assert failures == []
            assert len(statuses) > 0
            assert set(statuses) <= {200, 429, 503}
            assert statuses.count(200) >= 1
            # Overloaded on purpose: shedding must actually have fired.
            assert 429 in statuses
            # The service survived: still ready, slots all returned.
            assert _request(port, "GET", "/readyz")[0] == 200
            assert metrics.gauge("serve.inflight").value == 0
        finally:
            service.stop()
