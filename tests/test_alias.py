"""Unit tests for the alias-method sampler."""

import numpy as np
import pytest

from repro.embedding.alias import AliasSampler


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasSampler(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasSampler(np.array([1.0, -0.5]))

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            AliasSampler(np.array([0.0, 0.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            AliasSampler(np.ones((2, 2)))

    def test_size(self):
        assert AliasSampler(np.ones(7)).size == 7


class TestSampling:
    def test_sample_count_and_dtype(self, rng):
        sampler = AliasSampler(np.array([1.0, 2.0, 3.0]))
        draws = sampler.sample(1000, rng)
        assert draws.shape == (1000,)
        assert draws.dtype == np.int64
        assert draws.min() >= 0 and draws.max() <= 2

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            AliasSampler(np.ones(3)).sample(-1, rng)

    def test_zero_count(self, rng):
        assert AliasSampler(np.ones(3)).sample(0, rng).size == 0

    def test_distribution_matches_weights(self, rng):
        weights = np.array([0.1, 0.2, 0.3, 0.4])
        sampler = AliasSampler(weights)
        draws = sampler.sample(200_000, rng)
        empirical = np.bincount(draws, minlength=4) / draws.size
        assert np.allclose(empirical, weights, atol=0.01)

    def test_zero_weight_never_drawn(self, rng):
        sampler = AliasSampler(np.array([0.0, 1.0, 0.0, 1.0]))
        draws = sampler.sample(50_000, rng)
        assert set(np.unique(draws)) <= {1, 3}

    def test_single_element(self, rng):
        sampler = AliasSampler(np.array([5.0]))
        assert np.all(sampler.sample(100, rng) == 0)

    def test_heavily_skewed_weights(self, rng):
        weights = np.array([1e-6, 1.0])
        draws = AliasSampler(weights).sample(100_000, rng)
        assert np.mean(draws == 1) > 0.999

    def test_unnormalized_weights_ok(self, rng):
        a = AliasSampler(np.array([2.0, 6.0]))
        draws = a.sample(100_000, rng)
        assert np.isclose(np.mean(draws == 1), 0.75, atol=0.01)
