"""Unit tests for the alias-method sampler."""

import numpy as np
import pytest
from scipy import stats

from repro.embedding.alias import AliasSampler, build_alias_tables


def _implied_mass(prob: np.ndarray, alias: np.ndarray) -> np.ndarray:
    """Probability mass the (prob, alias) tables actually assign.

    Column i keeps mass prob[i] for i and routes 1 - prob[i] to
    alias[i]; summing both contributions and dividing by n recovers the
    exact distribution the sampler draws from.
    """
    implied = prob.astype(float).copy()
    np.add.at(implied, alias, 1.0 - prob)
    return implied / prob.size


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasSampler(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasSampler(np.array([1.0, -0.5]))

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            AliasSampler(np.array([0.0, 0.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            AliasSampler(np.ones((2, 2)))

    def test_size(self):
        assert AliasSampler(np.ones(7)).size == 7


class TestSampling:
    def test_sample_count_and_dtype(self, rng):
        sampler = AliasSampler(np.array([1.0, 2.0, 3.0]))
        draws = sampler.sample(1000, rng)
        assert draws.shape == (1000,)
        assert draws.dtype == np.int64
        assert draws.min() >= 0 and draws.max() <= 2

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            AliasSampler(np.ones(3)).sample(-1, rng)

    def test_zero_count(self, rng):
        assert AliasSampler(np.ones(3)).sample(0, rng).size == 0

    def test_distribution_matches_weights(self, rng):
        weights = np.array([0.1, 0.2, 0.3, 0.4])
        sampler = AliasSampler(weights)
        draws = sampler.sample(200_000, rng)
        empirical = np.bincount(draws, minlength=4) / draws.size
        assert np.allclose(empirical, weights, atol=0.01)

    def test_zero_weight_never_drawn(self, rng):
        sampler = AliasSampler(np.array([0.0, 1.0, 0.0, 1.0]))
        draws = sampler.sample(50_000, rng)
        assert set(np.unique(draws)) <= {1, 3}

    def test_single_element(self, rng):
        sampler = AliasSampler(np.array([5.0]))
        assert np.all(sampler.sample(100, rng) == 0)

    def test_heavily_skewed_weights(self, rng):
        weights = np.array([1e-6, 1.0])
        draws = AliasSampler(weights).sample(100_000, rng)
        assert np.mean(draws == 1) > 0.999

    def test_unnormalized_weights_ok(self, rng):
        a = AliasSampler(np.array([2.0, 6.0]))
        draws = a.sample(100_000, rng)
        assert np.isclose(np.mean(draws == 1), 0.75, atol=0.01)


class TestBuildAliasTables:
    """The vectorized construction must be exact, not approximately right."""

    @pytest.mark.parametrize(
        "weights",
        [
            [1.0],
            [1.0, 1.0, 1.0],
            [0.1, 0.2, 0.3, 0.4],
            [1e-6, 1.0],                    # one tiny, one dominant
            [5.0, 1e-9, 1e-9, 1e-9],        # one giant fed by many smalls
            [0.0, 1.0, 0.0, 2.0, 0.0],      # zeros interleaved
        ],
    )
    def test_tables_carry_exact_mass(self, weights):
        weights = np.asarray(weights, dtype=float)
        for vectorized in (True, False):
            prob, alias = build_alias_tables(weights, vectorized=vectorized)
            expected = weights / weights.sum()
            assert np.allclose(
                _implied_mass(prob, alias), expected, rtol=0.0, atol=1e-12
            )

    def test_vectorized_matches_loop_distribution(self, rng):
        # The two builders may pair small/large columns in a different
        # order, so the tables themselves can differ — but the implied
        # distribution must be identical to float precision.
        weights = rng.uniform(0.0, 1.0, 5_000)
        weights[rng.integers(0, weights.size, 50)] = 0.0
        vec = build_alias_tables(weights)
        loop = build_alias_tables(weights, vectorized=False)
        assert np.allclose(
            _implied_mass(*vec), _implied_mass(*loop), rtol=0.0, atol=1e-12
        )

    def test_from_tables_roundtrip(self, rng):
        weights = np.array([0.5, 1.5, 3.0, 0.25])
        prob, alias = build_alias_tables(weights)
        sampler = AliasSampler.from_tables(prob, alias)
        assert sampler.size == weights.size
        assert sampler.probabilities is prob
        assert sampler.aliases is alias
        direct = AliasSampler(weights)
        seeded = np.random.default_rng(11)
        reseeded = np.random.default_rng(11)
        assert np.array_equal(
            sampler.sample(10_000, seeded), direct.sample(10_000, reseeded)
        )

    def test_from_tables_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            AliasSampler.from_tables(np.ones(3), np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            AliasSampler.from_tables(np.ones((2, 2)), np.zeros(4, np.int64))

    def test_chi_squared_large_sample(self, rng):
        # 1e6 draws against the exact expected counts: a biased table
        # construction fails this decisively, honest sampling noise
        # doesn't (p uniform under the null; reject only below 1e-3).
        weights = rng.uniform(0.1, 1.0, 64)
        sampler = AliasSampler(weights)
        draws = sampler.sample(1_000_000, np.random.default_rng(123))
        observed = np.bincount(draws, minlength=weights.size)
        expected = weights / weights.sum() * draws.size
        result = stats.chisquare(observed, expected)
        assert result.pvalue > 1e-3
