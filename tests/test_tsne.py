"""Unit tests for the exact t-SNE implementation."""

import numpy as np
import pytest

from repro.embedding.tsne import TsneConfig, tsne_embed
from repro.errors import EmbeddingError


@pytest.fixture(scope="module")
def three_blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0, 0, 0, 0], [8, 8, 0, 0], [0, 8, 8, 0]], dtype=float)
    data = np.vstack(
        [rng.normal(c, 0.3, size=(40, 4)) for c in centers]
    )
    labels = np.repeat([0, 1, 2], 40)
    return data, labels


class TestTsneEmbed:
    def test_output_shape(self, three_blobs):
        data, __ = three_blobs
        layout = tsne_embed(data, TsneConfig(perplexity=15, iterations=300))
        assert layout.shape == (120, 2)
        assert np.all(np.isfinite(layout))

    def test_clusters_stay_separated(self, three_blobs):
        data, labels = three_blobs
        layout = tsne_embed(data, TsneConfig(perplexity=15, iterations=400))
        centroids = np.array(
            [layout[labels == k].mean(axis=0) for k in range(3)]
        )
        # Mean within-cluster spread must be far below between-centroid
        # distances: the blobs remain distinct in 2-D.
        spreads = [
            np.linalg.norm(layout[labels == k] - centroids[k], axis=1).mean()
            for k in range(3)
        ]
        gaps = [
            np.linalg.norm(centroids[i] - centroids[j])
            for i in range(3)
            for j in range(i + 1, 3)
        ]
        assert max(spreads) < 0.5 * min(gaps)

    def test_deterministic(self, three_blobs):
        data, __ = three_blobs
        config = TsneConfig(perplexity=10, iterations=120)
        assert np.array_equal(tsne_embed(data, config), tsne_embed(data, config))

    def test_layout_is_centered(self, three_blobs):
        data, __ = three_blobs
        layout = tsne_embed(data, TsneConfig(perplexity=10, iterations=120))
        assert np.allclose(layout.mean(axis=0), 0.0, atol=1e-8)


class TestTsneValidation:
    def test_rejects_1d_input(self):
        with pytest.raises(EmbeddingError):
            tsne_embed(np.ones(10))

    def test_perplexity_too_large(self):
        data = np.random.default_rng(0).normal(size=(20, 3))
        with pytest.raises(EmbeddingError, match="perplexity"):
            tsne_embed(data, TsneConfig(perplexity=10))

    def test_perplexity_must_exceed_one(self):
        data = np.random.default_rng(0).normal(size=(50, 3))
        with pytest.raises(EmbeddingError):
            tsne_embed(data, TsneConfig(perplexity=0.5))

    def test_minimum_iterations(self):
        data = np.random.default_rng(0).normal(size=(100, 3))
        with pytest.raises(EmbeddingError, match="iterations"):
            tsne_embed(data, TsneConfig(iterations=10))
