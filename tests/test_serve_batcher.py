"""Unit tests for the micro-batcher: coalescing, slicing, early flush,
error propagation, and byte-identity with direct batch scoring."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import DomainScorer, MicroBatcher


class _Recorder:
    """A flush backend that records every batch it sees."""

    def __init__(self):
        self.batches = []
        self.lock = threading.Lock()

    def __call__(self, domains):
        with self.lock:
            self.batches.append(list(domains))
        return len(self.batches), [d.upper() for d in domains]


class TestBatching:
    def test_single_submission_round_trips(self):
        recorder = _Recorder()
        batcher = MicroBatcher(
            recorder, window_seconds=0.001, metrics=MetricsRegistry()
        )
        context, results = batcher.submit(["a.example", "b.example"])
        assert context == 1
        assert results == ["A.EXAMPLE", "B.EXAMPLE"]
        assert recorder.batches == [["a.example", "b.example"]]

    def test_concurrent_submissions_coalesce_into_one_flush(self):
        recorder = _Recorder()
        metrics = MetricsRegistry()
        # max_batch == the total submitted: the batch seals (and
        # flushes) the instant the last client joins, so the test never
        # sits out the window on the happy path.
        batcher = MicroBatcher(
            recorder, window_seconds=0.5, max_batch=12, metrics=metrics
        )
        barrier = threading.Barrier(6)
        outputs = {}

        def client(index):
            barrier.wait()
            outputs[index] = batcher.submit(
                [f"d{index}.a.example", f"d{index}.b.example"]
            )

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder.batches) == 1
        assert len(recorder.batches[0]) == 12
        for index in range(6):
            context, results = outputs[index]
            assert context == 1
            assert results == [
                f"D{index}.A.EXAMPLE", f"D{index}.B.EXAMPLE"
            ]
        assert metrics.counter("serve.batch.flushes").value == 1
        assert metrics.counter("serve.batch.coalesced").value == 5
        assert metrics.histogram("serve.batch.size").count == 1

    def test_full_batch_flushes_before_window(self):
        recorder = _Recorder()
        # A very long window: only the max_batch seal can flush early.
        batcher = MicroBatcher(
            recorder, window_seconds=30.0, max_batch=4,
            metrics=MetricsRegistry(),
        )
        context, results = batcher.submit(["a", "b", "c", "d"])
        assert results == ["A", "B", "C", "D"]
        assert recorder.batches == [["a", "b", "c", "d"]]

    def test_oversized_submission_flushes_alone(self):
        recorder = _Recorder()
        batcher = MicroBatcher(
            recorder, window_seconds=30.0, max_batch=2,
            metrics=MetricsRegistry(),
        )
        __, results = batcher.submit(["a", "b", "c", "d", "e"])
        assert results == ["A", "B", "C", "D", "E"]
        assert recorder.batches == [["a", "b", "c", "d", "e"]]

    def test_sealed_batch_not_joined_by_later_submissions(self):
        recorder = _Recorder()
        batcher = MicroBatcher(
            recorder, window_seconds=0.05, max_batch=2,
            metrics=MetricsRegistry(),
        )
        batcher.submit(["a", "b"])  # seals at max_batch, flushes
        batcher.submit(["c"])
        assert recorder.batches == [["a", "b"], ["c"]]


class TestErrors:
    def test_flush_error_propagates_to_every_caller(self):
        calls = {"count": 0}

        def explode(domains):
            calls["count"] += 1
            raise RuntimeError("backend down")

        batcher = MicroBatcher(
            explode, window_seconds=0.1, metrics=MetricsRegistry()
        )
        barrier = threading.Barrier(3)
        errors = []

        def client(index):
            barrier.wait()
            try:
                batcher.submit([f"d{index}.example"])
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == ["backend down"] * 3
        assert calls["count"] == 1  # one flush failed, all callers told

    def test_short_flush_result_is_an_error(self):
        batcher = MicroBatcher(
            lambda domains: (0, []), window_seconds=0.001,
            metrics=MetricsRegistry(),
        )
        with pytest.raises(RuntimeError, match="results"):
            batcher.submit(["a.example"])

    def test_empty_submission_rejected(self):
        batcher = MicroBatcher(
            lambda domains: (0, list(domains)), window_seconds=0.001,
            metrics=MetricsRegistry(),
        )
        with pytest.raises(ValueError, match="at least one"):
            batcher.submit([])

    def test_bad_config_rejected(self):
        flush = lambda domains: (0, list(domains))  # noqa: E731
        with pytest.raises(ValueError, match="window_seconds"):
            MicroBatcher(flush, window_seconds=0.0)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(flush, window_seconds=0.001, max_batch=0)


class TestByteIdentity:
    def test_batched_scores_identical_to_direct_score_batch(self, make_bundle):
        """Micro-batched verdicts are the same bytes a direct
        ``score_batch`` over the coalesced batch produces."""
        bundle = make_bundle(seed=11, count=20, dimension=5)
        scorer = DomainScorer(bundle, cache_size=0)
        flushed = []
        flush_lock = threading.Lock()

        def flush(domains):
            with flush_lock:
                flushed.append(list(domains))
            return 1, scorer.score_batch(domains)

        batcher = MicroBatcher(
            flush, window_seconds=0.5, max_batch=20,
            metrics=MetricsRegistry(),
        )
        barrier = threading.Barrier(5)
        outputs = {}

        def client(index):
            domains = bundle.domains[index * 4:index * 4 + 4]
            barrier.wait()
            outputs[index] = (domains, batcher.submit(domains)[1])

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(5)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Reference: a fresh scorer over each exact coalesced batch (the
        # same shape -> the same BLAS path -> the same bytes). Usually
        # one flush; tolerate an unlucky scheduler splitting it.
        reference = {}
        for order in flushed:
            reference.update(
                zip(
                    order,
                    DomainScorer(bundle, cache_size=0).score_batch(order),
                )
            )
        for __, (domains, verdicts) in outputs.items():
            assert [v.domain for v in verdicts] == list(domains)
            for verdict in verdicts:
                expected = reference[verdict.domain]
                assert verdict.score == expected.score  # bit-identical
                assert verdict.malicious == expected.malicious
