"""Unit tests for cross-validation utilities."""

import numpy as np
import pytest

from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_validated_scores,
    train_test_split,
)


class TestKFold:
    def test_folds_partition_everything(self):
        folds = list(KFold(n_splits=5, seed=1).split(53))
        assert len(folds) == 5
        all_test = np.concatenate([test for __, test in folds])
        assert sorted(all_test) == list(range(53))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=4, seed=2).split(40):
            assert not set(train) & set(test)
            assert len(train) + len(test) == 40

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(5))

    def test_deterministic(self):
        a = [test.tolist() for __, test in KFold(5, seed=3).split(30)]
        b = [test.tolist() for __, test in KFold(5, seed=3).split(30)]
        assert a == b

    def test_min_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_class_ratio_preserved(self):
        labels = np.array([0] * 70 + [1] * 30)
        for __, test in StratifiedKFold(n_splits=10, seed=1).split(labels):
            positives = labels[test].sum()
            assert positives == 3  # 30/10 per fold

    def test_partition_complete(self):
        labels = np.array([0] * 25 + [1] * 25)
        folds = list(StratifiedKFold(n_splits=5, seed=1).split(labels))
        all_test = np.concatenate([test for __, test in folds])
        assert sorted(all_test) == list(range(50))

    def test_class_smaller_than_splits_rejected(self):
        labels = np.array([0] * 20 + [1] * 3)
        with pytest.raises(ValueError, match="fewer than"):
            list(StratifiedKFold(n_splits=5).split(labels))


class TestTrainTestSplit:
    def test_sizes(self):
        features = np.arange(100).reshape(100, 1)
        labels = np.array([0] * 60 + [1] * 40)
        train_x, test_x, train_y, test_y = train_test_split(
            features, labels, test_fraction=0.25, seed=1
        )
        assert len(test_y) == 25
        assert len(train_y) == 75

    def test_stratified_preserves_ratio(self):
        features = np.zeros((100, 1))
        labels = np.array([0] * 80 + [1] * 20)
        __, __, __, test_y = train_test_split(
            features, labels, test_fraction=0.5, stratify=True, seed=0
        )
        assert test_y.sum() == 10

    def test_no_leakage(self):
        features = np.arange(50).reshape(50, 1)
        labels = np.array([0, 1] * 25)
        train_x, test_x, __, __ = train_test_split(features, labels, seed=3)
        assert not set(train_x.ravel()) & set(test_x.ravel())

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.0)


class _MeanModel:
    """Scores each sample by its first feature (no learning needed)."""

    def fit(self, features, labels):
        return self

    def decision_function(self, features):
        return features[:, 0]


class TestCrossValidatedScores:
    def test_every_sample_scored_once(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(60, 2))
        labels = np.array([0, 1] * 30)
        scores, fold_ids = cross_validated_scores(
            features, labels, _MeanModel, n_splits=5
        )
        assert scores.shape == (60,)
        # With the pass-through model, scores equal the first feature.
        assert np.allclose(scores, features[:, 0])
        assert set(fold_ids) == set(range(5))

    def test_proba_fallback(self):
        class ProbaModel:
            def fit(self, features, labels):
                return self

            def predict_proba(self, features):
                p = np.clip(features[:, 0], 0, 1)
                return np.column_stack([1 - p, p])

        features = np.random.default_rng(1).uniform(size=(40, 1))
        labels = np.array([0, 1] * 20)
        scores, __ = cross_validated_scores(
            features, labels, ProbaModel, n_splits=4
        )
        assert np.allclose(scores, features[:, 0])
