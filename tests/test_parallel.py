"""Tests for the parallel embedding layer (repro.parallel).

The load-bearing property is the determinism contract: for a fixed
seed, serial, thread, and process backends must produce *byte-identical*
embeddings. Everything else (scheduling, shared memory, failure
surfacing) exists in service of that.
"""

import numpy as np
import pytest

from repro.embedding.line import LineConfig, train_line
from repro.errors import EmbeddingError
from repro.graphs.projection import SimilarityGraph
from repro.parallel import (
    ArrayPack,
    EmbeddingTask,
    ParallelConfig,
    fork_available,
    open_pack,
    plan_line_tasks,
    plan_view_tasks,
    run_tasks,
    schedule_order,
    spawn_seeds,
    train_views,
)


def small_graph(kind="host", seed=0, nodes=20, edges=60):
    """A connected random weighted graph, cheap enough to train in tests."""
    rng = np.random.default_rng(seed)
    domains = [f"{kind}{i}.example" for i in range(nodes)]
    # Chain for connectivity, then random extra edges.
    rows = list(range(nodes - 1))
    cols = list(range(1, nodes))
    extra_rows = rng.integers(0, nodes, edges)
    extra_cols = rng.integers(0, nodes, edges)
    keep = extra_rows != extra_cols
    rows = np.concatenate([rows, extra_rows[keep]])
    cols = np.concatenate([cols, extra_cols[keep]])
    weights = rng.uniform(0.1, 2.0, rows.size)
    return SimilarityGraph(
        kind=kind, domains=domains, rows=rows, cols=cols, weights=weights
    )


FAST = LineConfig(dimension=8, total_samples=20_000, seed=9)


def _echo(value):
    return value


def _boom(value):
    raise ValueError(f"task blew up on {value}")


def _slow(value):
    import time

    time.sleep(5.0)
    return value


class TestParallelConfig:
    def test_defaults_are_serial(self):
        assert ParallelConfig().resolved_backend() == "serial"

    def test_auto_resolves_to_cpu_count(self):
        import os

        config = ParallelConfig(workers="auto")
        assert config.resolved_workers() == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"workers": "many"},
            {"workers": True},
            {"workers": 1.5},
            {"backend": "gpu"},
            {"timeout_seconds": 0.0},
            {"timeout_seconds": -2.0},
            {"min_parallel_weight": -1},
        ],
    )
    def test_validate_rejects(self, kwargs):
        with pytest.raises(EmbeddingError):
            ParallelConfig(**kwargs).validate()

    def test_single_worker_falls_back_to_serial(self):
        config = ParallelConfig(workers=1, backend="process")
        assert config.resolved_backend() == "serial"

    def test_small_batch_falls_back_to_serial(self):
        config = ParallelConfig(
            workers=4, backend="process", min_parallel_weight=1_000_000
        )
        assert config.resolved_backend(total_weight=10_000) == "serial"

    def test_heavy_batch_stays_parallel(self):
        config = ParallelConfig(workers=4, backend="thread")
        assert config.resolved_backend(total_weight=10**9) == "thread"

    def test_serial_backend_wins_over_workers(self):
        config = ParallelConfig(workers=8, backend="serial")
        assert config.resolved_backend(total_weight=10**9) == "serial"


class TestSpawnSeeds:
    def test_deterministic_and_independent(self):
        first = spawn_seeds(42, 4)
        second = spawn_seeds(42, 4)
        assert len(first) == 4
        for a, b in zip(first, second):
            # Same derivation -> same stream.
            assert np.random.default_rng(a).integers(0, 2**31) == (
                np.random.default_rng(b).integers(0, 2**31)
            )
        # Distinct children -> distinct streams.
        states = {
            tuple(np.random.default_rng(seed).integers(0, 2**31, 4))
            for seed in first
        }
        assert len(states) == 4

    def test_different_roots_differ(self):
        a = np.random.default_rng(spawn_seeds(1, 1)[0]).integers(0, 2**31)
        b = np.random.default_rng(spawn_seeds(2, 1)[0]).integers(0, 2**31)
        assert a != b


class TestRunTasks:
    def test_serial_preserves_order(self):
        config = ParallelConfig(workers=0)
        assert run_tasks(_echo, [(3,), (1,), (2,)], config) == [3, 1, 2]

    def test_thread_preserves_order(self):
        config = ParallelConfig(workers=2, min_parallel_weight=0)
        results = run_tasks(
            _echo, [(i,) for i in range(8)], config, backend="thread"
        )
        assert results == list(range(8))

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_preserves_order(self):
        config = ParallelConfig(workers=2, min_parallel_weight=0)
        results = run_tasks(
            _echo, [(i,) for i in range(4)], config, backend="process"
        )
        assert results == list(range(4))

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_task_exception_becomes_embedding_error(self, backend):
        config = ParallelConfig(workers=2, min_parallel_weight=0)
        with pytest.raises((EmbeddingError, ValueError)) as excinfo:
            run_tasks(_boom, [(1,), (2,)], config, backend=backend)
        if backend != "serial":
            assert isinstance(excinfo.value, EmbeddingError)
            assert isinstance(excinfo.value.__cause__, ValueError)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_exception_becomes_embedding_error(self):
        config = ParallelConfig(workers=2, min_parallel_weight=0)
        with pytest.raises(EmbeddingError, match="blew up"):
            run_tasks(_boom, [(1,)], config, backend="process")

    def test_timeout_becomes_embedding_error(self):
        config = ParallelConfig(
            workers=2, min_parallel_weight=0, timeout_seconds=0.05
        )
        with pytest.raises(EmbeddingError, match="timed out"):
            run_tasks(_slow, [(1,), (2,)], config, backend="thread")


class TestPlanning:
    def test_both_order_splits_dimension_and_samples(self):
        config = LineConfig(dimension=16, total_samples=100_001, seed=5)
        tasks = plan_line_tasks("host", 500, config)
        assert [t.order for t in tasks] == ["first", "second"]
        assert [t.dimension for t in tasks] == [8, 8]
        assert [t.column for t in tasks] == [0, 8]
        assert sum(t.total_samples for t in tasks) == 100_001
        assert tasks[0].epoch_total == tasks[1].epoch_total

    def test_single_order_is_one_task(self):
        config = LineConfig(dimension=8, order="first", seed=5)
        tasks = plan_line_tasks("ip", 500, config)
        assert len(tasks) == 1
        assert tasks[0].dimension == 8
        assert tasks[0].column == 0

    def test_edgeless_graph_rejected(self):
        with pytest.raises(EmbeddingError, match="edgeless"):
            plan_line_tasks("ip", 0, FAST)

    def test_view_plan_skips_edgeless_and_numbers_globally(self):
        empty = SimilarityGraph(
            kind="time",
            domains=["a", "b"],
            rows=np.empty(0, dtype=int),
            cols=np.empty(0, dtype=int),
            weights=np.empty(0),
        )
        views = [
            ("host", small_graph("host"), FAST),
            ("time", empty, FAST),
            ("ip", small_graph("ip", seed=1), FAST),
        ]
        tasks = plan_view_tasks(views)
        assert [t.task_id for t in tasks] == [0, 1, 2, 3]
        assert {t.view for t in tasks} == {"host", "ip"}

    def test_schedule_order_is_heaviest_first(self):
        tasks = plan_view_tasks(
            [
                ("host", small_graph("host"), FAST),
                ("ip", small_graph("ip", seed=1), FAST),
            ]
        )
        ordered = schedule_order(tasks)
        weights = [t.weight for t in ordered]
        assert weights == sorted(weights, reverse=True)
        assert isinstance(ordered[0], EmbeddingTask)


class TestArrayPack:
    def _arrays(self):
        rng = np.random.default_rng(0)
        return {
            "a": rng.uniform(size=100),
            "b": rng.integers(0, 100, 50).astype(np.int64),
            "c": np.empty(0, dtype=np.float64),
        }

    def test_inline_roundtrip(self):
        arrays = self._arrays()
        with ArrayPack(arrays, use_shm=False) as pack:
            with open_pack(pack.spec) as opened:
                for name, array in arrays.items():
                    assert np.array_equal(opened[name], array)

    def test_shm_roundtrip(self):
        arrays = self._arrays()
        with ArrayPack(arrays, use_shm=True) as pack:
            assert pack.spec.shm_name is not None
            with open_pack(pack.spec) as opened:
                for name, array in arrays.items():
                    assert np.array_equal(opened[name], array)
                    assert opened[name].dtype == array.dtype


class TestDeterminismContract:
    """Serial, thread, and process training must agree to the byte."""

    @pytest.fixture(scope="class")
    def serial_vectors(self):
        return train_line(small_graph(), FAST).vectors

    def test_thread_matches_serial(self, serial_vectors):
        parallel = ParallelConfig(
            workers=2, backend="thread", min_parallel_weight=0
        )
        embedding = train_line(small_graph(), FAST, parallel=parallel)
        assert np.array_equal(embedding.vectors, serial_vectors)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_matches_serial(self, serial_vectors):
        parallel = ParallelConfig(
            workers=2, backend="process", min_parallel_weight=0
        )
        embedding = train_line(small_graph(), FAST, parallel=parallel)
        assert np.array_equal(embedding.vectors, serial_vectors)

    def test_workers_zero_is_serial_fallback(self, serial_vectors):
        parallel = ParallelConfig(workers=0, backend="process")
        assert parallel.resolved_backend(total_weight=10**9) == "serial"
        embedding = train_line(small_graph(), FAST, parallel=parallel)
        assert np.array_equal(embedding.vectors, serial_vectors)

    def test_multi_view_backends_agree(self):
        views = [
            ("host", small_graph("host"), FAST),
            ("ip", small_graph("ip", seed=1), FAST),
            ("time", small_graph("time", seed=2), FAST),
        ]
        serial = train_views(views, ParallelConfig(workers=0))
        threaded = train_views(
            views,
            ParallelConfig(workers=3, backend="thread", min_parallel_weight=0),
        )
        for key, __, __ in views:
            assert np.array_equal(serial[key].vectors, threaded[key].vectors)

    def test_views_seeded_independently(self):
        # Same config for two views must still give different embeddings
        # when the graphs differ; same graph + same config is identical.
        graph = small_graph("host")
        serial = train_views(
            [("host", graph, FAST), ("ip", graph, FAST)],
            ParallelConfig(workers=0),
        )
        assert np.array_equal(
            serial["host"].vectors, serial["ip"].vectors
        )


class TestTrainViews:
    def test_empty_view_list_is_empty_dict(self):
        assert train_views([], ParallelConfig()) == {}

    def test_edgeless_view_gets_zero_embedding(self):
        empty = SimilarityGraph(
            kind="time",
            domains=["a", "b"],
            rows=np.empty(0, dtype=int),
            cols=np.empty(0, dtype=int),
            weights=np.empty(0),
        )
        result = train_views([("time", empty, FAST)], ParallelConfig())
        assert np.all(result["time"].vectors == 0)
        assert result["time"].vectors.shape == (2, FAST.dimension)

    def test_progress_reports_cover_both_orders(self):
        class Recorder:
            def __init__(self):
                self.calls = []

            def on_epoch(self, epoch, total, loss):
                self.calls.append((epoch, total))

        recorder = Recorder()
        train_views(
            [("host", small_graph(), FAST)],
            ParallelConfig(
                workers=2, backend="thread", min_parallel_weight=0
            ),
            progress=recorder,
        )
        assert recorder.calls, "expected progress callbacks"
        # Reports from the two orders interleave, but together they must
        # cover every epoch of the serial sequence exactly once.
        epochs = sorted(epoch for epoch, __ in recorder.calls)
        total = recorder.calls[0][1]
        assert epochs == list(range(1, total + 1))

    def test_worker_failure_surfaces_as_embedding_error(self, monkeypatch):
        import repro.parallel.train as train_module

        def _broken(*args, **kwargs):
            raise RuntimeError("synthetic worker crash")

        monkeypatch.setattr(train_module, "_run_embedding_task", _broken)
        with pytest.raises(EmbeddingError):
            train_views(
                [("host", small_graph(), FAST)],
                ParallelConfig(
                    workers=2, backend="thread", min_parallel_weight=0
                ),
            )
