"""Unit tests for IP space allocation and rotating pools."""

import pytest

from repro.simulation.ipspace import IpSpace, ProviderBlock, RotatingPool


class TestProviderBlock:
    def test_sequential_allocation(self):
        block = ProviderBlock(name="x", base=0x5D000000, size=4)
        ips = block.allocate_many(4)
        assert len(set(ips)) == 4
        assert ips[0] == "93.0.0.0"

    def test_exhaustion_raises(self):
        block = ProviderBlock(name="x", base=0x5D000000, size=1)
        block.allocate()
        with pytest.raises(RuntimeError, match="exhausted"):
            block.allocate()


class TestIpSpace:
    def test_blocks_never_overlap(self):
        space = IpSpace()
        a = space.new_block("a", size=4096).allocate_many(100)
        b = space.new_block("b", size=4096).allocate_many(100)
        assert not set(a) & set(b)

    def test_duplicate_block_name_rejected(self):
        space = IpSpace()
        space.new_block("a")
        with pytest.raises(ValueError, match="already exists"):
            space.new_block("a")

    def test_campus_ips_are_rfc1918(self):
        space = IpSpace()
        assert space.campus_ip(0).startswith("10.20.")
        assert space.campus_ip(300) != space.campus_ip(0)

    def test_block_lookup(self):
        space = IpSpace()
        block = space.new_block("cdn")
        assert space.block("cdn") is block
        assert space.block_names == ["cdn"]


class TestRotatingPool:
    @pytest.fixture()
    def pool(self):
        return RotatingPool(
            addresses=[f"93.0.0.{i}" for i in range(32)],
            rotation_period=300.0,
            active_size=5,
            seed=7,
        )

    def test_stable_within_period(self, pool):
        assert pool.addresses_at(10.0) == pool.addresses_at(299.0)

    def test_rotates_across_periods(self, pool):
        first = set(pool.addresses_at(10.0))
        later = {
            address
            for period in range(1, 10)
            for address in pool.addresses_at(period * 300.0 + 1)
        }
        assert later != first  # the active set drifts over time

    def test_active_size_respected(self, pool):
        assert len(pool.addresses_at(0.0)) == 5

    def test_active_size_capped_by_pool(self):
        pool = RotatingPool(
            addresses=["93.0.0.1", "93.0.0.2"],
            rotation_period=60.0,
            active_size=10,
        )
        assert len(pool.addresses_at(0.0)) == 2

    def test_resolve_returns_active_address(self, pool, rng):
        for __ in range(20):
            assert pool.resolve(450.0, rng) in pool.addresses_at(450.0)

    def test_empty_pool(self):
        pool = RotatingPool(addresses=[], rotation_period=60.0, active_size=3)
        assert pool.addresses_at(0.0) == []

    def test_deterministic_for_seed(self):
        args = dict(
            addresses=[f"93.0.0.{i}" for i in range(16)],
            rotation_period=60.0,
            active_size=4,
            seed=3,
        )
        assert RotatingPool(**args).addresses_at(120.0) == RotatingPool(
            **args
        ).addresses_at(120.0)
