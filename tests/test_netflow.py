"""Unit tests for the netflow substrate and pattern mining."""

import numpy as np
import pytest

from repro.core.clustering import DomainCluster
from repro.dns.types import DnsResponse, QueryType, ResourceRecord
from repro.netflow.flows import FlowRecord, NetflowSimulator
from repro.netflow.patterns import (
    mine_cluster_patterns,
    shared_infrastructure_index,
)
from repro.simulation.groundtruth import (
    DomainCategory,
    DomainRecord,
    GroundTruth,
)


@pytest.fixture(scope="module")
def truth():
    return GroundTruth(
        [
            DomainRecord("spam1.bid", DomainCategory.SPAM, "spam-0"),
            DomainRecord("spam2.bid", DomainCategory.SPAM, "spam-0"),
            DomainRecord("good.com", DomainCategory.LONGTAIL_SITE, "longtail"),
        ]
    )


def resolved(t, qname, ip, dest="10.20.0.5"):
    return DnsResponse(
        t, 1, dest, qname,
        answers=(ResourceRecord(QueryType.A, ip, 300),),
    )


class TestNetflowSimulator:
    def test_malicious_resolutions_always_produce_flows(self, truth):
        simulator = NetflowSimulator(truth, benign_sampling_rate=0.0)
        responses = [
            resolved(float(i), "spam1.bid", "93.0.0.1") for i in range(20)
        ]
        flows = list(simulator.flows_from(responses))
        assert len(flows) == 20
        assert all(flow.domain == "spam1.bid" for flow in flows)

    def test_spam_ports_match_paper_example(self, truth):
        simulator = NetflowSimulator(truth, benign_sampling_rate=0.0, seed=3)
        responses = [
            resolved(float(i), "spam1.bid", "93.0.0.1") for i in range(300)
        ]
        ports = {flow.dst_port for flow in simulator.flows_from(responses)}
        assert ports == {80, 1337, 2710}

    def test_benign_sampled(self, truth):
        simulator = NetflowSimulator(truth, benign_sampling_rate=0.5, seed=1)
        responses = [
            resolved(float(i), "www.good.com", "93.0.0.9") for i in range(400)
        ]
        flows = list(simulator.flows_from(responses))
        assert 100 < len(flows) < 300  # ~50% sampling
        assert all(flow.dst_port in (80, 443) for flow in flows)

    def test_nxdomain_produces_no_flow(self, truth):
        simulator = NetflowSimulator(truth)
        response = DnsResponse(1.0, 1, "10.20.0.5", "spam1.bid", nxdomain=True)
        assert list(simulator.flows_from([response])) == []

    def test_flow_goes_to_resolved_ip(self, truth):
        simulator = NetflowSimulator(truth, seed=2)
        flows = list(
            simulator.flows_from([resolved(1.0, "spam2.bid", "93.0.0.77")])
        )
        assert flows[0].dst_ip == "93.0.0.77"
        assert flows[0].src_ip == "10.20.0.5"

    def test_invalid_sampling_rate(self, truth):
        with pytest.raises(ValueError):
            NetflowSimulator(truth, benign_sampling_rate=1.5)


class TestPatternMining:
    @pytest.fixture()
    def flows(self):
        return [
            FlowRecord(1.0, "10.20.0.1", "93.0.0.1", 80, 10, 100, "spam1.bid"),
            FlowRecord(2.0, "10.20.0.2", "93.0.0.1", 1337, 10, 100, "spam1.bid"),
            FlowRecord(3.0, "10.20.0.3", "93.0.0.1", 2710, 10, 100, "spam2.bid"),
            FlowRecord(4.0, "10.20.0.1", "93.0.0.9", 443, 10, 100, "other.com"),
        ]

    def test_cluster_pattern_aggregation(self, flows):
        cluster = DomainCluster(0, ["spam1.bid", "spam2.bid"], np.zeros(2))
        patterns = mine_cluster_patterns([cluster], flows)
        assert len(patterns) == 1
        pattern = patterns[0]
        assert pattern.server_ips == {"93.0.0.1"}
        assert pattern.destination_ports == {80, 1337, 2710}
        assert pattern.campus_hosts == {"10.20.0.1", "10.20.0.2", "10.20.0.3"}
        assert pattern.flow_count == 3

    def test_summary_mentions_counts(self, flows):
        cluster = DomainCluster(0, ["spam1.bid", "spam2.bid"], np.zeros(2))
        pattern = mine_cluster_patterns([cluster], flows)[0]
        summary = pattern.summary()
        assert "2 domains" in summary
        assert "1 server IP" in summary
        assert "80,1337,2710" in summary

    def test_unrelated_flows_ignored(self, flows):
        cluster = DomainCluster(1, ["spam1.bid"], np.zeros(2))
        pattern = mine_cluster_patterns([cluster], flows)[0]
        assert "93.0.0.9" not in pattern.server_ips

    def test_shared_infrastructure_index(self, flows):
        index = shared_infrastructure_index(flows)
        assert index["93.0.0.1"] == {"spam1.bid", "spam2.bid"}
        assert index["93.0.0.9"] == {"other.com"}
