"""Unit tests for ground-truth bookkeeping."""

import pytest

from repro.simulation.groundtruth import (
    DomainCategory,
    DomainRecord,
    GroundTruth,
)


@pytest.fixture()
def truth():
    return GroundTruth(
        [
            DomainRecord("good.com", DomainCategory.POPULAR_SITE, "popular"),
            DomainRecord("tail.net", DomainCategory.LONGTAIL_SITE, "longtail"),
            DomainRecord("evil.ws", DomainCategory.DGA, "dga-0", 3.0),
            DomainRecord("evil2.ws", DomainCategory.DGA, "dga-0", 4.0),
            DomainRecord("cc.biz", DomainCategory.CNC, "cnc-0", 90.0),
        ]
    )


class TestDomainCategory:
    def test_malicious_categories(self):
        assert DomainCategory.DGA.is_malicious
        assert DomainCategory.SPAM.is_malicious
        assert not DomainCategory.CDN.is_malicious
        assert not DomainCategory.POPULAR_SITE.is_malicious


class TestGroundTruth:
    def test_lookup(self, truth):
        assert truth.get("evil.ws").family == "dga-0"
        assert truth.get("nope.com") is None
        assert "good.com" in truth
        assert len(truth) == 5

    def test_is_malicious_unknown_defaults_benign(self, truth):
        assert truth.is_malicious("evil.ws")
        assert not truth.is_malicious("good.com")
        assert not truth.is_malicious("unknown.example")

    def test_partitions(self, truth):
        assert set(truth.malicious_domains) == {"evil.ws", "evil2.ws", "cc.biz"}
        assert set(truth.benign_domains) == {"good.com", "tail.net"}

    def test_family_members(self, truth):
        assert set(truth.family_members("dga-0")) == {"evil.ws", "evil2.ws"}
        assert truth.families >= {"dga-0", "cnc-0"}

    def test_duplicate_rejected(self, truth):
        with pytest.raises(ValueError, match="duplicate"):
            truth.add(DomainRecord("evil.ws", DomainCategory.SPAM, "x"))

    def test_round_trip(self, truth, tmp_path):
        path = tmp_path / "truth.tsv"
        truth.save(path)
        loaded = GroundTruth.load(path)
        assert len(loaded) == len(truth)
        assert loaded.get("evil.ws").category is DomainCategory.DGA
        assert loaded.get("evil.ws").registration_age_days == 3.0

    def test_record_raises_for_unknown(self, truth):
        with pytest.raises(KeyError):
            truth.record("unknown.example")
