"""Unit tests for the host population and DHCP churn simulation."""

import numpy as np
import pytest

from repro.simulation.config import HostPopulationConfig, SECONDS_PER_DAY
from repro.simulation.hosts import HostPopulation


@pytest.fixture(scope="module")
def population():
    config = HostPopulationConfig(host_count=60)
    return HostPopulation(
        config, duration=3 * SECONDS_PER_DAY, rng=np.random.default_rng(3)
    )


class TestPopulationComposition:
    def test_host_count_exact(self, population):
        assert len(population.hosts) == 60

    def test_macs_are_unique(self, population):
        macs = {h.mac for h in population.hosts}
        assert len(macs) == 60

    def test_device_class_mix(self, population):
        classes = {h.device_class for h in population.hosts}
        assert classes == {"desktop", "laptop", "phone", "iot"}

    def test_interactive_excludes_iot(self, population):
        assert all(h.device_class != "iot" for h in population.interactive_hosts)
        assert all(h.device_class == "iot" for h in population.iot_hosts)
        total = len(population.interactive_hosts) + len(population.iot_hosts)
        assert total == 60


class TestLeases:
    def test_every_host_covered_at_all_times(self, population):
        for host in population.hosts:
            for t in (0.0, 1e4, SECONDS_PER_DAY, 2.9 * SECONDS_PER_DAY):
                assert host.ip_at(t) is not None

    def test_leases_are_contiguous(self, population):
        for host in population.hosts:
            for (_, __, end_a), (_, start_b, __b) in zip(
                host.leases, host.leases[1:]
            ):
                assert end_a == start_b

    def test_no_concurrent_lease_sharing(self, population):
        """No IP is held by two devices at overlapping times."""
        intervals: dict[str, list[tuple[float, float]]] = {}
        for host in population.hosts:
            for ip, start, end in host.leases:
                intervals.setdefault(ip, []).append((start, end))
        for ip, spans in intervals.items():
            spans.sort()
            for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
                assert end_a <= start_b, f"overlapping leases on {ip}"

    def test_phones_churn_more_than_desktops(self, population):
        phone_leases = [
            len(h.leases) for h in population.hosts if h.device_class == "phone"
        ]
        desktop_leases = [
            len(h.leases) for h in population.hosts if h.device_class == "desktop"
        ]
        assert np.mean(phone_leases) > np.mean(desktop_leases)

    def test_dhcp_log_matches_leases(self, population):
        log = population.dhcp_log()
        assert len(log) == sum(len(h.leases) for h in population.hosts)
        assert log.macs == {h.mac for h in population.hosts}


class TestSampling:
    def test_sample_hosts_distinct(self, population, rng):
        sample = population.sample_hosts(10, rng)
        assert len({h.mac for h in sample}) == 10

    def test_sample_capped_at_pool_size(self, population, rng):
        sample = population.sample_hosts(10_000, rng)
        assert len(sample) == len(population.interactive_hosts)

    def test_sample_interactive_only_by_default(self, population, rng):
        sample = population.sample_hosts(20, rng)
        assert all(h.is_interactive for h in sample)
