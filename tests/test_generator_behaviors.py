"""Behavior-level tests for specific traffic models in the generator."""

import pytest

from repro.simulation import SimulationConfig, TraceGenerator
from repro.simulation.config import SECONDS_PER_DAY
from repro.simulation.groundtruth import DomainCategory


@pytest.fixture(scope="module")
def behavior_trace():
    config = SimulationConfig.tiny(seed=13)
    config.duration_days = 3.0
    config.benign.background_service_count = 12
    config.benign.services_per_host = 4
    return TraceGenerator(config).generate()


def queries_for(trace, domain):
    return [q for q in trace.queries if q.qname.endswith(domain)]


class TestBackgroundServices:
    def test_services_present_in_truth(self, behavior_trace):
        services = [
            r.name
            for r in behavior_trace.ground_truth
            if r.family == "background-service"
        ]
        assert len(services) == 12

    def test_services_polled_steadily(self, behavior_trace):
        services = [
            r.name
            for r in behavior_trace.ground_truth
            if r.family == "background-service"
        ]
        # At least one service is queried on every simulated day.
        steady = 0
        for service in services:
            days = {
                int(q.timestamp // SECONDS_PER_DAY)
                for q in queries_for(behavior_trace, service)
            }
            if len(days) == 3:
                steady += 1
        assert steady >= len(services) // 2

    def test_services_resolve(self, behavior_trace):
        services = {
            r.name
            for r in behavior_trace.ground_truth
            if r.family == "background-service"
        }
        resolved = {
            r.qname.split(".", 1)[1] if r.qname.startswith("api.") else r.qname
            for r in behavior_trace.responses
            if not r.nxdomain
        }
        assert services & resolved


class TestFlashCrowds:
    def test_some_longtail_site_has_burst_day(self, behavior_trace):
        """At least one long-tail site shows a dominant single day."""
        longtail = [
            r.name
            for r in behavior_trace.ground_truth
            if r.category is DomainCategory.LONGTAIL_SITE
        ]
        burst_found = False
        for domain in longtail:
            day_counts: dict[int, int] = {}
            for q in queries_for(behavior_trace, domain):
                day = int(q.timestamp // SECONDS_PER_DAY)
                day_counts[day] = day_counts.get(day, 0) + 1
            total = sum(day_counts.values())
            if total >= 10 and max(day_counts.values()) / total > 0.7:
                burst_found = True
                break
        assert burst_found


class TestIotTraffic:
    def test_iot_hosts_query_vendor_domains_only(self, behavior_trace):
        iot_records = [
            r for r in behavior_trace.ground_truth if r.family == "iot-vendor"
        ]
        assert iot_records
        vendor_queries = [
            q
            for q in behavior_trace.queries
            if any(q.qname.endswith(r.name) for r in iot_records)
        ]
        assert vendor_queries
        # Vendor polling continues at night (IoT has no diurnal cycle).
        night = [
            q
            for q in vendor_queries
            if 2 <= (q.timestamp % SECONDS_PER_DAY) / 3600 < 5
        ]
        assert night


class TestAccidentalContacts:
    def test_clean_hosts_touch_malicious_domains_rarely(self):
        config = SimulationConfig.tiny(seed=29)
        config.malware.accidental_contact_rate = 0.05
        trace = TraceGenerator(config).generate()
        truth = trace.ground_truth
        malicious = set(truth.malicious_domains)
        hosts_touching = set()
        for q in trace.queries:
            if q.qname in malicious:
                hosts_touching.add(q.source_ip)
        # With a high accidental rate, many distinct source IPs appear.
        assert len(hosts_touching) > 10
