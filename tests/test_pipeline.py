"""Integration tests for the end-to-end detection pipeline."""

import numpy as np
import pytest

from repro import (
    FeatureView,
    MaliciousDomainDetector,
    PipelineConfig,
)
from repro.errors import GraphConstructionError, NotFittedError
from repro.ml import roc_auc_score


class TestPipelineStages:
    def test_graphs_built(self, processed_detector):
        assert processed_detector.host_domain is not None
        assert processed_detector.domain_ip is not None
        assert processed_detector.domain_time is not None
        assert processed_detector.pruning_report is not None
        assert processed_detector.pruning_report.domains_after > 50

    def test_similarity_graphs_share_vertex_order(self, processed_detector):
        graphs = processed_detector.similarity_graphs
        orders = {tuple(g.domains) for g in graphs.values()}
        assert len(orders) == 1
        assert list(orders)[0] == tuple(processed_detector.domains)

    def test_feature_space_dimension(self, processed_detector):
        # 3 views x the 16-dim test config.
        assert processed_detector.feature_space.dimension == 48

    def test_features_for_returns_rows_per_domain(self, processed_detector):
        domains = processed_detector.domains[:7]
        matrix = processed_detector.features_for(domains)
        assert matrix.shape == (7, 48)

    def test_single_view_features(self, processed_detector):
        domains = processed_detector.domains[:5]
        matrix = processed_detector.features_for(domains, [FeatureView.IP])
        assert matrix.shape == (5, 16)


class TestSupervisedStage:
    def test_fit_predict_cycle(self, processed_detector, labeled_dataset):
        processed_detector.fit(labeled_dataset)
        scores = processed_detector.decision_scores(labeled_dataset.domains)
        auc = roc_auc_score(labeled_dataset.labels, scores)
        assert auc > 0.8  # training-set AUC on the tiny trace

    def test_predictions_binary(self, processed_detector, labeled_dataset):
        processed_detector.fit(labeled_dataset)
        predictions = processed_detector.predict(labeled_dataset.domains[:10])
        assert set(np.unique(predictions)) <= {0, 1}

    def test_unknown_domain_scoring(self, processed_detector, labeled_dataset):
        processed_detector.fit(labeled_dataset)
        scores = processed_detector.decision_scores(["never-seen.example.com"])
        assert scores.shape == (1,)


class TestUnsupervisedStage:
    def test_clustering_covers_requested_domains(self, processed_detector):
        domains = processed_detector.domains[:60]
        clusters = processed_detector.cluster(domains, k_max=10)
        members = [d for c in clusters for d in c.domains]
        assert sorted(members) == sorted(domains)


class TestStageOrderingErrors:
    def test_similarity_before_graphs_raises(self):
        with pytest.raises(GraphConstructionError):
            MaliciousDomainDetector().build_similarity_graphs()

    def test_domains_before_graphs_raises(self):
        with pytest.raises(NotFittedError):
            MaliciousDomainDetector().domains

    def test_scores_before_fit_raises(self, tiny_trace, fast_line_config):
        detector = MaliciousDomainDetector(
            PipelineConfig(embedding=fast_line_config)
        )
        detector.process(
            tiny_trace.queries, tiny_trace.responses, tiny_trace.dhcp
        )
        with pytest.raises(NotFittedError):
            detector.decision_scores(["a.com"])

    def test_features_before_embeddings_raises(self, tiny_trace):
        detector = MaliciousDomainDetector()
        detector.build_graphs(
            tiny_trace.queries, tiny_trace.responses, tiny_trace.dhcp
        )
        with pytest.raises(NotFittedError):
            detector.features_for(["a.com"])


class TestDetectionQuality:
    def test_detector_beats_chance_on_tiny_trace(
        self, tiny_trace, processed_detector, labeled_dataset
    ):
        """Out-of-sample sanity: scores order malicious above benign."""
        from repro.core.detector import MaliciousDomainClassifier
        from repro.ml import cross_validated_scores

        features = processed_detector.features_for(labeled_dataset.domains)
        scores, __ = cross_validated_scores(
            features,
            labeled_dataset.labels,
            MaliciousDomainClassifier,
            n_splits=5,
        )
        auc = roc_auc_score(labeled_dataset.labels, scores)
        assert auc > 0.75
