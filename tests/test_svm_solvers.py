"""Equivalence and behavior of the cached vs dense SMO solvers."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.kernels import KernelParams, KernelRowCache
from repro.ml.svm import (
    ConvergenceWarning,
    SupportVectorClassifier,
    _solve_smo_cached,
)

# Tight tolerance so both solvers land on the (decision-function-unique)
# optimum; the parity bound below is then meaningful at 1e-6.
PARITY = dict(tolerance=1e-8, max_iterations=500_000)


def _dataset(seed: int, n: int = 80, dims: int = 5):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, dims))
    labels = (
        features[:, 0] + 0.4 * features[:, 1] + 0.1 * rng.normal(size=n) > 0
    ).astype(int)
    if labels.min() == labels.max():  # pragma: no cover - seed-dependent
        labels[0] = 1 - labels[0]
    return features, labels


def _fit_pair(features, labels, **kwargs):
    params = {**PARITY, **kwargs}
    dense = SupportVectorClassifier(solver="dense", **params).fit(
        features, labels
    )
    cached = SupportVectorClassifier(solver="cached", **params).fit(
        features, labels
    )
    return dense, cached


class TestSolverParity:
    @pytest.mark.parametrize("kernel", ["rbf", "linear", "poly"])
    def test_decision_function_parity(self, kernel):
        features, labels = _dataset(seed=1)
        dense, cached = _fit_pair(
            features, labels, c=1.0, kernel=kernel, gamma=0.4
        )
        probe = np.random.default_rng(2).normal(size=(40, features.shape[1]))
        np.testing.assert_allclose(
            dense.decision_function(probe),
            cached.decision_function(probe),
            atol=1e-6,
            rtol=0,
        )

    @pytest.mark.parametrize("kernel", ["rbf", "linear", "poly"])
    def test_support_count_and_bias_parity(self, kernel):
        features, labels = _dataset(seed=3, n=60)
        dense, cached = _fit_pair(
            features, labels, c=0.5, kernel=kernel, gamma=0.3
        )
        assert dense.support_vector_count == cached.support_vector_count
        assert abs(dense._bias - cached._bias) < 1e-6

    def test_parity_with_paper_defaults(self):
        features, labels = _dataset(seed=5, n=90, dims=8)
        dense, cached = _fit_pair(features, labels, c=0.09, gamma=0.06)
        np.testing.assert_allclose(
            dense.decision_function(features),
            cached.decision_function(features),
            atol=1e-6,
            rtol=0,
        )

    def test_parity_under_tiny_cache(self):
        # Budget admits only the 2-row minimum: every iteration recomputes.
        features, labels = _dataset(seed=7, n=70)
        params = dict(c=1.0, gamma=0.2, **PARITY)
        dense = SupportVectorClassifier(solver="dense", **params).fit(
            features, labels
        )
        cached = SupportVectorClassifier(
            solver="cached", kernel_cache_mb=1e-6, **params
        ).fit(features, labels)
        np.testing.assert_allclose(
            dense.decision_function(features),
            cached.decision_function(features),
            atol=1e-6,
            rtol=0,
        )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        kernel=st.sampled_from(["rbf", "linear", "poly"]),
        c=st.floats(0.05, 5.0),
    )
    def test_parity_hypothesis(self, seed, kernel, c):
        features, labels = _dataset(seed=seed, n=40, dims=3)
        dense, cached = _fit_pair(
            features, labels, c=c, kernel=kernel, gamma=0.5
        )
        np.testing.assert_allclose(
            dense.decision_function(features),
            cached.decision_function(features),
            atol=1e-6,
            rtol=0,
        )
        assert dense.support_vector_count == cached.support_vector_count


class TestDegenerateInputs:
    @pytest.mark.parametrize("solver", ["dense", "cached"])
    def test_single_class_rejected(self, solver):
        features = np.random.default_rng(0).normal(size=(10, 3))
        with pytest.raises(ValueError, match="2 classes"):
            SupportVectorClassifier(solver=solver).fit(
                features, np.zeros(10, dtype=int)
            )

    def test_all_bounded_alphas_parity(self):
        # A tiny C drives every alpha to its box bound — the bias must
        # then fall back to averaging over bound support vectors.
        features, labels = _dataset(seed=11, n=50)
        dense, cached = _fit_pair(features, labels, c=1e-4, gamma=0.3)
        assert dense.support_vector_count == cached.support_vector_count
        np.testing.assert_allclose(
            dense.decision_function(features),
            cached.decision_function(features),
            atol=1e-6,
            rtol=0,
        )

    def test_duplicate_rows_parity(self):
        rng = np.random.default_rng(13)
        base = rng.normal(size=(20, 4))
        features = np.vstack([base, base[:10]])  # exact duplicates
        labels = (features[:, 0] > 0).astype(int)
        if labels.min() == labels.max():  # pragma: no cover
            labels[0] = 1 - labels[0]
        dense, cached = _fit_pair(features, labels, c=1.0, gamma=0.5)
        np.testing.assert_allclose(
            dense.decision_function(features),
            cached.decision_function(features),
            atol=1e-6,
            rtol=0,
        )

    def test_conflicting_duplicate_labels(self):
        # Same point, both labels: not separable; solver must still halt.
        features = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0], [1.0, 1.0]])
        labels = np.array([0, 1, 0, 1])
        model = SupportVectorClassifier(
            solver="cached", c=1.0, tolerance=1e-3, max_iterations=10_000
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            model.fit(features, labels)
        assert model.decision_function(features).shape == (4,)


class TestConvergenceWarning:
    def test_tiny_budget_warns_and_flags(self):
        features, labels = _dataset(seed=17, n=60)
        with pytest.warns(ConvergenceWarning, match="max_iterations"):
            model = SupportVectorClassifier(
                solver="cached", c=1.0, max_iterations=3
            ).fit(features, labels)
        assert model.converged_ is False

    def test_dense_solver_warns_too(self):
        features, labels = _dataset(seed=17, n=60)
        with pytest.warns(ConvergenceWarning):
            model = SupportVectorClassifier(
                solver="dense", c=1.0, max_iterations=3
            ).fit(features, labels)
        assert model.converged_ is False

    def test_normal_fit_does_not_warn(self):
        features, labels = _dataset(seed=19, n=50)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            model = SupportVectorClassifier(solver="cached", c=1.0).fit(
                features, labels
            )
        assert model.converged_ is True


class TestSolverConfig:
    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="solver"):
            SupportVectorClassifier(solver="turbo")

    def test_nonpositive_cache_rejected(self):
        with pytest.raises(ValueError, match="kernel_cache_mb"):
            SupportVectorClassifier(kernel_cache_mb=0.0)

    def test_fit_telemetry_attributes(self):
        features, labels = _dataset(seed=23, n=50)
        cached = SupportVectorClassifier(solver="cached").fit(features, labels)
        assert cached.fit_seconds_ is not None and cached.fit_seconds_ > 0
        assert 0.0 <= cached.cache_hit_ratio_ <= 1.0
        dense = SupportVectorClassifier(solver="dense").fit(features, labels)
        assert dense.cache_hit_ratio_ is None


class TestKernelRowCache:
    def test_budget_bounds_bytes_held(self):
        features = np.random.default_rng(0).normal(size=(256, 4))
        params = KernelParams(kind="rbf", gamma=0.5)
        budget_mb = 0.01  # 10 KiB -> 5 rows of 2 KiB each
        cache = KernelRowCache(features, params, budget_mb)
        for index in range(64):
            cache.row(index % 16)
        assert cache.bytes_held <= budget_mb * 1024 * 1024
        assert cache.hits + cache.misses == 64
        assert cache.evictions > 0

    def test_lru_eviction_order(self):
        features = np.random.default_rng(1).normal(size=(8, 2))
        params = KernelParams(kind="linear")
        cache = KernelRowCache(features, params, 1.0)
        cache.capacity = 2
        cache.row(0)
        cache.row(1)
        cache.row(0)  # refresh 0 -> 1 is now coldest
        cache.row(2)  # evicts 1
        assert cache.row(0) is not None and cache.hits >= 2
        before = cache.misses
        cache.row(1)  # must recompute
        assert cache.misses == before + 1

    def test_row_values_match_full_matrix(self):
        features = np.random.default_rng(2).normal(size=(20, 3))
        params = KernelParams(kind="rbf", gamma=0.3)
        full = params.matrix(features, features)
        cache = KernelRowCache(features, params, 1.0)
        for index in (0, 7, 19):
            np.testing.assert_allclose(cache.row(index), full[index])

    def test_solver_respects_budget_accounting(self):
        features, labels = _dataset(seed=29, n=200, dims=4)
        signed = np.where(labels == 1, 1.0, -1.0)
        result = _solve_smo_cached(
            features,
            signed,
            c=1.0,
            tolerance=1e-6,
            max_iterations=100_000,
            params=KernelParams(kind="rbf", gamma=0.3),
            cache_mb=0.003,  # ~2 rows of 1600 B
            shrink_interval=25,
        )
        assert result.converged
        assert result.shrink_events >= 0
        assert result.cache_hits + result.cache_misses > 0
