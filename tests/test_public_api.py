"""Contract tests for the public API surface."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_is_semver(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    @pytest.mark.parametrize(
        "module",
        [
            "repro.dns",
            "repro.simulation",
            "repro.labels",
            "repro.graphs",
            "repro.embedding",
            "repro.ml",
            "repro.core",
            "repro.baselines",
            "repro.netflow",
            "repro.analysis",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        imported = importlib.import_module(module)
        for name in getattr(imported, "__all__", []):
            assert hasattr(imported, name), f"{module}.{name} missing"

    def test_every_public_item_documented(self):
        """Each __all__ entry carries a docstring (deliverable e)."""
        undocumented = []
        for module_name in (
            "repro",
            "repro.dns",
            "repro.graphs",
            "repro.embedding",
            "repro.ml",
            "repro.core",
            "repro.baselines",
            "repro.analysis",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                item = getattr(module, name)
                if callable(item) and not getattr(item, "__doc__", None):
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_paper_constants_exposed(self):
        from repro.core.detector import PAPER_GAMMA, PAPER_PENALTY

        assert PAPER_PENALTY == 0.09
        assert PAPER_GAMMA == 0.06
