"""Unit tests for the SMO-trained kernel SVM."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.svm import SupportVectorClassifier


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    n = 150
    features = np.vstack(
        [rng.normal(-1.2, 0.6, size=(n, 2)), rng.normal(1.2, 0.6, size=(n, 2))]
    )
    labels = np.array([0] * n + [1] * n)
    return features, labels


class TestFitPredict:
    def test_separable_blobs(self, blobs):
        features, labels = blobs
        model = SupportVectorClassifier(c=1.0, gamma=0.5).fit(features, labels)
        assert model.score(features, labels) > 0.95
        assert model.converged_

    def test_decision_sign_matches_prediction(self, blobs):
        features, labels = blobs
        model = SupportVectorClassifier(c=1.0, gamma=0.5).fit(features, labels)
        scores = model.decision_function(features)
        predictions = model.predict(features)
        assert np.all((scores >= 0) == (predictions == 1))

    def test_linear_kernel(self, blobs):
        features, labels = blobs
        model = SupportVectorClassifier(c=5.0, kernel="linear").fit(
            features, labels
        )
        assert model.score(features, labels) > 0.95

    def test_poly_kernel(self, blobs):
        features, labels = blobs
        model = SupportVectorClassifier(
            c=1.0, kernel="poly", gamma=0.5, degree=2
        ).fit(features, labels)
        assert model.score(features, labels) > 0.9

    def test_xor_needs_nonlinear_kernel(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(400, 2))
        y = ((x[:, 0] * x[:, 1]) > 0).astype(int)
        rbf = SupportVectorClassifier(c=5.0, gamma=2.0).fit(x, y)
        assert rbf.score(x, y) > 0.9  # XOR is RBF-separable

    def test_arbitrary_label_values(self, blobs):
        features, __ = blobs
        labels = np.array(["benign"] * 150 + ["malicious"] * 150)
        model = SupportVectorClassifier(c=1.0, gamma=0.5).fit(features, labels)
        predictions = model.predict(features)
        assert set(predictions) <= {"benign", "malicious"}
        assert np.mean(predictions == labels) > 0.95

    def test_dual_feasibility(self, blobs):
        """Support-vector coefficients obey the box constraint."""
        features, labels = blobs
        c = 0.5
        model = SupportVectorClassifier(c=c, gamma=0.5).fit(features, labels)
        coefficients = model._support_coefficients
        assert np.all(np.abs(coefficients) <= c + 1e-9)
        # Equality constraint: sum of signed alphas is ~0.
        assert abs(coefficients.sum()) < 1e-6

    def test_paper_hyperparameters_run(self, blobs):
        features, labels = blobs
        model = SupportVectorClassifier().fit(features, labels)  # C=.09 γ=.06
        assert model.score(features, labels) > 0.8


class TestValidation:
    def test_not_fitted_errors(self):
        model = SupportVectorClassifier()
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 2)))
        with pytest.raises(NotFittedError):
            model.decision_function(np.zeros((1, 2)))
        with pytest.raises(NotFittedError):
            model.support_vector_count

    def test_bad_constructor_args(self):
        with pytest.raises(ValueError):
            SupportVectorClassifier(c=0.0)
        with pytest.raises(ValueError):
            SupportVectorClassifier(kernel="sigmoid")
        with pytest.raises(ValueError):
            SupportVectorClassifier(gamma=-1.0)

    def test_requires_two_classes(self):
        with pytest.raises(ValueError, match="2 classes"):
            SupportVectorClassifier().fit(np.zeros((5, 2)), np.zeros(5))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            SupportVectorClassifier().fit(np.zeros((5, 2)), np.zeros(4))

    def test_1d_features_rejected(self):
        with pytest.raises(ValueError):
            SupportVectorClassifier().fit(np.zeros(5), np.zeros(5))

    def test_single_sample_prediction(self, blobs):
        features, labels = blobs
        model = SupportVectorClassifier(c=1.0, gamma=0.5).fit(features, labels)
        score = model.decision_function(features[0])
        assert score.shape == (1,)
