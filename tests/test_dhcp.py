"""Unit tests for DHCP logs and host-identity resolution."""

import io

import pytest

from repro.dns.dhcp import DhcpLog, HostIdentityResolver
from repro.dns.types import DhcpLease
from repro.errors import DnsLogFormatError


@pytest.fixture()
def log():
    return DhcpLog(
        [
            DhcpLease("aa:01", "10.20.0.1", 0.0, 100.0),
            DhcpLease("aa:02", "10.20.0.1", 100.0, 200.0),  # IP re-leased
            DhcpLease("aa:01", "10.20.0.2", 100.0, 300.0),  # host moved
            DhcpLease("aa:03", "10.20.0.3", 0.0, 300.0),
        ]
    )


class TestDhcpLog:
    def test_len_and_macs(self, log):
        assert len(log) == 4
        assert log.macs == {"aa:01", "aa:02", "aa:03"}

    def test_round_trip(self, log, tmp_path):
        path = tmp_path / "dhcp.log"
        log.save(path)
        loaded = DhcpLog.load(path)
        assert list(loaded) == list(log)

    def test_stream_round_trip(self, log):
        buffer = io.StringIO()
        log.save(buffer)
        buffer.seek(0)
        assert list(DhcpLog.load(buffer)) == list(log)

    def test_malformed_line_raises(self):
        with pytest.raises(DnsLogFormatError):
            DhcpLog.load(io.StringIO("aa:01\t10.0.0.1\t0.0\n"))

    def test_bad_interval_raises(self):
        with pytest.raises(DnsLogFormatError):
            DhcpLog.load(io.StringIO("aa:01\t10.0.0.1\t5.0\t5.0\n"))


class TestHostIdentityResolver:
    def test_resolves_to_current_holder(self, log):
        resolver = HostIdentityResolver(log)
        assert resolver.resolve("10.20.0.1", 50.0) == "aa:01"
        assert resolver.resolve("10.20.0.1", 150.0) == "aa:02"

    def test_host_identity_stable_across_ip_change(self, log):
        resolver = HostIdentityResolver(log)
        # aa:01 had 10.20.0.1 then moved to 10.20.0.2: both attribute
        # to the same physical device.
        assert resolver.resolve("10.20.0.1", 10.0) == "aa:01"
        assert resolver.resolve("10.20.0.2", 250.0) == "aa:01"

    def test_unknown_ip_returns_none(self, log):
        resolver = HostIdentityResolver(log)
        assert resolver.resolve("192.168.1.1", 50.0) is None

    def test_gap_between_leases_returns_none(self):
        resolver = HostIdentityResolver(
            DhcpLog([DhcpLease("aa:01", "10.0.0.1", 100.0, 200.0)])
        )
        assert resolver.resolve("10.0.0.1", 50.0) is None
        assert resolver.resolve("10.0.0.1", 250.0) is None

    def test_resolve_or_ip_falls_back(self, log):
        resolver = HostIdentityResolver(log)
        assert resolver.resolve_or_ip("192.168.1.1", 50.0) == "192.168.1.1"
        assert resolver.resolve_or_ip("10.20.0.3", 50.0) == "aa:03"

    def test_boundary_semantics(self, log):
        resolver = HostIdentityResolver(log)
        # Lease end is exclusive; the next lease owns the boundary instant.
        assert resolver.resolve("10.20.0.1", 100.0) == "aa:02"
