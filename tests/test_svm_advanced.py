"""Deeper SVM solver tests: KKT conditions and robustness cases."""

import numpy as np
import pytest

from repro.ml.kernels import rbf_kernel
from repro.ml.svm import SupportVectorClassifier, _solve_smo


@pytest.fixture(scope="module")
def solved():
    rng = np.random.default_rng(4)
    n = 80
    features = np.vstack(
        [rng.normal(-1, 0.7, size=(n, 2)), rng.normal(1, 0.7, size=(n, 2))]
    )
    labels = np.where(np.arange(2 * n) < n, -1.0, 1.0)
    c = 0.5
    kernel = rbf_kernel(features, features, gamma=0.8)
    result = _solve_smo(kernel, labels, c=c, tolerance=1e-4,
                        max_iterations=100_000)
    return features, labels, c, kernel, result


class TestKktConditions:
    def test_box_constraints(self, solved):
        __, __, c, __, result = solved
        assert np.all(result.alpha >= -1e-12)
        assert np.all(result.alpha <= c + 1e-12)

    def test_equality_constraint(self, solved):
        __, labels, __, __, result = solved
        assert abs(np.dot(result.alpha, labels)) < 1e-9

    def test_converged(self, solved):
        __, __, __, __, result = solved
        assert result.converged

    def test_margin_conditions(self, solved):
        """Free SVs sit on the margin; violators are at the C bound."""
        __, labels, c, kernel, result = solved
        decision = (result.alpha * labels) @ kernel + result.bias
        margins = labels * decision
        free = (result.alpha > 1e-8) & (result.alpha < c - 1e-8)
        if free.any():
            assert np.allclose(margins[free], 1.0, atol=5e-2)
        at_bound = result.alpha >= c - 1e-8
        if at_bound.any():
            assert np.all(margins[at_bound] <= 1.0 + 5e-2)

    def test_non_svs_outside_margin(self, solved):
        __, labels, __, kernel, result = solved
        decision = (result.alpha * labels) @ kernel + result.bias
        margins = labels * decision
        non_sv = result.alpha <= 1e-8
        if non_sv.any():
            assert np.all(margins[non_sv] >= 1.0 - 5e-2)


class TestRobustness:
    def test_duplicate_points_with_conflicting_labels(self):
        """Label noise on identical points must not crash the solver."""
        features = np.array([[0.0, 0.0]] * 6 + [[1.0, 1.0]] * 6)
        labels = np.array([0, 0, 0, 1, 0, 0, 1, 1, 1, 0, 1, 1])
        model = SupportVectorClassifier(c=1.0, gamma=1.0).fit(features, labels)
        assert model.score(features, labels) >= 0.5

    def test_tiny_dataset(self):
        features = np.array([[0.0], [1.0]])
        labels = np.array([0, 1])
        model = SupportVectorClassifier(c=1.0, gamma=1.0).fit(features, labels)
        assert model.predict(np.array([[0.0]]))[0] == 0
        assert model.predict(np.array([[1.0]]))[0] == 1

    def test_max_iterations_cap_respected(self):
        rng = np.random.default_rng(5)
        features = rng.normal(size=(200, 2))
        labels = rng.integers(0, 2, size=200)  # noise: slow convergence
        model = SupportVectorClassifier(
            c=10.0, gamma=5.0, max_iterations=50
        ).fit(features, labels)
        assert model.iterations_ <= 50

    def test_extreme_feature_scales(self):
        rng = np.random.default_rng(6)
        features = rng.normal(size=(60, 2)) * 1e6
        labels = (features[:, 0] > 0).astype(int)
        model = SupportVectorClassifier(c=1.0, gamma=1e-12).fit(
            features, labels
        )
        scores = model.decision_function(features)
        assert np.all(np.isfinite(scores))

    def test_high_dimensional_features(self):
        rng = np.random.default_rng(7)
        features = rng.normal(size=(50, 96))  # the pipeline's 3k dims
        labels = (features[:, 0] > 0).astype(int)
        model = SupportVectorClassifier().fit(features, labels)
        assert model.decision_function(features).shape == (50,)
