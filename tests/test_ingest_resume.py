"""Integration tests for checkpointed out-of-core ingestion.

The contract under test (docs/ingestion.md): chunked execution is
byte-identical to the monolithic in-memory pass, and a pipeline killed
at any point resumes from its last complete checkpoint to byte-identical
outputs — including a hard SIGKILL mid-run, which exercises the
manifest-written-last atomicity of the checkpoint format.
"""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import MaliciousDomainDetector, PipelineConfig
from repro.dns.dhcp import DhcpLog
from repro.dns.logfmt import DnsTraceReader
from repro.dns.types import DnsQuery, DnsResponse
from repro.embedding.line import LineConfig
from repro.ingest import (
    CheckpointedPipeline,
    ChunkPolicy,
    IngestConfig,
    PipelineCheckpointer,
    pipeline_fingerprint,
)
from repro.labels import (
    IntelligenceFeed,
    SimulatedVirusTotal,
    build_labeled_dataset,
)
from repro.simulation import SimulationConfig, TraceGenerator
from repro.simulation.groundtruth import GroundTruth

pytestmark = pytest.mark.slow

_CONFIG = PipelineConfig(
    embedding=LineConfig(dimension=8, total_samples=30_000, seed=13)
)


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("ingest-trace")
    TraceGenerator(SimulationConfig.tiny(seed=7)).generate().save(directory)
    return directory


@pytest.fixture(scope="module")
def label_feeds(trace_dir):
    truth = GroundTruth.load(trace_dir / "groundtruth.tsv")
    return IntelligenceFeed(truth), SimulatedVirusTotal(truth)


@pytest.fixture(scope="module")
def dataset_for(label_feeds):
    feed, virustotal = label_feeds

    def _build(domains):
        return build_labeled_dataset(feed, virustotal, domains)

    return _build


@pytest.fixture(scope="module")
def reference(trace_dir, dataset_for):
    """Monolithic cold-run outputs: (domains, scores, verdicts)."""
    records = list(DnsTraceReader(trace_dir / "dns.log"))
    queries = [r for r in records if isinstance(r, DnsQuery)]
    responses = [r for r in records if isinstance(r, DnsResponse)]
    dhcp = DhcpLog.load(trace_dir / "dhcp.log")
    detector = MaliciousDomainDetector(_CONFIG)
    detector.build_graphs(queries, responses, dhcp)
    detector.build_similarity_graphs()
    detector.learn_embeddings()
    detector.fit(dataset_for(detector.domains))
    domains = detector.domains
    return domains, detector.decision_scores(domains), detector.predict(
        domains
    )


def _chunked(trace_dir, checkpointer=None, max_records=700):
    return CheckpointedPipeline(
        _CONFIG,
        IngestConfig(
            chunk=ChunkPolicy(max_records=max_records),
            checkpoint_every_chunks=3,
        ),
        checkpointer,
        dhcp=DhcpLog.load(trace_dir / "dhcp.log"),
    )


class TestChunkedEquivalence:
    def test_chunked_matches_monolithic_bytes(
        self, trace_dir, dataset_for, reference
    ):
        domains, scores, verdicts = reference
        outcome = _chunked(trace_dir).run(
            trace_dir / "dns.log", dataset_for
        )
        assert outcome.resumed_from is None
        assert outcome.domains == domains
        assert np.array_equal(outcome.scores, scores)
        assert np.array_equal(outcome.verdicts, verdicts)

    def test_chunk_size_does_not_change_outputs(
        self, trace_dir, dataset_for, reference
    ):
        __, scores, __ = reference
        outcome = _chunked(trace_dir, max_records=233).run(
            trace_dir / "dns.log", dataset_for
        )
        assert np.array_equal(outcome.scores, scores)

    def test_full_resume_restores_all_stages(
        self, trace_dir, dataset_for, reference, tmp_path
    ):
        domains, scores, verdicts = reference
        fingerprint = pipeline_fingerprint(_CONFIG, {"dns": "trace"})
        cold = _chunked(
            trace_dir, PipelineCheckpointer(tmp_path, fingerprint)
        )
        cold.run(trace_dir / "dns.log", dataset_for)
        resumed = _chunked(
            trace_dir, PipelineCheckpointer(tmp_path, fingerprint)
        ).run(trace_dir / "dns.log", dataset_for, resume=True)
        assert resumed.resumed_from == "classify"
        assert resumed.domains == domains
        assert np.array_equal(resumed.scores, scores)
        assert np.array_equal(resumed.verdicts, verdicts)


class TestKillAndResume:
    def test_sigkill_mid_embedding_resumes_byte_identical(
        self, trace_dir, dataset_for, reference, tmp_path
    ):
        """SIGKILL the pipeline as embedding starts; resume must finish.

        The child process runs the checkpointed pipeline with the
        embedding stage replaced by a self-SIGKILL, so it dies *after*
        the ingest/prune/project checkpoints land but before embed —
        the worst spot, with hours of (real-trace) graph work behind
        it. The parent then resumes with the real embedding stage and
        must reproduce the monolithic run byte for byte.
        """
        domains, scores, verdicts = reference
        fingerprint = pipeline_fingerprint(_CONFIG, {"dns": "trace"})
        ckpt_dir = tmp_path / "ckpt"
        child = textwrap.dedent(
            f"""
            import os, signal
            from repro.core.pipeline import MaliciousDomainDetector
            from repro.dns.dhcp import DhcpLog
            from repro.embedding.line import LineConfig
            from repro.core.pipeline import PipelineConfig
            from repro.ingest import (CheckpointedPipeline, ChunkPolicy,
                                      IngestConfig, PipelineCheckpointer)
            from repro.labels import (IntelligenceFeed, SimulatedVirusTotal,
                                      build_labeled_dataset)
            from repro.simulation.groundtruth import GroundTruth

            def die(self, progress=None):
                os.kill(os.getpid(), signal.SIGKILL)

            MaliciousDomainDetector.learn_embeddings = die
            trace_dir = {str(trace_dir)!r}
            truth = GroundTruth.load(trace_dir + "/groundtruth.tsv")
            feed = IntelligenceFeed(truth)
            vt = SimulatedVirusTotal(truth)
            config = PipelineConfig(embedding=LineConfig(
                dimension=8, total_samples=30_000, seed=13))
            pipe = CheckpointedPipeline(
                config,
                IngestConfig(chunk=ChunkPolicy(max_records=700),
                             checkpoint_every_chunks=3),
                PipelineCheckpointer({str(ckpt_dir)!r}, {fingerprint!r}),
                dhcp=DhcpLog.load(trace_dir + "/dhcp.log"),
            )
            pipe.run(trace_dir + "/dns.log",
                     lambda ds: build_labeled_dataset(feed, vt, ds))
            raise SystemExit("pipeline survived the kill switch")
            """
        )
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src), env.get("PYTHONPATH", "")]
        )
        result = subprocess.run(
            [sys.executable, "-c", child],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr

        checkpointer = PipelineCheckpointer(ckpt_dir, fingerprint)
        stage, manifest = checkpointer.latest()
        assert stage == "project"
        assert manifest.complete

        resumed = _chunked(trace_dir, checkpointer).run(
            trace_dir / "dns.log", dataset_for, resume=True
        )
        assert resumed.resumed_from == "project"
        assert resumed.domains == domains
        assert np.array_equal(resumed.scores, scores)
        assert np.array_equal(resumed.verdicts, verdicts)

    def test_resume_from_partial_ingest_checkpoint(
        self, trace_dir, dataset_for, reference, tmp_path
    ):
        """A crash mid-ingest resumes from the rolling cursor checkpoint."""
        from repro.dns.dhcp import HostIdentityResolver
        from repro.graphs.bipartite import (
            BipartiteGraph,
            fold_records_into_graphs,
        )
        from repro.graphs.core import VertexTable
        from repro.core.persistence import save_bipartite_graph
        from repro.ingest import ChunkedTraceReader
        from repro.ingest.checkpoint import STAGE_INGEST

        domains_ref, scores, __ = reference
        fingerprint = pipeline_fingerprint(_CONFIG, {"dns": "trace"})
        checkpointer = PipelineCheckpointer(tmp_path, fingerprint)

        # Ingest 4 chunks by hand and write only a partial checkpoint,
        # exactly what a crash between rolling saves leaves behind.
        identity = HostIdentityResolver(
            DhcpLog.load(trace_dir / "dhcp.log")
        )
        table = VertexTable()
        graphs = (
            BipartiteGraph(kind="host", left=table),
            BipartiteGraph(kind="ip", left=table),
            BipartiteGraph(kind="time", left=table),
        )
        with ChunkedTraceReader(
            trace_dir / "dns.log", ChunkPolicy(max_records=700)
        ) as reader:
            for batch in reader:
                fold_records_into_graphs(
                    batch.records,
                    *graphs,
                    identity=identity,
                    window_seconds=_CONFIG.time_window_seconds,
                )
                if batch.index == 3:
                    break
            cursor = reader.cursor

        def populate(staging):
            names = ("host_domain.npz", "domain_ip.npz", "domain_time.npz")
            for graph, name in zip(graphs, names):
                save_bipartite_graph(graph, staging / name)

        checkpointer.save(
            STAGE_INGEST, populate, {"cursor": cursor}, complete=False
        )

        resumed = _chunked(trace_dir, checkpointer).run(
            trace_dir / "dns.log", dataset_for, resume=True
        )
        assert resumed.resumed_from == "ingest"
        assert resumed.domains == domains_ref
        assert np.array_equal(resumed.scores, scores)
