"""Tests for the LINE SGD kernels (repro.embedding.kernels).

Two load-bearing contracts:

* the segment scatter primitive is **bit-identical** to ``np.add.at``
  (duplicates accumulate in input order), which is what licenses
  swapping it into the training loop at all;
* each kernel is deterministic across serial/thread/process backends —
  the parallel determinism contract holds *per kernel*, not just for
  the default.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embedding.kernels import (
    KERNELS,
    prepare_edge_arrays,
    segment_scatter_add,
)
from repro.embedding.line import LineConfig, train_line
from repro.errors import EmbeddingError
from repro.parallel import ParallelConfig, fork_available

from tests.test_parallel import FAST, small_graph


@st.composite
def scatter_case(draw):
    """Random (rows, count, dim, seed) for a scatter-equivalence case.

    Row count is kept small relative to update count so duplicate
    indices — the interesting case for accumulation order — are common.
    """
    rows = draw(st.integers(min_value=1, max_value=12))
    count = draw(st.integers(min_value=0, max_value=200))
    dim = draw(st.integers(min_value=1, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return rows, count, dim, seed


class TestSegmentScatterAdd:
    @given(scatter_case())
    @settings(max_examples=60, deadline=None)
    def test_matches_add_at_bitwise(self, case):
        """Same additions in the same order as np.add.at — exactly."""
        rows, count, dim, seed = case
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(rows, dim))
        indices = rng.integers(0, rows, size=count, dtype=np.int32)
        updates = rng.normal(size=(count, dim)) * rng.choice(
            [1e-8, 1.0, 1e8], size=(count, 1)
        )
        expected = base.copy()
        np.add.at(expected, indices, updates)
        out = base.copy()
        segment_scatter_add(out, indices, updates)
        assert np.array_equal(out, expected)
        # The ISSUE-level contract is tolerance-based; bitwise is
        # stronger, but assert the documented form too.
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=0.0)

    def test_duplicate_free_batch_exact(self):
        rng = np.random.default_rng(5)
        base = rng.normal(size=(50, 8))
        indices = rng.permutation(50)[:30].astype(np.int64)
        updates = rng.normal(size=(30, 8))
        expected = base.copy()
        expected[indices] += updates
        out = base.copy()
        segment_scatter_add(out, indices, updates)
        assert np.array_equal(out, expected)

    def test_all_duplicates_one_row(self):
        """Worst-case contention: every update lands on the same row."""
        base = np.zeros((3, 4))
        indices = np.full(100, 1, dtype=np.int32)
        updates = np.full((100, 4), 0.125)
        segment_scatter_add(base, indices, updates)
        assert np.array_equal(base[1], np.full(4, 12.5))
        assert np.array_equal(base[0], np.zeros(4))

    def test_empty_batch_is_noop(self):
        base = np.ones((4, 3))
        segment_scatter_add(
            base, np.empty(0, dtype=np.int32), np.empty((0, 3))
        )
        assert np.array_equal(base, np.ones((4, 3)))


class TestPrepareEdgeArrays:
    def test_add_at_passthrough(self):
        graph = small_graph()
        src, dst, w = prepare_edge_arrays(
            graph.rows, graph.cols, graph.weights, "add_at"
        )
        assert np.array_equal(src, graph.rows)
        assert np.array_equal(dst, graph.cols)
        assert np.array_equal(w, graph.weights)
        assert w.dtype == np.float64

    def test_segment_doubles_orientation(self):
        graph = small_graph()
        src, dst, w = prepare_edge_arrays(
            graph.rows, graph.cols, graph.weights, "segment"
        )
        edges = graph.rows.size
        assert src.size == dst.size == w.size == 2 * edges
        # First half forward, second half reversed, weights repeated.
        assert np.array_equal(src[:edges], graph.rows)
        assert np.array_equal(dst[:edges], graph.cols)
        assert np.array_equal(src[edges:], graph.cols)
        assert np.array_equal(dst[edges:], graph.rows)
        assert np.array_equal(w[:edges], w[edges:])
        np.testing.assert_allclose(w.sum(), 2 * graph.weights.sum())
        # Small graphs fit int32 indices.
        assert src.dtype == np.int32 and dst.dtype == np.int32

    def test_unknown_kernel_rejected(self):
        graph = small_graph()
        with pytest.raises(EmbeddingError, match="unknown kernel"):
            prepare_edge_arrays(
                graph.rows, graph.cols, graph.weights, "bogus"
            )


class TestKernelSelection:
    def test_config_validates_kernel(self):
        with pytest.raises(EmbeddingError, match="unknown kernel"):
            LineConfig(kernel="fused9000").validate()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_kernel_accepted(self, kernel):
        LineConfig(kernel=kernel).validate()

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("order", ["first", "second", "both"])
    def test_trains_all_orders(self, kernel, order):
        config = LineConfig(
            dimension=8, total_samples=4_000, seed=3, kernel=kernel, order=order
        )
        embedding = train_line(small_graph(), config)
        assert embedding.vectors.shape == (20, 8)
        assert np.all(np.isfinite(embedding.vectors))
        assert np.any(embedding.vectors != 0.0)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_same_seed_same_vectors(self, kernel):
        config = LineConfig(
            dimension=8, total_samples=10_000, seed=4, kernel=kernel
        )
        first = train_line(small_graph(), config).vectors
        second = train_line(small_graph(), config).vectors
        assert np.array_equal(first, second)

    def test_kernels_draw_distinct_streams(self):
        # Documented non-goal: the two kernels are not bit-comparable —
        # they consume randomness differently by design.
        segment = train_line(
            small_graph(), LineConfig(dimension=8, total_samples=10_000, seed=4)
        ).vectors
        add_at = train_line(
            small_graph(),
            LineConfig(
                dimension=8, total_samples=10_000, seed=4, kernel="add_at"
            ),
        ).vectors
        assert not np.array_equal(segment, add_at)


class TestPerKernelDeterminism:
    """Serial/thread/process byte-identity holds for every kernel."""

    @pytest.fixture(scope="class", params=KERNELS)
    def kernel_case(self, request):
        config = LineConfig(
            dimension=FAST.dimension,
            total_samples=FAST.total_samples,
            seed=FAST.seed,
            kernel=request.param,
        )
        return config, train_line(small_graph(), config).vectors

    def test_thread_matches_serial(self, kernel_case):
        config, serial_vectors = kernel_case
        parallel = ParallelConfig(
            workers=2, backend="thread", min_parallel_weight=0
        )
        embedding = train_line(small_graph(), config, parallel=parallel)
        assert np.array_equal(embedding.vectors, serial_vectors)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_matches_serial(self, kernel_case):
        config, serial_vectors = kernel_case
        parallel = ParallelConfig(
            workers=2, backend="process", min_parallel_weight=0
        )
        embedding = train_line(small_graph(), config, parallel=parallel)
        assert np.array_equal(embedding.vectors, serial_vectors)
