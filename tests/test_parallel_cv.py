"""Parallel cross-validation / grid search determinism and KFold masks."""

import numpy as np
import pytest

from repro.errors import EmbeddingError
from repro.ml.grid_search import grid_search
from repro.ml.model_selection import KFold, StratifiedKFold, cross_validated_scores
from repro.ml.svm import SupportVectorClassifier
from repro.parallel import ParallelConfig, fork_available

BACKENDS = ["serial", "thread"] + (["process"] if fork_available() else [])


def _dataset(seed=0, n=90, dims=4):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, dims))
    labels = (
        features[:, 0] + 0.3 * rng.normal(size=n) > 0
    ).astype(int)
    return features, labels


def _config(backend):
    return ParallelConfig(workers=3, backend=backend, min_parallel_weight=0)


class TestKFoldMaskDerivation:
    def test_train_matches_setdiff_reference(self):
        splitter = KFold(n_splits=4, shuffle=True, seed=9)
        indices = np.arange(23)
        np.random.default_rng(9).shuffle(indices)
        folds = np.array_split(indices, 4)
        for (train, test), fold in zip(splitter.split(23), folds):
            np.testing.assert_array_equal(test, np.sort(fold))
            reference = np.sort(np.setdiff1d(indices, fold, assume_unique=True))
            np.testing.assert_array_equal(train, reference)

    def test_partition_and_order(self):
        for train, test in KFold(n_splits=5, seed=2).split(40):
            assert np.all(np.diff(train) > 0)  # strictly ascending
            assert np.all(np.diff(test) > 0)
            combined = np.sort(np.concatenate([train, test]))
            np.testing.assert_array_equal(combined, np.arange(40))

    def test_stratified_train_matches_setdiff_reference(self):
        labels = np.array([0, 1] * 15)
        for train, test in StratifiedKFold(n_splits=3, seed=4).split(labels):
            reference = np.setdiff1d(
                np.arange(labels.size), test, assume_unique=True
            )
            np.testing.assert_array_equal(train, reference)


class TestParallelCrossValidation:
    def test_backends_byte_identical(self):
        features, labels = _dataset(seed=1)
        base_scores, base_folds = cross_validated_scores(
            features, labels, SupportVectorClassifier, n_splits=4, seed=3
        )
        for backend in BACKENDS:
            scores, fold_ids = cross_validated_scores(
                features,
                labels,
                SupportVectorClassifier,
                n_splits=4,
                seed=3,
                parallel=_config(backend),
            )
            assert scores.tobytes() == base_scores.tobytes(), backend
            np.testing.assert_array_equal(fold_ids, base_folds)

    def test_serial_path_propagates_raw_exceptions(self):
        features, labels = _dataset(seed=2)

        def broken_factory():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            cross_validated_scores(
                features, labels, broken_factory, n_splits=3
            )

    def test_pool_failures_wrapped(self):
        features, labels = _dataset(seed=2)

        def broken_factory():
            raise RuntimeError("boom")

        with pytest.raises(EmbeddingError):
            cross_validated_scores(
                features,
                labels,
                broken_factory,
                n_splits=3,
                parallel=_config("thread"),
            )


class TestParallelGridSearch:
    GRID = {"c": [0.1, 1.0], "gamma": [0.1, 0.4]}

    def test_backends_identical_evaluations(self):
        features, labels = _dataset(seed=5)
        base = grid_search(
            features,
            labels,
            SupportVectorClassifier,
            self.GRID,
            n_splits=3,
            seed=11,
        )
        for backend in BACKENDS:
            result = grid_search(
                features,
                labels,
                SupportVectorClassifier,
                self.GRID,
                n_splits=3,
                seed=11,
                parallel=_config(backend),
            )
            assert result.best_params == base.best_params, backend
            assert result.best_score == base.best_score, backend
            assert result.evaluations == base.evaluations, backend

    def test_evaluation_order_is_grid_order(self):
        features, labels = _dataset(seed=6)
        result = grid_search(
            features,
            labels,
            SupportVectorClassifier,
            self.GRID,
            n_splits=3,
            parallel=_config("thread"),
        )
        expected = [
            {"c": c, "gamma": g}
            for c in self.GRID["c"]
            for g in self.GRID["gamma"]
        ]
        assert [params for params, __ in result.evaluations] == expected
