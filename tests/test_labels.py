"""Unit tests for the simulated label sources."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.labels.dataset import build_labeled_dataset, LabeledDataset
from repro.labels.intelligence import IntelligenceFeed, IntelligenceFeedConfig
from repro.labels.threatbook import SimulatedThreatBook
from repro.labels.virustotal import (
    SimulatedVirusTotal,
    VirusTotalConfig,
)
from repro.simulation.groundtruth import (
    DomainCategory,
    DomainRecord,
    GroundTruth,
)


@pytest.fixture(scope="module")
def truth():
    records = []
    for i in range(400):
        records.append(
            DomainRecord(
                f"benign{i}.com", DomainCategory.LONGTAIL_SITE, "longtail", 1000.0
            )
        )
    for i in range(100):
        records.append(
            DomainRecord(f"evil{i}.ws", DomainCategory.DGA, "dga-0", 20.0)
        )
    for i in range(30):
        records.append(
            DomainRecord(f"fresh{i}.bid", DomainCategory.SPAM, "spam-0", 1.0)
        )
    return GroundTruth(records)


class TestIntelligenceFeed:
    def test_coverage_roughly_matches_config(self, truth):
        feed = IntelligenceFeed(
            truth,
            IntelligenceFeedConfig(
                malicious_coverage=0.8, benign_coverage=0.5, age_bias=0.0
            ),
        )
        malicious = set(truth.malicious_domains)
        blacklisted_malicious = len(feed.blacklist & malicious)
        assert 0.65 * len(malicious) < blacklisted_malicious < 0.95 * len(malicious)
        assert 0.35 * 400 < len(feed.whitelist) < 0.65 * 400

    def test_age_bias_hurts_fresh_domains(self, truth):
        feed = IntelligenceFeed(
            truth,
            IntelligenceFeedConfig(malicious_coverage=0.9, age_bias=1.0, seed=5),
        )
        fresh = {f"fresh{i}.bid" for i in range(30)}
        old = {f"evil{i}.ws" for i in range(100)}
        fresh_rate = len(feed.blacklist & fresh) / len(fresh)
        old_rate = len(feed.blacklist & old) / len(old)
        assert fresh_rate < old_rate

    def test_whitelist_and_blacklist_disjoint_for_benign(self, truth):
        feed = IntelligenceFeed(truth)
        assert not feed.whitelist & set(truth.malicious_domains)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            IntelligenceFeedConfig(malicious_coverage=1.5).validate()


class TestSimulatedVirusTotal:
    def test_reports_are_deterministic(self, truth):
        vt = SimulatedVirusTotal(truth)
        first = vt.query("evil0.ws")
        second = vt.query("evil0.ws")
        assert first == second
        assert vt.query_count == 2

    def test_malicious_flagged_more_than_benign(self, truth):
        vt = SimulatedVirusTotal(truth)
        malicious_hits = np.mean(
            [vt.query(f"evil{i}.ws").positives for i in range(100)]
        )
        benign_hits = np.mean(
            [vt.query(f"benign{i}.com").positives for i in range(100)]
        )
        assert malicious_hits > 10 * max(benign_hits, 0.1)

    def test_unknown_domains_look_benign(self, truth):
        vt = SimulatedVirusTotal(truth)
        assert vt.query("never-seen.example").positives <= 2

    def test_confirmation_rule(self, truth):
        vt = SimulatedVirusTotal(truth)
        confirmed = sum(vt.is_confirmed(f"evil{i}.ws") for i in range(100))
        assert confirmed > 60  # most old malicious domains confirm
        false_confirms = sum(
            vt.is_confirmed(f"benign{i}.com") for i in range(200)
        )
        assert false_confirms < 10

    def test_young_domains_confirm_less(self, truth):
        vt = SimulatedVirusTotal(truth)
        fresh_confirm = np.mean(
            [vt.is_confirmed(f"fresh{i}.bid") for i in range(30)]
        )
        old_confirm = np.mean(
            [vt.is_confirmed(f"evil{i}.ws") for i in range(100)]
        )
        assert fresh_confirm < old_confirm

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            VirusTotalConfig(engines=0).validate()
        with pytest.raises(ValueError):
            VirusTotalConfig(benign_fp_rate=2.0).validate()


class TestSimulatedThreatBook:
    def test_reports_only_for_malicious(self, truth):
        threatbook = SimulatedThreatBook(truth, coverage=1.0)
        assert threatbook.report("evil0.ws") is not None
        assert threatbook.report("benign0.com") is None

    def test_report_carries_category_and_family(self, truth):
        threatbook = SimulatedThreatBook(truth, coverage=1.0)
        report = threatbook.report("fresh0.bid")
        assert report.category == "spam"
        assert report.family == "spam-0"

    def test_coverage_partial(self, truth):
        threatbook = SimulatedThreatBook(truth, coverage=0.5, seed=1)
        known = sum(
            threatbook.report(f"evil{i}.ws") is not None for i in range(100)
        )
        assert 30 < known < 70

    def test_dominant_category(self, truth):
        threatbook = SimulatedThreatBook(truth, coverage=1.0)
        domains = [f"evil{i}.ws" for i in range(10)] + ["benign0.com"]
        category, share = threatbook.dominant_category(domains)
        assert category == "dga"
        assert share == pytest.approx(10 / 11)

    def test_dominant_category_empty(self, truth):
        threatbook = SimulatedThreatBook(truth)
        assert threatbook.dominant_category([]) == ("unknown", 0.0)


class TestBuildLabeledDataset:
    def test_composition_rule(self, truth):
        feed = IntelligenceFeed(truth)
        vt = SimulatedVirusTotal(truth)
        eligible = [r.name for r in truth]
        dataset = build_labeled_dataset(feed, vt, eligible)
        assert len(dataset) > 50
        assert 0.25 < dataset.malicious_fraction < 0.40

    def test_rejected_domains_tracked(self, truth):
        feed = IntelligenceFeed(truth)
        vt = SimulatedVirusTotal(truth)
        dataset = build_labeled_dataset(feed, vt, [r.name for r in truth])
        # Blind spots + young domains get rejected by the VT rule.
        for domain in dataset.rejected_by_virustotal:
            assert feed.is_blacklisted(domain)
            assert not vt.is_confirmed(domain)

    def test_eligibility_respected(self, truth):
        feed = IntelligenceFeed(truth)
        vt = SimulatedVirusTotal(truth)
        eligible = ["evil0.ws", "evil1.ws", "benign0.com", "benign1.com"]
        dataset = build_labeled_dataset(
            feed, vt, eligible, target_malicious_fraction=None
        )
        assert set(dataset.domains) <= set(eligible)

    def test_no_coverage_raises(self, truth):
        feed = IntelligenceFeed(truth)
        vt = SimulatedVirusTotal(truth)
        with pytest.raises(DatasetError):
            build_labeled_dataset(feed, vt, ["unknown1.xx", "unknown2.xx"])

    def test_labels_match_partition_properties(self, truth):
        feed = IntelligenceFeed(truth)
        vt = SimulatedVirusTotal(truth)
        dataset = build_labeled_dataset(feed, vt, [r.name for r in truth])
        assert dataset.malicious_count == len(dataset.malicious_domains)
        assert dataset.benign_count == len(dataset.benign_domains)
        assert dataset.malicious_count + dataset.benign_count == len(dataset)

    def test_subset(self, truth):
        feed = IntelligenceFeed(truth)
        vt = SimulatedVirusTotal(truth)
        dataset = build_labeled_dataset(feed, vt, [r.name for r in truth])
        subset = dataset.subset(np.array([0, 1, 2]))
        assert len(subset) == 3
        assert subset.domains == dataset.domains[:3]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DatasetError):
            LabeledDataset(domains=["a.com"], labels=np.array([0, 1]))
