"""Unit tests for the diurnal activity model."""

import numpy as np
import pytest

from repro.simulation.config import SECONDS_PER_DAY
from repro.simulation.diurnal import (
    DiurnalModel,
    is_weekend,
    sample_diurnal_times,
    weekend_factor,
)


class TestDiurnalModel:
    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown device class"):
            DiurnalModel("toaster")

    def test_rate_integrates_to_daily_count(self):
        model = DiurnalModel("desktop")
        hours = np.arange(24)
        rates = np.array(
            [model.rate_at(h * 3600.0, events_per_day=48.0) for h in hours]
        )
        # Sum of hourly rate * 3600 should equal the daily event count.
        assert np.isclose(rates.sum() * 3600.0, 48.0, rtol=1e-6)

    def test_desktop_night_quieter_than_day(self):
        model = DiurnalModel("desktop")
        night = model.rate_at(3 * 3600.0, 48.0)
        day = model.rate_at(15 * 3600.0, 48.0)
        assert day > 10 * night

    def test_iot_is_flat(self):
        model = DiurnalModel("iot")
        rates = {model.rate_at(h * 3600.0, 24.0) for h in range(24)}
        assert len(rates) == 1

    def test_sample_times_within_range(self, rng):
        times = DiurnalModel("laptop").sample_times(
            duration=3 * SECONDS_PER_DAY, events_per_day=40.0, rng=rng
        )
        assert np.all(times >= 0)
        assert np.all(times < 3 * SECONDS_PER_DAY)
        assert np.all(np.diff(times) >= 0)  # sorted

    def test_sample_count_close_to_expectation(self, rng):
        duration_days = 20
        times = DiurnalModel("phone").sample_times(
            duration=duration_days * SECONDS_PER_DAY, events_per_day=50.0, rng=rng
        )
        expected = duration_days * 50.0
        assert 0.8 * expected < times.size < 1.2 * expected

    def test_zero_duration_gives_no_events(self, rng):
        assert DiurnalModel("phone").sample_times(0.0, 50.0, rng).size == 0

    def test_relative_levels_in_unit_interval(self):
        model = DiurnalModel("desktop")
        times = np.linspace(0, SECONDS_PER_DAY, 100)
        levels = model.relative_levels(times)
        assert np.all(levels >= 0) and np.all(levels <= 1)
        assert levels.max() == 1.0


class TestWeekendHandling:
    def test_trace_starts_on_weekday(self):
        assert not is_weekend(0.0)

    def test_days_five_and_six_are_weekend(self):
        assert is_weekend(5 * SECONDS_PER_DAY + 10)
        assert is_weekend(6 * SECONDS_PER_DAY + 10)
        assert not is_weekend(7 * SECONDS_PER_DAY + 10)

    def test_weekend_factor(self):
        assert weekend_factor(0.0) == 1.0
        assert weekend_factor(5 * SECONDS_PER_DAY, weekend_dampening=0.5) == 0.5

    def test_weekend_thinning_reduces_weekend_events(self, rng):
        times = sample_diurnal_times(
            "desktop",
            duration=14 * SECONDS_PER_DAY,
            events_per_day=200.0,
            rng=rng,
            weekend_dampening=0.2,
        )
        weekend_count = sum(1 for t in times if is_weekend(t))
        weekday_count = times.size - weekend_count
        # 4 weekend days vs 10 weekdays with heavy dampening.
        assert weekend_count < weekday_count * 0.25
