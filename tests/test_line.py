"""Unit tests for the LINE graph embedding."""

import numpy as np
import pytest

from repro.embedding.line import LineConfig, train_line
from repro.errors import EmbeddingError
from repro.graphs.projection import SimilarityGraph


def two_cliques_graph(noise_edges=0):
    """Two 6-node cliques (weight 1.0) joined by a weak bridge."""
    domains = [f"a{i}" for i in range(6)] + [f"b{i}" for i in range(6)]
    rows, cols, weights = [], [], []
    for block, offset in (("a", 0), ("b", 6)):
        for i in range(6):
            for j in range(i + 1, 6):
                rows.append(offset + i)
                cols.append(offset + j)
                weights.append(1.0)
    rows.append(0)
    cols.append(6)
    weights.append(0.02)  # weak bridge
    return SimilarityGraph(
        kind="host",
        domains=domains,
        rows=np.array(rows),
        cols=np.array(cols),
        weights=np.array(weights),
    )


def _clique_distances(vectors):
    """(within, across) pairwise distances for the two-clique layout."""
    within, across = [], []
    for i in range(12):
        for j in range(i + 1, 12):
            distance = np.linalg.norm(vectors[i] - vectors[j])
            (within if (i < 6) == (j < 6) else across).append(distance)
    return within, across


@pytest.fixture(scope="module")
def clique_embedding():
    return train_line(
        two_cliques_graph(),
        LineConfig(dimension=16, total_samples=150_000, seed=3),
    )


class TestTrainLine:
    def test_shapes(self, clique_embedding):
        assert clique_embedding.vectors.shape == (12, 16)
        assert clique_embedding.dimension == 16
        assert len(clique_embedding.domains) == 12

    def test_vectors_normalized_to_scale(self, clique_embedding):
        norms = np.linalg.norm(clique_embedding.vectors, axis=1)
        assert np.allclose(norms, clique_embedding.config.vector_scale)

    def test_cliques_separate_in_embedding_space(self, clique_embedding):
        """Nodes of the same clique must be closer than across cliques."""
        within, across = _clique_distances(clique_embedding.vectors)
        assert np.mean(within) < 0.85 * np.mean(across)

    def test_first_order_separates_cliques_sharply(self):
        embedding = train_line(
            two_cliques_graph(),
            LineConfig(
                dimension=16, order="first", total_samples=150_000, seed=3
            ),
        )
        within, across = _clique_distances(embedding.vectors)
        assert np.mean(within) < 0.2 * np.mean(across)

    def test_deterministic_for_seed(self):
        graph = two_cliques_graph()
        config = LineConfig(dimension=8, total_samples=30_000, seed=11)
        first = train_line(graph, config)
        second = train_line(graph, config)
        assert np.array_equal(first.vectors, second.vectors)

    def test_orders_first_and_second(self):
        graph = two_cliques_graph()
        for order in ("first", "second"):
            embedding = train_line(
                graph,
                LineConfig(dimension=8, order=order, total_samples=30_000),
            )
            assert embedding.vectors.shape == (12, 8)

    def test_empty_graph_raises(self):
        empty = SimilarityGraph(
            kind="ip",
            domains=[],
            rows=np.empty(0, dtype=int),
            cols=np.empty(0, dtype=int),
            weights=np.empty(0),
        )
        with pytest.raises(EmbeddingError, match="empty graph"):
            train_line(empty)

    def test_edgeless_graph_gives_zero_vectors(self):
        graph = SimilarityGraph(
            kind="ip",
            domains=["a.com", "b.com"],
            rows=np.empty(0, dtype=int),
            cols=np.empty(0, dtype=int),
            weights=np.empty(0),
        )
        embedding = train_line(graph, LineConfig(dimension=8))
        assert np.all(embedding.vectors == 0)


class TestLineConfigValidation:
    def test_odd_dimension_with_both_rejected(self):
        with pytest.raises(EmbeddingError, match="even"):
            LineConfig(dimension=15, order="both").validate()

    def test_unknown_order_rejected(self):
        with pytest.raises(EmbeddingError, match="order"):
            LineConfig(order="third").validate()

    def test_bad_dimension(self):
        with pytest.raises(EmbeddingError):
            LineConfig(dimension=1).validate()

    def test_resolved_samples_scales_with_edges(self):
        config = LineConfig()
        assert config.resolved_samples(10) == 400_000  # floor
        assert config.resolved_samples(10_000_000) == 15_000_000  # cap
        config_fixed = LineConfig(total_samples=1234)
        assert config_fixed.resolved_samples(10) == 1234

    @pytest.mark.parametrize("total_samples", [0, -1, -100])
    def test_nonpositive_total_samples_rejected(self, total_samples):
        with pytest.raises(EmbeddingError, match="total_samples"):
            LineConfig(total_samples=total_samples).validate()

    @pytest.mark.parametrize("seed", [1.5, "7", None, True])
    def test_non_integer_seed_rejected(self, seed):
        with pytest.raises(EmbeddingError, match="seed"):
            LineConfig(seed=seed).validate()

    def test_numpy_integer_seed_accepted(self):
        LineConfig(seed=np.int64(3)).validate()


class TestLineEmbeddingApi:
    def test_vector_lookup(self, clique_embedding):
        vector = clique_embedding.vector("a0")
        assert vector.shape == (16,)

    def test_unknown_domain_gives_zero_vector(self, clique_embedding):
        assert np.all(clique_embedding.vector("unknown.com") == 0)

    def test_matrix_preserves_order(self, clique_embedding):
        matrix = clique_embedding.matrix(["b0", "a0", "ghost"])
        assert np.array_equal(matrix[0], clique_embedding.vector("b0"))
        assert np.array_equal(matrix[1], clique_embedding.vector("a0"))
        assert np.all(matrix[2] == 0)


class _ProgressRecorder:
    def __init__(self):
        self.calls = []

    def on_epoch(self, epoch, total, loss):
        self.calls.append((epoch, total, loss))


class TestTrainLineProgress:
    def test_progress_reports_cover_training(self):
        recorder = _ProgressRecorder()
        train_line(
            two_cliques_graph(),
            LineConfig(dimension=8, total_samples=50_000, seed=3),
            progress=recorder,
        )
        assert recorder.calls, "expected progress reports"
        epochs = [epoch for epoch, __, __ in recorder.calls]
        totals = {total for __, total, __ in recorder.calls}
        # order="both" trains two orders of up to 10 reports each.
        assert totals == {20}
        assert epochs == sorted(epochs)
        assert epochs[-1] == 20
        assert all(np.isfinite(loss) for __, __, loss in recorder.calls)

    def test_progress_does_not_change_vectors(self):
        config = LineConfig(dimension=8, total_samples=20_000, seed=5)
        plain = train_line(two_cliques_graph(), config)
        with_progress = train_line(
            two_cliques_graph(), config, progress=_ProgressRecorder()
        )
        assert np.array_equal(plain.vectors, with_progress.vectors)

    def test_line_counters_recorded(self):
        from repro.obs.metrics import default_registry

        before = default_registry().counter("line.trainings").value
        train_line(
            two_cliques_graph(),
            LineConfig(dimension=8, total_samples=5_000, seed=1),
        )
        registry = default_registry()
        assert registry.counter("line.trainings").value == before + 1
        assert registry.counter("line.edges_sampled").value >= 5_000
