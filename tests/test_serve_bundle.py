"""Tests for model-artifact bundles (save/load, integrity checking)."""

import json

import numpy as np
import pytest

from repro.errors import ArtifactIntegrityError, DatasetError, NotFittedError
from repro.serve import BUNDLE_SCHEMA_VERSION, BundleManifest, ModelBundle
from repro.serve.bundle import MANIFEST_FILENAME


class TestCreate:
    def test_manifest_filled_from_inputs(self, make_bundle):
        bundle = make_bundle(seed=3, count=10, dimension=4)
        manifest = bundle.manifest
        assert manifest.schema_version == BUNDLE_SCHEMA_VERSION
        assert manifest.domain_count == 10
        assert manifest.feature_dimension == 4
        assert manifest.config_fingerprint == "fp-3"
        assert manifest.threshold == bundle.classifier.threshold_
        assert manifest.created_at == pytest.approx(1_700_000_003.0)

    def test_row_mismatch_rejected(self, make_bundle):
        bundle = make_bundle()
        with pytest.raises(DatasetError, match="disagree"):
            ModelBundle.create(
                bundle.classifier, bundle.features, bundle.domains[:-1]
            )

    def test_non_matrix_features_rejected(self, make_bundle):
        bundle = make_bundle()
        with pytest.raises(DatasetError, match="2-D"):
            ModelBundle.create(
                bundle.classifier, bundle.features[0], bundle.domains[:1]
            )

    def test_from_detector_requires_fit(self):
        from repro.core.pipeline import MaliciousDomainDetector

        with pytest.raises(NotFittedError):
            ModelBundle.from_detector(MaliciousDomainDetector())


class TestRoundTrip:
    def test_byte_exact_scores(self, make_bundle, tmp_path):
        bundle = make_bundle(seed=1)
        bundle.save(tmp_path / "bundle")
        loaded = ModelBundle.load(tmp_path / "bundle")
        assert loaded.domains == bundle.domains
        assert np.array_equal(loaded.features, bundle.features)
        # Bit-equal inputs make the kernel expansion deterministic, so
        # the decision function must round-trip byte-exactly.
        assert np.array_equal(
            loaded.decision_scores(bundle.features),
            bundle.decision_scores(bundle.features),
        )

    def test_scaler_round_trips(self, make_bundle, tmp_path):
        bundle = make_bundle(seed=2, scaled=True)
        bundle.save(tmp_path / "bundle")
        loaded = ModelBundle.load(tmp_path / "bundle")
        assert loaded.scaler is not None
        assert np.array_equal(loaded.scaler.mean_, bundle.scaler.mean_)
        assert np.array_equal(
            loaded.decision_scores(bundle.features),
            bundle.decision_scores(bundle.features),
        )

    def test_manifest_round_trips(self, make_bundle, tmp_path):
        bundle = make_bundle(seed=4, metrics={"auc": 0.93})
        bundle.save(tmp_path / "bundle")
        loaded = ModelBundle.load(tmp_path / "bundle")
        assert loaded.manifest.config_fingerprint == "fp-4"
        assert loaded.manifest.metrics == {"auc": 0.93}
        assert loaded.manifest.threshold == bundle.manifest.threshold
        assert set(loaded.manifest.files) == {
            "classifier.npz", "features.npz",
        }


class TestIntegrity:
    def test_tampered_artifact_rejected(self, make_bundle, tmp_path):
        bundle = make_bundle()
        directory = bundle.save(tmp_path / "bundle")
        target = directory / "features.npz"
        raw = bytearray(target.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        target.write_bytes(bytes(raw))
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            ModelBundle.load(directory)

    def test_missing_artifact_rejected(self, make_bundle, tmp_path):
        bundle = make_bundle()
        directory = bundle.save(tmp_path / "bundle")
        (directory / "classifier.npz").unlink()
        with pytest.raises(ArtifactIntegrityError, match="missing"):
            ModelBundle.load(directory)

    def test_interrupted_save_rejected(self, make_bundle, tmp_path):
        # A save that died before the manifest must not load: the
        # manifest is written last precisely so this is detectable.
        bundle = make_bundle()
        directory = bundle.save(tmp_path / "bundle")
        (directory / MANIFEST_FILENAME).unlink()
        with pytest.raises(DatasetError, match="manifest"):
            ModelBundle.load(directory)

    def test_unsupported_schema_version_rejected(self, make_bundle, tmp_path):
        bundle = make_bundle()
        directory = bundle.save(tmp_path / "bundle")
        manifest_path = directory / MANIFEST_FILENAME
        raw = json.loads(manifest_path.read_text())
        raw["schema_version"] = BUNDLE_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(raw))
        with pytest.raises(DatasetError, match="schema version"):
            ModelBundle.load(directory)

    def test_garbage_manifest_rejected(self, make_bundle, tmp_path):
        bundle = make_bundle()
        directory = bundle.save(tmp_path / "bundle")
        (directory / MANIFEST_FILENAME).write_text("not json {")
        with pytest.raises(DatasetError, match="unreadable"):
            ModelBundle.load(directory)


class TestManifestJson:
    def test_json_round_trip(self):
        manifest = BundleManifest(
            created_at=123.0,
            config_fingerprint="abc",
            metrics={"f1": 0.9},
            domain_count=7,
            feature_dimension=48,
            threshold=-0.25,
            files={"classifier.npz": "00ff"},
        )
        assert BundleManifest.from_json(manifest.to_json()) == manifest

    def test_unknown_fields_ignored(self):
        text = json.dumps(
            {"schema_version": 1, "domain_count": 3, "novel_field": True}
        )
        manifest = BundleManifest.from_json(text)
        assert manifest.domain_count == 3

    def test_non_object_rejected(self):
        with pytest.raises(DatasetError, match="JSON object"):
            BundleManifest.from_json("[1, 2]")
