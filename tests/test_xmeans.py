"""Unit tests for X-Means (automatic k selection via BIC)."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.xmeans import XMeans, _bic


def make_blobs(counts, centers, spread=0.3, seed=0):
    rng = np.random.default_rng(seed)
    data = np.vstack(
        [
            rng.normal(center, spread, size=(count, len(center)))
            for count, center in zip(counts, centers)
        ]
    )
    labels = np.repeat(np.arange(len(counts)), counts)
    return data, labels


class TestXMeans:
    def test_finds_four_well_separated_blobs(self):
        data, __ = make_blobs(
            [40, 40, 40, 40],
            [(0, 0), (8, 0), (0, 8), (8, 8)],
        )
        model = XMeans(k_min=2, k_max=12, seed=1).fit(data)
        assert model.n_clusters_ == 4

    def test_single_blob_stays_unsplit_from_kmin_one(self):
        data, __ = make_blobs([100], [(0, 0)])
        model = XMeans(k_min=1, k_max=8, seed=1).fit(data)
        assert model.n_clusters_ <= 2

    def test_respects_k_max(self):
        data, __ = make_blobs(
            [30] * 6, [(i * 6, 0) for i in range(6)]
        )
        model = XMeans(k_min=2, k_max=3, seed=1).fit(data)
        assert model.n_clusters_ <= 3

    def test_cluster_purity_on_separated_blobs(self):
        data, truth = make_blobs(
            [50, 50, 50], [(0, 0), (10, 0), (0, 10)]
        )
        model = XMeans(k_min=2, k_max=10, seed=2).fit(data)
        # Every found cluster should be dominated by one true blob.
        for cluster in range(model.n_clusters_):
            members = truth[model.labels_ == cluster]
            if members.size == 0:
                continue
            dominant = np.bincount(members).max()
            assert dominant / members.size > 0.9

    def test_predict_consistent_with_labels(self):
        data, __ = make_blobs([60, 60], [(0, 0), (7, 7)])
        model = XMeans(k_min=2, k_max=6, seed=3).fit(data)
        assert np.array_equal(model.predict(data), model.labels_)

    def test_deterministic(self):
        data, __ = make_blobs([40, 40], [(0, 0), (9, 9)])
        a = XMeans(seed=5).fit(data)
        b = XMeans(seed=5).fit(data)
        assert a.n_clusters_ == b.n_clusters_
        assert np.array_equal(a.labels_, b.labels_)


class TestBic:
    def test_two_blob_split_improves_bic(self):
        data, __ = make_blobs([80, 80], [(0, 0), (10, 10)], seed=4)
        one_center = data.mean(axis=0)[None, :]
        bic_one = _bic(data, one_center, np.zeros(data.shape[0], dtype=int))
        halves = np.array([[0.0, 0.0], [10.0, 10.0]])
        assignments = (np.linalg.norm(data - halves[1], axis=1)
                       < np.linalg.norm(data - halves[0], axis=1)).astype(int)
        bic_two = _bic(data, halves, assignments)
        assert bic_two > bic_one

    def test_uniform_data_prefers_one_cluster(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(100, 2))
        bic_one = _bic(
            data, data.mean(axis=0)[None, :], np.zeros(100, dtype=int)
        )
        split = (data[:, 0] > 0).astype(int)
        centers = np.array(
            [data[split == 0].mean(axis=0), data[split == 1].mean(axis=0)]
        )
        bic_two = _bic(data, centers, split)
        # An arbitrary split of one Gaussian should not beat the single
        # cluster model by much (and typically loses).
        assert bic_two < bic_one + 10.0


class TestValidation:
    def test_k_min_bounds(self):
        with pytest.raises(ValueError):
            XMeans(k_min=0)
        with pytest.raises(ValueError):
            XMeans(k_min=5, k_max=3)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            XMeans().predict(np.zeros((3, 2)))

    def test_fewer_samples_than_k_min(self):
        with pytest.raises(ValueError):
            XMeans(k_min=10).fit(np.zeros((3, 2)))
