"""Unit tests for text reporting helpers."""

import numpy as np
import pytest

from repro.analysis.reporting import (
    format_domain_table,
    format_roc_ascii,
    format_series_table,
)


class TestFormatDomainTable:
    def test_grid_layout(self):
        table = format_domain_table(["a.com", "b.com", "c.com", "d.com"], columns=3)
        lines = table.splitlines()
        assert len(lines) == 2
        assert "a.com" in lines[0] and "c.com" in lines[0]
        assert "d.com" in lines[1]

    def test_empty(self):
        assert format_domain_table([]) == ""

    def test_invalid_columns(self):
        with pytest.raises(ValueError):
            format_domain_table(["a.com"], columns=0)


class TestFormatSeriesTable:
    def test_alignment_and_precision(self):
        table = format_series_table(
            ["name", "auc"], [["combined", 0.93651], ["query", 0.8899]]
        )
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "0.937" in table
        assert "0.890" in table

    def test_empty_rows(self):
        table = format_series_table(["a", "b"], [])
        assert "a" in table and "b" in table


class TestFormatRocAscii:
    def test_contains_curve_and_axes(self):
        fpr = np.array([0.0, 0.1, 1.0])
        tpr = np.array([0.0, 0.9, 1.0])
        plot = format_roc_ascii(fpr, tpr)
        assert "*" in plot
        assert "TPR" in plot and "FPR" in plot

    def test_perfect_curve_hits_top_left(self):
        fpr = np.array([0.0, 0.0, 1.0])
        tpr = np.array([0.0, 1.0, 1.0])
        plot = format_roc_ascii(fpr, tpr, width=30, height=10)
        first_data_row = plot.splitlines()[1]
        assert "*" in first_data_row  # top row reached
