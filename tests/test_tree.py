"""Unit tests for the C4.5/J48-style decision tree."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.tree import DecisionTreeClassifier, _pessimistic_errors


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    n = 200
    features = np.vstack(
        [rng.normal(-1, 0.5, size=(n, 3)), rng.normal(1, 0.5, size=(n, 3))]
    )
    labels = np.array([0] * n + [1] * n)
    return features, labels


class TestFitPredict:
    def test_blobs(self, blobs):
        features, labels = blobs
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree.score(features, labels) > 0.95

    def test_axis_aligned_rule_is_learned_exactly(self):
        rng = np.random.default_rng(1)
        features = rng.uniform(0, 10, size=(500, 2))
        labels = (features[:, 1] > 3.7).astype(int)
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree.score(features, labels) == 1.0
        assert tree._root.feature == 1
        assert abs(tree._root.threshold - 3.7) < 0.3

    def test_multiclass(self):
        rng = np.random.default_rng(2)
        features = np.vstack(
            [rng.normal(c, 0.3, size=(60, 2)) for c in (-2, 0, 2)]
        )
        labels = np.repeat(["a", "b", "c"], 60)
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree.score(features, labels) > 0.95
        assert set(tree.predict(features)) == {"a", "b", "c"}

    def test_predict_proba_rows_sum_to_one(self, blobs):
        features, labels = blobs
        tree = DecisionTreeClassifier().fit(features, labels)
        probabilities = tree.predict_proba(features[:20])
        assert probabilities.shape == (20, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_pure_labels_give_single_leaf(self):
        tree = DecisionTreeClassifier().fit(np.ones((10, 2)), np.zeros(10))
        assert tree.node_count == 1
        assert tree.depth == 0

    def test_constant_features_give_single_leaf(self):
        tree = DecisionTreeClassifier().fit(
            np.ones((10, 2)), np.array([0] * 5 + [1] * 5)
        )
        assert tree.node_count == 1

    def test_xor_is_learnable(self):
        rng = np.random.default_rng(3)
        features = rng.uniform(-1, 1, size=(600, 2))
        labels = ((features[:, 0] * features[:, 1]) > 0).astype(int)
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree.score(features, labels) > 0.9


class TestRegularization:
    def test_max_depth_cap(self, blobs):
        features, labels = blobs
        tree = DecisionTreeClassifier(max_depth=2, confidence=None).fit(
            features, labels
        )
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(4)
        features = rng.uniform(size=(100, 2))
        labels = rng.integers(0, 2, size=100)
        tree = DecisionTreeClassifier(min_samples_leaf=40, confidence=None).fit(
            features, labels
        )
        # With leaves of >= 40 samples only a couple of splits fit.
        assert tree.node_count <= 5

    def test_pruning_shrinks_noisy_tree(self):
        rng = np.random.default_rng(5)
        features = rng.uniform(size=(400, 4))
        labels = rng.integers(0, 2, size=400)  # pure noise
        unpruned = DecisionTreeClassifier(confidence=None).fit(features, labels)
        pruned = DecisionTreeClassifier(confidence=0.25).fit(features, labels)
        assert pruned.node_count < unpruned.node_count

    def test_pruning_preserves_real_signal(self, blobs):
        features, labels = blobs
        pruned = DecisionTreeClassifier(confidence=0.25).fit(features, labels)
        assert pruned.score(features, labels) > 0.95


class TestPessimisticErrors:
    def test_zero_total(self):
        assert _pessimistic_errors(0.0, 0.0, 0.25) == 0.0

    def test_upper_bound_exceeds_observed(self):
        assert _pessimistic_errors(2.0, 10.0, 0.25) > 2.0

    def test_more_data_tightens_bound(self):
        loose = _pessimistic_errors(2.0, 10.0, 0.25) / 10.0
        tight = _pessimistic_errors(20.0, 100.0, 0.25) / 100.0
        assert tight < loose


class TestValidation:
    def test_not_fitted(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(NotFittedError):
            tree.predict(np.zeros((1, 2)))
        with pytest.raises(NotFittedError):
            tree.node_count

    def test_bad_args(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(confidence=0.7)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))
