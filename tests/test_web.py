"""Unit tests for the browsing model."""

import numpy as np
import pytest

from repro.simulation.config import BenignCatalogConfig
from repro.simulation.domains import BenignCatalog
from repro.simulation.ipspace import IpSpace
from repro.simulation.web import BrowsingModel


@pytest.fixture(scope="module")
def model():
    catalog = BenignCatalog(
        BenignCatalogConfig(
            popular_site_count=20,
            longtail_site_count=50,
            third_party_count=15,
            cdn_provider_count=2,
            shared_hosting_provider_count=3,
        ),
        IpSpace(),
        np.random.default_rng(23),
    )
    return BrowsingModel(catalog, np.random.default_rng(24))


class TestRedirectors:
    def test_redirectors_created(self, model):
        assert len(model.redirector_records) == BrowsingModel.REDIRECTOR_COUNT
        assert set(model.redirector_hosting) == {
            r.name for r in model.redirector_records
        }

    def test_redirector_records_benign(self, model):
        assert all(not r.is_malicious for r in model.redirector_records)


class TestSessionLookups:
    def test_session_contains_site_lookup(self, model):
        site = model.pick_site()
        lookups = model.session_lookups(site)
        assert any(l.e2ld == site.domain for l in lookups)

    def test_delays_are_monotonic(self, model):
        lookups = model.session_lookups()
        delays = [l.delay for l in lookups]
        assert delays == sorted(delays)
        assert delays[0] >= 0.0

    def test_embedded_third_parties_appear(self, model):
        # Across many sessions of a site with embedded domains, the
        # third parties must show up (85% inclusion per render).
        site = next(s for s in model._sites if s.embedded_domains)
        seen: set[str] = set()
        for __ in range(50):
            seen |= {l.e2ld for l in model.session_lookups(site)}
        assert set(site.embedded_domains) <= seen

    def test_popular_sites_visited_more(self, model):
        sites = model.pick_sites(4000)
        names = [s.domain for s in sites]
        popular = {s.domain for s in model._catalog.popular_sites}
        popular_visits = sum(1 for n in names if n in popular)
        assert popular_visits > len(names) * 0.4

    def test_pick_sites_batch_matches_single(self, model):
        batch = model.pick_sites(10)
        assert len(batch) == 10

    def test_lookup_qnames_belong_to_e2ld(self, model):
        for __ in range(20):
            for lookup in model.session_lookups():
                assert lookup.qname.endswith(lookup.e2ld)
