"""Unit tests for the DeepWalk / node2vec embedder."""

import numpy as np
import pytest

from repro.embedding.deepwalk import (
    DeepWalkConfig,
    _generate_walks,
    train_deepwalk,
)
from repro.errors import EmbeddingError
from repro.graphs.projection import SimilarityGraph

from tests.test_line import _clique_distances, two_cliques_graph


@pytest.fixture(scope="module")
def clique_embedding():
    return train_deepwalk(
        two_cliques_graph(),
        DeepWalkConfig(dimension=16, walks_per_node=20, epochs=3, seed=4),
    )


class TestTrainDeepwalk:
    def test_shapes_and_container(self, clique_embedding):
        assert clique_embedding.vectors.shape == (12, 16)
        assert clique_embedding.vector("a0").shape == (16,)

    def test_norms_match_scale(self, clique_embedding):
        norms = np.linalg.norm(clique_embedding.vectors, axis=1)
        assert np.allclose(norms, 4.0)

    def test_cliques_separate(self, clique_embedding):
        within, across = _clique_distances(clique_embedding.vectors)
        assert np.mean(within) < 0.85 * np.mean(across)

    def test_deterministic(self):
        graph = two_cliques_graph()
        config = DeepWalkConfig(dimension=8, walks_per_node=4, seed=9)
        first = train_deepwalk(graph, config)
        second = train_deepwalk(graph, config)
        assert np.array_equal(first.vectors, second.vectors)

    def test_node2vec_biases_run(self):
        graph = two_cliques_graph()
        embedding = train_deepwalk(
            graph,
            DeepWalkConfig(
                dimension=8,
                walks_per_node=4,
                return_parameter=2.0,
                inout_parameter=0.5,
                seed=2,
            ),
        )
        assert embedding.vectors.shape == (12, 8)

    def test_empty_graph_raises(self):
        empty = SimilarityGraph(
            kind="ip", domains=[], rows=np.empty(0, dtype=int),
            cols=np.empty(0, dtype=int), weights=np.empty(0),
        )
        with pytest.raises(EmbeddingError):
            train_deepwalk(empty)

    def test_edgeless_graph_gives_zeros(self):
        graph = SimilarityGraph(
            kind="ip", domains=["a.com"], rows=np.empty(0, dtype=int),
            cols=np.empty(0, dtype=int), weights=np.empty(0),
        )
        embedding = train_deepwalk(graph, DeepWalkConfig(dimension=8))
        assert np.all(embedding.vectors == 0)


class TestWalkGeneration:
    def test_walks_respect_length_and_count(self, rng):
        graph = two_cliques_graph()
        config = DeepWalkConfig(walks_per_node=3, walk_length=10)
        walks = _generate_walks(graph, config, rng)
        assert len(walks) == 3 * 12
        assert all(w.size <= 10 for w in walks)
        assert all(w.size >= 2 for w in walks)

    def test_walks_follow_edges(self, rng):
        graph = two_cliques_graph()
        adjacency: dict[int, set[int]] = {}
        for r, c in zip(graph.rows, graph.cols):
            adjacency.setdefault(int(r), set()).add(int(c))
            adjacency.setdefault(int(c), set()).add(int(r))
        walks = _generate_walks(graph, DeepWalkConfig(walks_per_node=2), rng)
        for walk in walks:
            for a, b in zip(walk, walk[1:]):
                assert int(b) in adjacency[int(a)]


class TestConfigValidation:
    def test_bad_values(self):
        with pytest.raises(EmbeddingError):
            DeepWalkConfig(dimension=1).validate()
        with pytest.raises(EmbeddingError):
            DeepWalkConfig(walk_length=1).validate()
        with pytest.raises(EmbeddingError):
            DeepWalkConfig(window=0).validate()
        with pytest.raises(EmbeddingError):
            DeepWalkConfig(return_parameter=0.0).validate()
        with pytest.raises(EmbeddingError):
            DeepWalkConfig(epochs=0).validate()
