"""Unit tests for cluster mining and seed expansion (paper section 7)."""

import numpy as np
import pytest

from repro.core.clustering import (
    DomainCluster,
    DomainClusterer,
    expand_from_seeds,
)
from repro.labels.threatbook import SimulatedThreatBook
from repro.labels.virustotal import SimulatedVirusTotal, VirusTotalConfig
from repro.simulation.groundtruth import (
    DomainCategory,
    DomainRecord,
    GroundTruth,
)


@pytest.fixture(scope="module")
def truth():
    records = [
        DomainRecord(f"spamdom{i}.bid", DomainCategory.SPAM, "spam-0", 40.0)
        for i in range(20)
    ]
    records += [
        DomainRecord(f"dgadom{i}.ws", DomainCategory.DGA, "dga-0", 25.0)
        for i in range(20)
    ]
    records += [
        DomainRecord(f"site{i}.com", DomainCategory.LONGTAIL_SITE, "longtail")
        for i in range(40)
    ]
    return GroundTruth(records)


@pytest.fixture(scope="module")
def clustered(truth):
    """Synthetic embeddings: three well-separated groups."""
    rng = np.random.default_rng(0)
    domains, features = [], []
    for i in range(20):
        domains.append(f"spamdom{i}.bid")
        features.append(rng.normal((5, 0, 0), 0.3))
    for i in range(20):
        domains.append(f"dgadom{i}.ws")
        features.append(rng.normal((0, 5, 0), 0.3))
    for i in range(40):
        domains.append(f"site{i}.com")
        features.append(rng.normal((0, 0, 5), 0.8))
    clusterer = DomainClusterer(k_min=2, k_max=10, seed=1)
    clusters = clusterer.fit(domains, np.array(features))
    return clusterer, clusters


class TestDomainClusterer:
    def test_groups_recovered(self, clustered):
        __, clusters = clustered
        assert 3 <= len(clusters) <= 6
        spam_cluster = next(
            c for c in clusters if "spamdom0.bid" in c.domains
        )
        assert sum(d.startswith("spamdom") for d in spam_cluster.domains) >= 18

    def test_every_domain_in_exactly_one_cluster(self, clustered):
        __, clusters = clustered
        all_members = [d for c in clusters for d in c.domains]
        assert len(all_members) == 80
        assert len(set(all_members)) == 80

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DomainClusterer().fit(["a.com"], np.zeros((2, 3)))

    def test_annotate_reports_dominant_category(self, clustered, truth):
        clusterer, clusters = clustered
        threatbook = SimulatedThreatBook(truth, coverage=1.0)
        reports = clusterer.annotate(threatbook)
        spam_report = next(
            r for r in reports if "spamdom0.bid" in r.cluster.domains
        )
        assert spam_report.dominant_category == "spam"
        assert spam_report.category_share > 0.8

    def test_annotate_requires_fit(self, truth):
        clusterer = DomainClusterer()
        with pytest.raises(ValueError, match="fit"):
            clusterer.annotate(SimulatedThreatBook(truth))


class TestSeedExpansion:
    def test_seeds_pull_in_cluster_siblings(self, clustered, truth):
        __, clusters = clustered
        virustotal = SimulatedVirusTotal(truth)
        result = expand_from_seeds(
            clusters, ["spamdom0.bid", "spamdom1.bid"], virustotal
        )
        assert result.seed_size == 2
        discovered = set(result.true_domains) | set(result.suspicious_domains)
        assert len(discovered) >= 15  # the rest of the spam cluster
        assert "spamdom0.bid" not in discovered  # seeds excluded

    def test_partition_into_true_and_suspicious(self, clustered, truth):
        __, clusters = clustered
        virustotal = SimulatedVirusTotal(
            truth, VirusTotalConfig(blind_spot_rate=0.5)
        )
        result = expand_from_seeds(clusters, ["dgadom0.ws"], virustotal)
        # With a 50% blind spot both buckets are populated.
        assert result.discovered_true > 0
        assert result.discovered_suspicious > 0
        assert not set(result.true_domains) & set(result.suspicious_domains)

    def test_no_seeds_discovers_nothing(self, clustered, truth):
        __, clusters = clustered
        virustotal = SimulatedVirusTotal(truth)
        result = expand_from_seeds(clusters, [], virustotal)
        assert result.discovered_true == 0
        assert result.discovered_suspicious == 0

    def test_counts_match_lists(self, clustered, truth):
        __, clusters = clustered
        virustotal = SimulatedVirusTotal(truth)
        result = expand_from_seeds(clusters, ["spamdom0.bid"], virustotal)
        assert result.discovered_true == len(result.true_domains)
        assert result.discovered_suspicious == len(result.suspicious_domains)


class TestDomainCluster:
    def test_len(self):
        cluster = DomainCluster(0, ["a.com", "b.com"], np.zeros(3))
        assert len(cluster) == 2
