"""Unit tests for chunked trace reading (repro.ingest.chunking)."""

import io
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dns.logfmt import DnsTraceWriter
from repro.dns.types import DnsQuery, DnsResponse, QueryType, ResourceRecord
from repro.errors import IngestError
from repro.ingest import ChunkedTraceReader, ChunkPolicy
from repro.obs.metrics import default_registry


def _make_records(count, *, spacing=1.0):
    records = []
    for index in range(count):
        stamp = index * spacing
        records.append(
            DnsQuery(stamp, index % 0x10000, f"10.0.0.{index % 20}",
                     f"name{index}.example.com", QueryType.A)
        )
    return records


def _trace_stream(records):
    buffer = io.StringIO()
    DnsTraceWriter(buffer).write_all(records)
    buffer.seek(0)
    return buffer


class TestChunkPolicy:
    def test_defaults_validate(self):
        ChunkPolicy().validate()

    @pytest.mark.parametrize("max_records", [0, -3])
    def test_bad_record_bound_rejected(self, max_records):
        with pytest.raises(IngestError):
            ChunkPolicy(max_records=max_records).validate()

    @pytest.mark.parametrize("max_seconds", [0.0, -1.0])
    def test_bad_time_bound_rejected(self, max_seconds):
        with pytest.raises(IngestError):
            ChunkPolicy(max_seconds=max_seconds).validate()

    def test_reader_rejects_negative_cursor(self):
        with pytest.raises(IngestError):
            ChunkedTraceReader(_trace_stream([]), start_record=-1)


class TestChunking:
    def test_record_bound_splits_batches(self):
        records = _make_records(10)
        reader = ChunkedTraceReader(
            _trace_stream(records), ChunkPolicy(max_records=4)
        )
        batches = list(reader)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [b.index for b in batches] == [0, 1, 2]
        assert batches[0].start_record == 0
        assert batches[0].end_record == 4
        assert batches[-1].end_record == 10
        assert reader.cursor == 10
        assert reader.chunks_read == 3

    def test_batches_preserve_record_order(self):
        records = _make_records(7)
        batches = list(
            ChunkedTraceReader(
                _trace_stream(records), ChunkPolicy(max_records=3)
            )
        )
        recombined = [r for b in batches for r in b.records]
        assert recombined == records

    def test_time_bound_opens_new_chunk(self):
        # 10 records, one per second; a 3-second bound caps each chunk
        # at 3 records even though max_records allows far more.
        records = _make_records(10, spacing=1.0)
        batches = list(
            ChunkedTraceReader(
                _trace_stream(records),
                ChunkPolicy(max_records=100, max_seconds=3.0),
            )
        )
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        for batch in batches:
            assert batch.max_timestamp - batch.min_timestamp < 3.0

    def test_batch_timestamps_span_records(self):
        records = _make_records(5, spacing=2.0)
        (batch,) = list(ChunkedTraceReader(_trace_stream(records)))
        assert batch.min_timestamp == 0.0
        assert batch.max_timestamp == 8.0

    def test_mixed_queries_and_responses(self):
        records = [
            DnsQuery(1.0, 1, "10.0.0.1", "a.example.com", QueryType.A),
            DnsResponse(
                1.1, 1, "10.0.0.1", "a.example.com",
                answers=(ResourceRecord(QueryType.A, "93.0.0.1", 300),),
            ),
            DnsQuery(2.0, 2, "10.0.0.2", "b.example.com", QueryType.A),
        ]
        (batch,) = list(ChunkedTraceReader(_trace_stream(records)))
        assert batch.records == records

    def test_empty_trace_yields_nothing(self):
        reader = ChunkedTraceReader(_trace_stream([]))
        assert list(reader) == []
        assert reader.cursor == 0
        assert reader.closed


class TestCursorResume:
    def test_start_record_skips_exactly(self):
        records = _make_records(10)
        reader = ChunkedTraceReader(
            _trace_stream(records),
            ChunkPolicy(max_records=4),
            start_record=6,
        )
        batches = list(reader)
        assert [len(b) for b in batches] == [4]
        assert batches[0].start_record == 6
        assert batches[0].records == records[6:]
        assert reader.cursor == 10

    def test_cursor_concatenation_covers_trace(self):
        # Reading [0, k) then reopening at k must reproduce one pass.
        records = _make_records(9)
        first = ChunkedTraceReader(
            _trace_stream(records), ChunkPolicy(max_records=4)
        )
        iterator = iter(first)
        head = next(iterator)
        first.close()
        second = ChunkedTraceReader(
            _trace_stream(records),
            ChunkPolicy(max_records=100),
            start_record=first.cursor,
        )
        tail = [r for b in second for r in b.records]
        assert head.records + tail == records

    def test_cursor_beyond_trace_raises(self):
        records = _make_records(3)
        reader = ChunkedTraceReader(_trace_stream(records), start_record=5)
        with pytest.raises(IngestError, match="beyond the trace"):
            list(reader)


class TestResourceHandling:
    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "dns.log"
        with DnsTraceWriter(path) as writer:
            writer.write_all(_make_records(5))
        with ChunkedTraceReader(path, ChunkPolicy(max_records=2)) as reader:
            next(iter(reader))
            assert not reader.closed
        assert reader.closed

    def test_exhaustion_closes(self, tmp_path):
        path = tmp_path / "dns.log"
        with DnsTraceWriter(path) as writer:
            writer.write_all(_make_records(3))
        reader = ChunkedTraceReader(path)
        list(reader)
        assert reader.closed

    def test_close_is_idempotent(self):
        reader = ChunkedTraceReader(_trace_stream(_make_records(2)))
        reader.close()
        reader.close()
        assert reader.closed

    def test_ingest_metrics_counted(self):
        registry = default_registry()
        registry.reset()
        list(
            ChunkedTraceReader(
                _trace_stream(_make_records(10)), ChunkPolicy(max_records=4)
            )
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"]["ingest.records"]["value"] == 10
        assert snapshot["counters"]["ingest.chunks"]["value"] == 3


# Child script for the memory-bound test: reads the trace either
# monolithically (everything in one list, the old pipeline shape) or
# chunked, and prints its own current RSS at the point of peak holding.
# Current RSS from /proc/self/statm, not ru_maxrss: the high-water mark
# can survive exec on some kernels and echo the parent's peak.
_RSS_CHILD = """
import os, sys
sys.path[:0] = {sys_path!r}
from repro.dns.logfmt import DnsTraceReader
from repro.ingest import ChunkPolicy, ChunkedTraceReader

def rss():
    with open("/proc/self/statm") as stream:
        return int(stream.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")

if {mode!r} == "monolithic":
    records = list(DnsTraceReader({path!r}))
    print(rss())
else:
    peak = 0
    with ChunkedTraceReader(
        {path!r}, ChunkPolicy(max_records=2_000)
    ) as reader:
        for batch in reader:
            peak = max(peak, rss())
    print(peak)
"""


@pytest.mark.slow
@pytest.mark.skipif(
    not os.path.exists("/proc/self/statm"), reason="needs /proc RSS"
)
class TestMemoryBound:
    def test_chunked_ingest_peak_rss_below_monolithic(self, tmp_path):
        # 200k records: the monolithic record list costs tens of MiB,
        # while the chunked reader holds at most 2k records at a time.
        path = tmp_path / "dns.log"
        with DnsTraceWriter(path) as writer:
            writer.write_all(_make_records(200_000))

        src = Path(__file__).resolve().parents[1] / "src"

        def measure(mode):
            child = _RSS_CHILD.format(
                sys_path=[str(src), *sys.path], mode=mode, path=str(path)
            )
            out = subprocess.run(
                [sys.executable, "-c", child],
                capture_output=True,
                text=True,
                check=True,
                timeout=300,
            )
            return int(out.stdout.strip().splitlines()[-1])

        monolithic = measure("monolithic")
        chunked = measure("chunked")
        # The gap must be the record list itself, not noise.
        assert chunked + 5 * 1024 * 1024 < monolithic
