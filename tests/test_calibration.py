"""Unit tests for Platt scaling."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.calibration import PlattScaler


@pytest.fixture(scope="module")
def scored_data():
    rng = np.random.default_rng(0)
    n = 400
    labels = rng.integers(0, 2, size=n)
    # Scores correlated with labels plus noise.
    scores = labels * 2.0 - 1.0 + rng.normal(0, 0.8, size=n)
    return scores, labels


class TestPlattScaler:
    def test_probabilities_in_unit_interval(self, scored_data):
        scores, labels = scored_data
        scaler = PlattScaler().fit(scores, labels)
        probabilities = scaler.predict_proba(scores)
        assert np.all(probabilities > 0)
        assert np.all(probabilities < 1)

    def test_monotone_in_score(self, scored_data):
        scores, labels = scored_data
        scaler = PlattScaler().fit(scores, labels)
        grid = np.linspace(scores.min(), scores.max(), 50)
        probabilities = scaler.predict_proba(grid)
        assert np.all(np.diff(probabilities) >= -1e-12)

    def test_calibration_quality(self, scored_data):
        """Predicted probabilities track empirical frequencies."""
        scores, labels = scored_data
        scaler = PlattScaler().fit(scores, labels)
        probabilities = scaler.predict_proba(scores)
        for low, high in ((0.0, 0.25), (0.25, 0.5), (0.5, 0.75), (0.75, 1.0)):
            mask = (probabilities >= low) & (probabilities < high)
            if mask.sum() < 20:
                continue
            empirical = labels[mask].mean()
            predicted = probabilities[mask].mean()
            assert abs(empirical - predicted) < 0.15

    def test_ranking_preserved(self, scored_data):
        scores, labels = scored_data
        from repro.ml.metrics import roc_auc_score

        scaler = PlattScaler().fit(scores, labels)
        auc_scores = roc_auc_score(labels, scores)
        auc_probabilities = roc_auc_score(
            labels, scaler.predict_proba(scores)
        )
        assert auc_probabilities == pytest.approx(auc_scores, abs=1e-9)

    def test_separable_data_does_not_blow_up(self):
        scores = np.array([-2.0, -1.5, -1.0, 1.0, 1.5, 2.0])
        labels = np.array([0, 0, 0, 1, 1, 1])
        scaler = PlattScaler().fit(scores, labels)
        probabilities = scaler.predict_proba(scores)
        assert np.all(np.isfinite(probabilities))
        assert probabilities[0] < 0.5 < probabilities[-1]

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="both classes"):
            PlattScaler().fit(np.zeros(5), np.ones(5))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PlattScaler().predict_proba(np.zeros(3))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            PlattScaler().fit(np.zeros(4), np.zeros(5))

    def test_with_real_svm_scores(self):
        from repro.ml.svm import SupportVectorClassifier

        rng = np.random.default_rng(3)
        n = 150
        features = np.vstack(
            [rng.normal(-1, 0.7, size=(n, 2)), rng.normal(1, 0.7, size=(n, 2))]
        )
        labels = np.array([0] * n + [1] * n)
        model = SupportVectorClassifier(c=1.0, gamma=0.5).fit(features, labels)
        scores = model.decision_function(features)
        scaler = PlattScaler().fit(scores, labels)
        probabilities = scaler.predict_proba(scores)
        assert probabilities[labels == 1].mean() > 0.7
        assert probabilities[labels == 0].mean() < 0.3
