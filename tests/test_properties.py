"""Property-based tests (hypothesis) for core data structures and math."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dns.names import is_valid_domain_name, normalize_domain
from repro.dns.psl import default_psl
from repro.embedding.alias import AliasSampler
from repro.errors import DomainNameError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.projection import project_to_similarity
from repro.ml.metrics import roc_auc_score, roc_curve
from repro.ml.preprocessing import StandardScaler

# ---------------------------------------------------------------------------
# Domain-name handling

_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=15
)
_domain = st.lists(_label, min_size=2, max_size=5).map(".".join)


class TestDomainNameProperties:
    @given(_domain)
    def test_normalization_is_idempotent(self, name):
        once = normalize_domain(name)
        assert normalize_domain(once) == once

    @given(_domain)
    def test_valid_names_accepted(self, name):
        assert is_valid_domain_name(name)

    @given(_domain)
    def test_e2ld_is_suffix_of_name(self, name):
        psl = default_psl()
        try:
            e2ld = psl.registered_domain(name)
        except DomainNameError:
            return  # bare public suffix: nothing to check
        assert name.endswith(e2ld)
        # e2LD is itself a fixed point of the aggregation.
        assert psl.registered_domain(e2ld) == e2ld

    @given(_domain.map(str.upper))
    def test_case_insensitive_validation(self, name):
        assert is_valid_domain_name(name) == is_valid_domain_name(name.lower())


# ---------------------------------------------------------------------------
# Alias sampling

class TestAliasProperties:
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=40
        ),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40)
    def test_samples_in_range(self, weights, count):
        sampler = AliasSampler(np.array(weights))
        draws = sampler.sample(count, np.random.default_rng(0))
        assert draws.shape == (count,)
        if count:
            assert draws.min() >= 0
            assert draws.max() < len(weights)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=20
        ).filter(lambda w: sum(w) > 0 and 0.0 in w)
    )
    @settings(max_examples=30)
    def test_zero_weights_never_sampled(self, weights):
        sampler = AliasSampler(np.array(weights))
        draws = sampler.sample(2000, np.random.default_rng(1))
        zero_positions = {i for i, w in enumerate(weights) if w == 0.0}
        assert not set(np.unique(draws)) & zero_positions


# ---------------------------------------------------------------------------
# Jaccard projection invariants

@st.composite
def bipartite_graphs(draw):
    domain_count = draw(st.integers(min_value=2, max_value=10))
    graph = BipartiteGraph(kind="host")
    for index in range(domain_count):
        hood = draw(
            st.sets(st.integers(min_value=0, max_value=12), min_size=1, max_size=6)
        )
        for vertex in hood:
            graph.add_edge(f"d{index}.com", vertex)
    return graph


class TestProjectionProperties:
    @given(bipartite_graphs())
    @settings(max_examples=40)
    def test_weights_are_valid_jaccard_values(self, graph):
        similarity = project_to_similarity(graph)
        assert np.all(similarity.weights > 0)
        assert np.all(similarity.weights <= 1.0 + 1e-12)

    @given(bipartite_graphs())
    @settings(max_examples=40)
    def test_edges_match_brute_force(self, graph):
        similarity = project_to_similarity(graph)
        domains = sorted(graph.adjacency)
        for i, a in enumerate(domains):
            for b in domains[i + 1 :]:
                hood_a, hood_b = graph.adjacency[a], graph.adjacency[b]
                expected = (
                    len(hood_a & hood_b) / len(hood_a | hood_b)
                    if hood_a & hood_b
                    else 0.0
                )
                assert abs(similarity.weight_between(a, b) - expected) < 1e-12

    @given(bipartite_graphs())
    @settings(max_examples=20)
    def test_identical_neighborhoods_have_weight_one(self, graph):
        # Clone one domain's neighborhood under a new name.
        source = next(iter(graph.adjacency))
        for vertex in graph.adjacency[source]:
            graph.add_edge("clone.com", vertex)
        similarity = project_to_similarity(graph)
        assert similarity.weight_between(source, "clone.com") == 1.0


# ---------------------------------------------------------------------------
# Metrics invariants

@st.composite
def scored_labels(draw):
    n = draw(st.integers(min_value=4, max_value=60))
    labels = draw(
        st.lists(st.integers(min_value=0, max_value=1), min_size=n, max_size=n)
        .filter(lambda ls: 0 < sum(ls) < len(ls))
    )
    scores = draw(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    # Quantize so distinct scores stay distinct under the affine
    # transforms applied below (avoids float-rounding tie artifacts).
    return np.array(labels), np.round(np.array(scores), 4)


class TestMetricProperties:
    @given(scored_labels())
    @settings(max_examples=60)
    def test_auc_bounded(self, data):
        labels, scores = data
        auc = roc_auc_score(labels, scores)
        assert 0.0 <= auc <= 1.0

    @given(scored_labels())
    @settings(max_examples=60)
    def test_auc_complementary_under_score_negation(self, data):
        labels, scores = data
        direct = roc_auc_score(labels, scores)
        flipped = roc_auc_score(labels, -scores)
        assert abs(direct + flipped - 1.0) < 1e-9

    @given(scored_labels())
    @settings(max_examples=60)
    def test_roc_endpoints(self, data):
        labels, scores = data
        fpr, tpr, __ = roc_curve(labels, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    @given(
        scored_labels(),
        st.floats(min_value=0.1, max_value=10),
        st.floats(min_value=-5, max_value=5),
    )
    @settings(max_examples=40)
    def test_auc_invariant_to_monotone_transform(self, data, scale, shift):
        labels, scores = data
        direct = roc_auc_score(labels, scores)
        transformed = roc_auc_score(labels, scores * scale + shift)
        assert abs(direct - transformed) < 1e-9


# ---------------------------------------------------------------------------
# Scaler invariants

class TestScalerProperties:
    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40)
    def test_round_trip(self, rows, cols, seed):
        data = np.random.default_rng(seed).normal(size=(rows, cols)) * 10
        scaler = StandardScaler().fit(data)
        recovered = scaler.inverse_transform(scaler.transform(data))
        assert np.allclose(recovered, data, atol=1e-8)
