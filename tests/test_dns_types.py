"""Unit tests for repro.dns.types."""

import pytest

from repro.dns.types import (
    DhcpLease,
    DnsQuery,
    DnsResponse,
    QueryType,
    ResourceRecord,
    TraceMetadata,
)


class TestQueryType:
    def test_from_wire_accepts_known_types(self):
        assert QueryType.from_wire("A") is QueryType.A
        assert QueryType.from_wire("cname") is QueryType.CNAME
        assert QueryType.from_wire("Mx") is QueryType.MX

    def test_from_wire_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown DNS query type"):
            QueryType.from_wire("BOGUS")


class TestDnsQuery:
    def test_valid_query(self):
        query = DnsQuery(1.5, 42, "10.0.0.1", "www.example.com")
        assert query.qtype is QueryType.A
        assert query.timestamp == 1.5

    def test_txid_range_enforced(self):
        with pytest.raises(ValueError, match="txid"):
            DnsQuery(0.0, 70000, "10.0.0.1", "example.com")
        with pytest.raises(ValueError, match="txid"):
            DnsQuery(0.0, -1, "10.0.0.1", "example.com")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError, match="timestamp"):
            DnsQuery(-0.1, 1, "10.0.0.1", "example.com")

    def test_query_is_immutable(self):
        query = DnsQuery(1.0, 1, "10.0.0.1", "example.com")
        with pytest.raises(AttributeError):
            query.qname = "other.com"


class TestResourceRecord:
    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError, match="TTL"):
            ResourceRecord(QueryType.A, "1.2.3.4", -5)

    def test_zero_ttl_allowed(self):
        assert ResourceRecord(QueryType.A, "1.2.3.4", 0).ttl == 0


class TestDnsResponse:
    def test_resolved_ips_filters_a_records(self):
        response = DnsResponse(
            timestamp=2.0,
            txid=7,
            destination_ip="10.0.0.2",
            qname="example.com",
            answers=(
                ResourceRecord(QueryType.CNAME, "alias.example.com", 60),
                ResourceRecord(QueryType.A, "1.2.3.4", 300),
                ResourceRecord(QueryType.AAAA, "::1", 300),
            ),
        )
        assert response.resolved_ips == ("1.2.3.4", "::1")

    def test_min_ttl(self):
        response = DnsResponse(
            timestamp=2.0,
            txid=7,
            destination_ip="10.0.0.2",
            qname="example.com",
            answers=(
                ResourceRecord(QueryType.A, "1.2.3.4", 300),
                ResourceRecord(QueryType.A, "1.2.3.5", 60),
            ),
        )
        assert response.min_ttl == 60

    def test_min_ttl_empty_answers(self):
        response = DnsResponse(2.0, 7, "10.0.0.2", "example.com")
        assert response.min_ttl is None

    def test_nxdomain_with_answers_rejected(self):
        with pytest.raises(ValueError, match="NXDOMAIN"):
            DnsResponse(
                timestamp=2.0,
                txid=7,
                destination_ip="10.0.0.2",
                qname="example.com",
                answers=(ResourceRecord(QueryType.A, "1.2.3.4", 10),),
                nxdomain=True,
            )


class TestDhcpLease:
    def test_active_window_semantics(self):
        lease = DhcpLease("aa:bb", "10.0.0.9", 100.0, 200.0)
        assert lease.active_at(100.0)  # start-inclusive
        assert lease.active_at(199.999)
        assert not lease.active_at(200.0)  # end-exclusive
        assert not lease.active_at(99.999)

    def test_empty_lease_rejected(self):
        with pytest.raises(ValueError, match="lease end"):
            DhcpLease("aa:bb", "10.0.0.9", 100.0, 100.0)


class TestTraceMetadata:
    def test_end_time(self):
        metadata = TraceMetadata(start_time=10.0, duration=5.0, host_count=3)
        assert metadata.end_time == 15.0
