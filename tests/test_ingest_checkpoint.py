"""Unit tests for stage checkpoints (repro.ingest.checkpoint)."""

import json

import numpy as np
import pytest

from repro.errors import ArtifactIntegrityError, IngestError
from repro.ingest import PipelineCheckpointer
from repro.ingest.checkpoint import (
    CHECKPOINT_STAGES,
    MANIFEST_FILENAME,
    STAGE_INGEST,
    STAGE_PROJECT,
    STAGE_PRUNE,
    StageManifest,
)
from repro.obs.metrics import default_registry


def _write_payload(values):
    def populate(staging):
        np.savez_compressed(staging / "data.npz", values=np.asarray(values))

    return populate


def _load_payload(directory):
    with np.load(directory / "data.npz") as archive:
        return archive["values"].tolist()


class TestSaveAndVerify:
    def test_round_trip(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path, "fp")
        ckpt.save(STAGE_PRUNE, _write_payload([1, 2, 3]), {"cursor": 42})
        directory, manifest = ckpt.verify(STAGE_PRUNE)
        assert _load_payload(directory) == [1, 2, 3]
        assert manifest.stage == STAGE_PRUNE
        assert manifest.fingerprint == "fp"
        assert manifest.complete
        assert manifest.meta["cursor"] == 42
        assert "data.npz" in manifest.files

    def test_stage_dirs_are_ordered(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        names = [ckpt.stage_dir(stage).name for stage in CHECKPOINT_STAGES]
        assert names == sorted(names)

    def test_unknown_stage_rejected(self, tmp_path):
        with pytest.raises(IngestError):
            PipelineCheckpointer(tmp_path).save(
                "nonsense", _write_payload([1])
            )

    def test_save_overwrites_previous(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        ckpt.save(STAGE_PRUNE, _write_payload([1]))
        ckpt.save(STAGE_PRUNE, _write_payload([2]))
        directory, __ = ckpt.verify(STAGE_PRUNE)
        assert _load_payload(directory) == [2]

    def test_failed_populate_leaves_no_checkpoint(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)

        def explode(staging):
            np.savez_compressed(staging / "data.npz", values=np.arange(3))
            raise RuntimeError("mid-save crash")

        with pytest.raises(RuntimeError):
            ckpt.save(STAGE_PRUNE, explode)
        assert not ckpt.has(STAGE_PRUNE)
        assert not list(tmp_path.glob(".*staging*"))

    def test_failed_save_keeps_previous_checkpoint(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        ckpt.save(STAGE_PRUNE, _write_payload([7]))

        def explode(staging):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            ckpt.save(STAGE_PRUNE, explode)
        directory, __ = ckpt.verify(STAGE_PRUNE)
        assert _load_payload(directory) == [7]

    def test_checkpoint_bytes_gauge_updates(self, tmp_path):
        registry = default_registry()
        registry.reset()
        ckpt = PipelineCheckpointer(tmp_path)
        ckpt.save(STAGE_PRUNE, _write_payload(list(range(100))))
        value = registry.snapshot()["gauges"]["checkpoint.bytes"]["value"]
        assert value == ckpt.total_bytes() > 0


class TestIntegrityRejection:
    def test_missing_manifest(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        with pytest.raises(ArtifactIntegrityError, match="no checkpoint"):
            ckpt.verify(STAGE_PRUNE)

    def test_tampered_artifact_rejected(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        ckpt.save(STAGE_PRUNE, _write_payload([1, 2]))
        target = ckpt.stage_dir(STAGE_PRUNE) / "data.npz"
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF
        target.write_bytes(bytes(raw))
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            ckpt.verify(STAGE_PRUNE)

    def test_missing_artifact_rejected(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        ckpt.save(STAGE_PRUNE, _write_payload([1]))
        (ckpt.stage_dir(STAGE_PRUNE) / "data.npz").unlink()
        with pytest.raises(ArtifactIntegrityError, match="missing"):
            ckpt.verify(STAGE_PRUNE)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        PipelineCheckpointer(tmp_path, "one").save(
            STAGE_PRUNE, _write_payload([1])
        )
        other = PipelineCheckpointer(tmp_path, "two")
        with pytest.raises(ArtifactIntegrityError, match="different"):
            other.verify(STAGE_PRUNE)

    def test_unfingerprinted_checkpointer_accepts_any(self, tmp_path):
        PipelineCheckpointer(tmp_path, "one").save(
            STAGE_PRUNE, _write_payload([1])
        )
        PipelineCheckpointer(tmp_path, "").verify(STAGE_PRUNE)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        ckpt.save(STAGE_PRUNE, _write_payload([1]))
        manifest_path = ckpt.stage_dir(STAGE_PRUNE) / MANIFEST_FILENAME
        raw = json.loads(manifest_path.read_text())
        raw["schema_version"] = 999
        manifest_path.write_text(json.dumps(raw))
        with pytest.raises(ArtifactIntegrityError, match="schema"):
            ckpt.verify(STAGE_PRUNE)

    def test_wrong_stage_name_rejected(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        ckpt.save(STAGE_PRUNE, _write_payload([1]))
        manifest_path = ckpt.stage_dir(STAGE_PRUNE) / MANIFEST_FILENAME
        raw = json.loads(manifest_path.read_text())
        raw["stage"] = STAGE_PROJECT
        manifest_path.write_text(json.dumps(raw))
        with pytest.raises(ArtifactIntegrityError, match="records stage"):
            ckpt.verify(STAGE_PRUNE)

    def test_garbage_manifest_rejected(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        ckpt.save(STAGE_PRUNE, _write_payload([1]))
        manifest_path = ckpt.stage_dir(STAGE_PRUNE) / MANIFEST_FILENAME
        manifest_path.write_text("{not json")
        with pytest.raises(ArtifactIntegrityError, match="unreadable"):
            ckpt.verify(STAGE_PRUNE)

    def test_manifest_from_json_requires_object(self):
        with pytest.raises(ArtifactIntegrityError):
            StageManifest.from_json("[1, 2]")


class TestResumeBookkeeping:
    def test_latest_finds_most_advanced_stage(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        assert ckpt.latest() is None
        ckpt.save(STAGE_INGEST, _write_payload([1]), complete=False)
        ckpt.save(STAGE_PRUNE, _write_payload([2]))
        stage, manifest = ckpt.latest()
        assert stage == STAGE_PRUNE
        assert manifest.complete

    def test_partial_checkpoints_flagged(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        ckpt.save(
            STAGE_INGEST, _write_payload([1]),
            {"cursor": 5}, complete=False,
        )
        __, manifest = ckpt.verify(STAGE_INGEST)
        assert not manifest.complete
        assert manifest.meta["cursor"] == 5

    def test_invalidate_after_drops_later_stages(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path)
        ckpt.save(STAGE_INGEST, _write_payload([1]))
        ckpt.save(STAGE_PRUNE, _write_payload([2]))
        ckpt.save(STAGE_PROJECT, _write_payload([3]))
        ckpt.invalidate_after(STAGE_INGEST)
        assert ckpt.has(STAGE_INGEST)
        assert not ckpt.has(STAGE_PRUNE)
        assert not ckpt.has(STAGE_PROJECT)
