"""Unit tests for the belief-propagation graph-inference baseline."""

import numpy as np
import pytest

from repro.baselines.graph_inference import (
    BeliefPropagationConfig,
    GraphInferenceDetector,
)
from repro.errors import GraphConstructionError
from repro.graphs.bipartite import BipartiteGraph


@pytest.fixture()
def two_community_graph():
    """Infected hosts h0-h2 query bad domains; clean hosts the rest."""
    graph = BipartiteGraph(kind="host")
    bad = [f"bad{i}.ws" for i in range(6)]
    good = [f"good{i}.com" for i in range(6)]
    for domain in bad:
        for host in ("h0", "h1", "h2"):
            graph.add_edge(domain, host)
    for domain in good:
        for host in ("h3", "h4", "h5", "h6"):
            graph.add_edge(domain, host)
    # One bridge: a clean host occasionally touches one bad domain.
    graph.add_edge("bad0.ws", "h3")
    return graph, bad, good


class TestGraphInference:
    def test_beliefs_spread_from_seeds(self, two_community_graph):
        graph, bad, good = two_community_graph
        detector = GraphInferenceDetector().fit(
            graph, seed_malicious={"bad0.ws"}, seed_benign={"good0.com"}
        )
        bad_scores = detector.scores(bad[1:])   # unseeded bad domains
        good_scores = detector.scores(good[1:])  # unseeded good domains
        assert bad_scores.mean() > good_scores.mean()

    def test_seeded_domains_keep_strong_beliefs(self, two_community_graph):
        graph, bad, good = two_community_graph
        detector = GraphInferenceDetector().fit(
            graph, seed_malicious={"bad0.ws"}, seed_benign={"good0.com"}
        )
        assert detector.scores(["bad0.ws"])[0] > 0.6
        assert detector.scores(["good0.com"])[0] < 0.4

    def test_unknown_domain_gets_base_rate(self, two_community_graph):
        graph, __, __ = two_community_graph
        config = BeliefPropagationConfig(base_rate=0.05)
        detector = GraphInferenceDetector(config).fit(
            graph, {"bad0.ws"}, set()
        )
        assert detector.scores(["never-seen.example"])[0] == 0.05

    def test_converges_and_reports_iterations(self, two_community_graph):
        graph, __, __ = two_community_graph
        detector = GraphInferenceDetector().fit(graph, {"bad0.ws"}, set())
        assert 1 <= detector.iterations_ <= 15

    def test_no_seeds_gives_near_uniform(self, two_community_graph):
        graph, bad, good = two_community_graph
        detector = GraphInferenceDetector().fit(graph, set(), set())
        scores = detector.scores(bad + good)
        assert np.all(scores < 0.5)  # base-rate-dominated

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphConstructionError):
            GraphInferenceDetector().fit(
                BipartiteGraph(kind="host"), set(), set()
            )

    def test_scores_before_fit_rejected(self):
        with pytest.raises(GraphConstructionError):
            GraphInferenceDetector().scores(["a.com"])


class TestConfigValidation:
    def test_homophily_bounds(self):
        with pytest.raises(ValueError):
            BeliefPropagationConfig(homophily=0.5).validate()
        with pytest.raises(ValueError):
            BeliefPropagationConfig(homophily=1.0).validate()

    def test_base_rate_bounds(self):
        with pytest.raises(ValueError):
            BeliefPropagationConfig(base_rate=0.0).validate()

    def test_seed_confidence_bounds(self):
        with pytest.raises(ValueError):
            BeliefPropagationConfig(seed_confidence=0.4).validate()

    def test_iterations_bound(self):
        with pytest.raises(ValueError):
            BeliefPropagationConfig(max_iterations=0).validate()
