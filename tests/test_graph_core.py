"""Unit tests for the interned columnar graph core (repro.graphs.core).

Covers the VertexTable interner, the array-backed EdgeList (eager and
batch ingestion modes), the read-only AdjacencyView, the typed
deterministic right-vertex ordering, bipartite .npz persistence, and a
golden-equivalence check of the vectorized batch builders against a
straightforward dict-of-sets reference implementation on the fixed-seed
simulated trace.
"""

import numpy as np
import pytest

from repro.core.persistence import load_bipartite_graph, save_bipartite_graph
from repro.dns.names import is_valid_domain_name
from repro.dns.psl import default_psl
from repro.errors import DomainNameError
from repro.graphs import (
    AdjacencyView,
    BipartiteGraph,
    EdgeList,
    VertexTable,
    build_domain_ip_graph,
    build_query_graphs,
)


class TestVertexTable:
    def test_intern_assigns_dense_ids_in_first_seen_order(self):
        table = VertexTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0  # idempotent
        assert table.values == ["a", "b"]
        assert len(table) == 2

    def test_id_of_and_value_of(self):
        table = VertexTable(["x", "y"])
        assert table.id_of("y") == 1
        assert table.id_of("missing") is None
        assert table.value_of(0) == "x"

    def test_contains_and_iter(self):
        table = VertexTable(["a", "b"])
        assert "a" in table and "zzz" not in table
        assert list(table) == ["a", "b"]

    def test_typed_order_numbers_before_strings(self):
        table = VertexTable([10, "b", 2, "a"])
        assert table.typed_order() == [2, 10, "a", "b"]

    def test_typed_order_subset(self):
        table = VertexTable(["c", "a", "b"])
        ids = [table.id_of("c"), table.id_of("a")]
        assert table.typed_order(ids) == ["a", "c"]

    def test_typed_order_is_rebuild_stable(self):
        # The repr-based ordering this replaces depended on insertion
        # history; the typed order must not.
        one = VertexTable([3, "a", 1])
        two = VertexTable(["a", 1, 3])
        assert one.typed_order() == two.typed_order()

    def test_array_round_trip_mixed_types(self):
        table = VertexTable(["host-1", 42, "host-2", 7])
        values, codes = table.to_arrays()
        rebuilt = VertexTable.from_arrays(values, codes)
        assert rebuilt.values == table.values
        assert rebuilt.id_of(42) == table.id_of(42)


class TestEdgeListEager:
    def test_add_dedups_and_counts(self):
        edges = EdgeList()
        assert edges.add(0, 1) is True
        assert edges.add(0, 1) is False
        assert edges.add(1, 1) is True
        assert edges.edge_count == 2
        assert edges.left_count() == 2

    def test_left_ids_ordered_is_first_edge_order(self):
        edges = EdgeList()
        edges.add(5, 0)
        edges.add(2, 0)
        edges.add(5, 1)
        assert edges.left_ids_ordered() == [5, 2]

    def test_neighbors_and_degrees(self):
        edges = EdgeList()
        edges.add(0, 3)
        edges.add(0, 7)
        edges.add(1, 3)
        assert sorted(edges.neighbors_of_left(0).tolist()) == [3, 7]
        assert edges.degree_of_left(0) == 2
        assert edges.degree_of_left(99) == 0
        assert edges.left_degrees(2).tolist() == [2, 1]

    def test_right_ids_used_sorted_unique(self):
        edges = EdgeList()
        edges.add(0, 9)
        edges.add(1, 4)
        edges.add(2, 9)
        assert edges.right_ids_used().tolist() == [4, 9]


class TestEdgeListBatch:
    def test_compact_keeps_first_occurrence_order(self):
        edges = EdgeList()
        edges.extend_raw([3, 1, 3, 2, 1], [0, 0, 0, 0, 0])
        edges.compact()
        lefts, __ = edges.columns()
        assert lefts.tolist() == [3, 1, 2]
        assert edges.edge_count == 3

    def test_append_raw_then_add_resumes_dedup(self):
        edges = EdgeList()
        edges.append_raw(0, 1)
        edges.append_raw(0, 1)
        # add() must rebuild its hash index over the raw buffer first.
        assert edges.add(0, 1) is False
        assert edges.add(2, 2) is True
        assert edges.edge_count == 2

    def test_extend_raw_shape_mismatch(self):
        from repro.errors import GraphConstructionError

        edges = EdgeList()
        with pytest.raises(GraphConstructionError):
            edges.extend_raw([1, 2], [3])

    def test_copy_is_independent(self):
        edges = EdgeList()
        edges.add(0, 1)
        clone = edges.copy()
        clone.add(5, 5)
        assert edges.edge_count == 1
        assert clone.edge_count == 2

    def test_columns_are_read_only(self):
        edges = EdgeList()
        edges.add(0, 1)
        lefts, __ = edges.columns()
        with pytest.raises(ValueError):
            lefts[0] = 9


class TestAdjacencyView:
    def make_graph(self):
        graph = BipartiteGraph(kind="host")
        graph.add_edge("b.com", "h1")
        graph.add_edge("a.com", "h1")
        graph.add_edge("b.com", "h2")
        return graph

    def test_equals_plain_dict(self):
        view = self.make_graph().adjacency
        assert view == {"b.com": {"h1", "h2"}, "a.com": {"h1"}}

    def test_iteration_order_is_first_edge_order(self):
        view = self.make_graph().adjacency
        assert list(view) == ["b.com", "a.com"]

    def test_getitem_missing_raises(self):
        view = self.make_graph().adjacency
        with pytest.raises(KeyError):
            view["nope.example"]

    def test_mapping_protocol(self):
        view = self.make_graph().adjacency
        assert isinstance(view, AdjacencyView)
        assert len(view) == 2
        assert view.get("a.com") == {"h1"}
        assert view.get("nope.example") is None


class TestTypedIncidenceOrdering:
    def test_mixed_int_str_right_vertices_numeric_first(self):
        graph = BipartiteGraph(kind="time")
        graph.add_edge("a.com", "w-extra")
        graph.add_edge("a.com", 10)
        graph.add_edge("a.com", 2)
        __, __, right_order = graph.incidence_matrix()
        # repr-ordering would give [10, 2, 'w-extra']; typed ordering
        # sorts the ints numerically before any string.
        assert right_order == [2, 10, "w-extra"]

    def test_order_stable_across_insert_orders(self):
        one = BipartiteGraph(kind="time")
        two = BipartiteGraph(kind="time")
        for right in (30, 4, "x"):
            one.add_edge("d.com", right)
        for right in ("x", 4, 30):
            two.add_edge("d.com", right)
        assert one.incidence_matrix()[2] == two.incidence_matrix()[2]

    def test_matrix_matches_adjacency(self):
        graph = BipartiteGraph(kind="host")
        graph.add_edge("a.com", "h1")
        graph.add_edge("b.com", "h1")
        graph.add_edge("b.com", "h2")
        matrix, domains, rights = graph.incidence_matrix()
        dense = matrix.toarray()
        for row, domain in enumerate(domains):
            got = {rights[c] for c in np.flatnonzero(dense[row])}
            assert got == graph.neighbors(domain)


class TestBipartitePersistence:
    def test_round_trip_string_vertices(self, tmp_path):
        graph = BipartiteGraph(kind="host")
        graph.add_edge("a.com", "h1")
        graph.add_edge("b.com", "h2")
        path = tmp_path / "host.npz"
        save_bipartite_graph(graph, path)
        loaded = load_bipartite_graph(path)
        assert loaded.kind == "host"
        assert loaded.adjacency == graph.adjacency
        assert loaded.domains == graph.domains

    def test_round_trip_int_right_vertices(self, tmp_path):
        graph = BipartiteGraph(kind="time")
        graph.add_edge("a.com", 0)
        graph.add_edge("a.com", 17)
        path = tmp_path / "time.npz"
        save_bipartite_graph(graph, path)
        loaded = load_bipartite_graph(path)
        # Window ids must come back as ints, not strings.
        assert loaded.adjacency == {"a.com": {0, 17}}
        assert loaded.incidence_matrix()[2] == [0, 17]

    def test_loaded_graph_supports_further_edits(self, tmp_path):
        graph = BipartiteGraph(kind="ip")
        graph.add_edge("a.com", "10.0.0.1")
        path = tmp_path / "ip.npz"
        save_bipartite_graph(graph, path)
        loaded = load_bipartite_graph(path)
        loaded.add_edge("b.com", "10.0.0.2")
        assert loaded.edge_count == 2


def _e2ld_or_none(qname, psl):
    if not is_valid_domain_name(qname):
        return None
    try:
        return psl.registered_domain(qname)
    except DomainNameError:
        return None


class TestGoldenEquivalence:
    """The vectorized batch builders must match a plain dict-of-sets
    reference implementation (the pre-refactor semantics) on the
    fixed-seed simulated trace: same domains in the same first-seen
    order, same neighbor sets."""

    def test_query_graphs_match_reference(self, tiny_trace):
        psl = default_psl()
        ref_host: dict = {}
        ref_time: dict = {}
        window_seconds = 60.0
        for query in tiny_trace.queries:
            e2ld = _e2ld_or_none(query.qname, psl)
            if e2ld is None:
                continue
            ref_host.setdefault(e2ld, set()).add(query.source_ip)
            window = int(query.timestamp // window_seconds)
            ref_time.setdefault(e2ld, set()).add(window)
        host, times = build_query_graphs(
            tiny_trace.queries, window_seconds=window_seconds
        )
        assert host.adjacency == ref_host
        assert host.domains == list(ref_host)
        assert times.adjacency == ref_time
        assert times.domains == list(ref_time)

    def test_ip_graph_matches_reference(self, tiny_trace):
        psl = default_psl()
        ref: dict = {}
        for response in tiny_trace.responses:
            if response.nxdomain:
                continue
            e2ld = _e2ld_or_none(response.qname, psl)
            if e2ld is None:
                continue
            for ip in response.resolved_ips:
                ref.setdefault(e2ld, set()).add(ip)
        graph = build_domain_ip_graph(tiny_trace.responses)
        assert graph.adjacency == ref
        assert graph.domains == list(ref)

    def test_shared_table_has_consistent_ids(self, tiny_trace):
        domains = VertexTable()
        host, times = build_query_graphs(tiny_trace.queries, domains=domains)
        ips = build_domain_ip_graph(tiny_trace.responses, domains=domains)
        assert host.left is ips.left is times.left
        for domain in list(host.domains)[:20]:
            vid = domains.id_of(domain)
            assert vid is not None
            assert domains.value_of(vid) == domain
