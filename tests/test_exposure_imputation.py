"""Tests for Exposure's missing-feature imputation of unresolved domains."""

import numpy as np
import pytest

from repro.baselines.exposure import ExposureFeatureExtractor, FEATURE_NAMES
from repro.dns.types import DnsQuery, DnsResponse, QueryType, ResourceRecord


def query(t, qname):
    return DnsQuery(t, 1, "10.0.0.1", qname)


def answered(t, qname, ip, ttl):
    return DnsResponse(
        t, 1, "10.0.0.1", qname,
        answers=(ResourceRecord(QueryType.A, ip, ttl),),
    )


def nxdomain(t, qname):
    return DnsResponse(t, 1, "10.0.0.1", qname, nxdomain=True)


@pytest.fixture(scope="module")
def features():
    queries = [
        query(10.0, "resolved-a.com"),
        query(20.0, "resolved-b.com"),
        query(30.0, "ghost-a.ws"),
        query(40.0, "ghost-b.ws"),
    ]
    responses = [
        answered(11.0, "resolved-a.com", "93.0.0.1", 300),
        answered(21.0, "resolved-b.com", "93.0.0.2", 900),
        nxdomain(31.0, "ghost-a.ws"),
        nxdomain(41.0, "ghost-b.ws"),
    ]
    return ExposureFeatureExtractor(time_window_days=1.0).extract(
        queries, responses
    )


_ANSWER_TTL_FEATURES = (
    "distinct_ip_count",
    "distinct_prefix_count",
    "shared_ip_domain_count",
    "ttl_mean",
    "ttl_stddev",
    "distinct_ttl_count",
    "ttl_change_count",
    "low_ttl_fraction",
)


class TestImputation:
    def test_unresolved_get_resolved_medians(self, features):
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        rows = features.rows_for(
            ["resolved-a.com", "resolved-b.com", "ghost-a.ws"]
        )
        for name in _ANSWER_TTL_FEATURES:
            column = index[name]
            expected_median = np.median([rows[0][column], rows[1][column]])
            assert rows[2][column] == pytest.approx(expected_median), name

    def test_ttl_mean_not_zero_for_unresolved(self, features):
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        ghost = features.rows_for(["ghost-a.ws"])[0]
        assert ghost[index["ttl_mean"]] == pytest.approx(600.0)  # median

    def test_time_and_lexical_features_untouched(self, features):
        """Only answer/TTL features are imputed; the rest stay real."""
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        ghost = features.rows_for(["ghost-a.ws"])[0]
        assert ghost[index["access_ratio"]] > 0  # real observation
        assert ghost[index["longest_meaningful_substring"]] == 0  # "ghosta"?
        # 'ghosta' contains no dictionary word of length > 0? 'ghost' is
        # not in the embedded wordlist; the assertion documents that.

    def test_all_resolved_leaves_matrix_unchanged(self):
        queries = [query(10.0, "a.com"), query(20.0, "b.com")]
        responses = [
            answered(11.0, "a.com", "93.0.0.1", 300),
            answered(21.0, "b.com", "93.0.0.2", 900),
        ]
        features = ExposureFeatureExtractor().extract(queries, responses)
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        rows = features.rows_for(["a.com", "b.com"])
        assert rows[0][index["ttl_mean"]] == 300.0
        assert rows[1][index["ttl_mean"]] == 900.0

    def test_none_resolved_keeps_zeros(self):
        queries = [query(10.0, "x.ws"), query(20.0, "y.ws")]
        responses = [nxdomain(11.0, "x.ws"), nxdomain(21.0, "y.ws")]
        features = ExposureFeatureExtractor().extract(queries, responses)
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        rows = features.rows_for(["x.ws", "y.ws"])
        assert rows[0][index["ttl_mean"]] == 0.0
