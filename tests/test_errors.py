"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DatasetError,
    DnsLogFormatError,
    DomainNameError,
    EmbeddingError,
    GraphConstructionError,
    NotFittedError,
    ReproError,
    SimulationConfigError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            DatasetError,
            DomainNameError,
            EmbeddingError,
            GraphConstructionError,
            SimulationConfigError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_log_format_error_carries_context(self):
        error = DnsLogFormatError(42, "bad line", "missing fields")
        assert error.line_number == 42
        assert error.line == "bad line"
        assert "line 42" in str(error)
        assert isinstance(error, ReproError)

    def test_not_fitted_error_names_model(self):
        error = NotFittedError("SupportVectorClassifier")
        assert "SupportVectorClassifier" in str(error)
        assert "fit()" in str(error)

    def test_catchable_at_api_boundary(self):
        """A caller can guard any repro call with one except clause."""
        from repro.dns.names import normalize_domain

        with pytest.raises(ReproError):
            normalize_domain("")
