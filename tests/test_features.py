"""Unit tests for the 3k-dim feature space assembly."""

import numpy as np
import pytest

from repro.core.features import FeatureSpace, FeatureView
from repro.embedding.line import LineConfig, LineEmbedding
from repro.errors import DatasetError


def embedding(kind, domains, dimension=4, fill=1.0):
    vectors = np.full((len(domains), dimension), fill)
    for row in range(len(domains)):
        vectors[row] *= row + 1
    return LineEmbedding(
        kind=kind, domains=list(domains), vectors=vectors, config=LineConfig()
    )


@pytest.fixture()
def space():
    return FeatureSpace(
        query=embedding("host", ["a.com", "b.com"], fill=1.0),
        ip=embedding("ip", ["a.com"], fill=10.0),
        temporal=embedding("time", ["a.com", "b.com", "c.com"], fill=100.0),
    )


class TestFeatureSpace:
    def test_dimension_is_3k(self, space):
        assert space.dimension == 12

    def test_matrix_concatenates_views_in_order(self, space):
        matrix = space.matrix(["a.com"])
        assert matrix.shape == (1, 12)
        assert np.all(matrix[0, :4] == 1.0)     # query block
        assert np.all(matrix[0, 4:8] == 10.0)   # ip block
        assert np.all(matrix[0, 8:] == 100.0)   # temporal block

    def test_missing_view_membership_zero_filled(self, space):
        matrix = space.matrix(["b.com"])
        assert np.all(matrix[0, :4] == 2.0)    # present in query
        assert np.all(matrix[0, 4:8] == 0.0)   # absent from ip view
        assert np.all(matrix[0, 8:] == 200.0)

    def test_single_view_selection(self, space):
        matrix = space.matrix(["a.com", "b.com"], views=[FeatureView.IP])
        assert matrix.shape == (2, 4)
        assert np.all(matrix[1] == 0.0)

    def test_empty_views_rejected(self, space):
        with pytest.raises(DatasetError):
            space.matrix(["a.com"], views=[])

    def test_vector_equals_matrix_row(self, space):
        assert np.array_equal(space.vector("c.com"), space.matrix(["c.com"])[0])

    def test_known_domains_union(self, space):
        assert space.known_domains == {"a.com", "b.com", "c.com"}

    def test_coverage(self, space):
        coverage = space.coverage(["a.com", "b.com", "c.com"])
        assert coverage[FeatureView.QUERY] == pytest.approx(2 / 3)
        assert coverage[FeatureView.IP] == pytest.approx(1 / 3)
        assert coverage[FeatureView.TEMPORAL] == pytest.approx(1.0)

    def test_coverage_empty(self, space):
        coverage = space.coverage([])
        assert all(v == 0.0 for v in coverage.values())
