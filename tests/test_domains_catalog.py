"""Unit tests for the benign domain catalog."""

import numpy as np
import pytest

from repro.dns.names import is_valid_domain_name
from repro.simulation.config import BenignCatalogConfig
from repro.simulation.domains import BenignCatalog
from repro.simulation.groundtruth import DomainCategory
from repro.simulation.ipspace import IpSpace


@pytest.fixture(scope="module")
def catalog():
    config = BenignCatalogConfig(
        popular_site_count=30,
        longtail_site_count=100,
        third_party_count=20,
        cdn_provider_count=3,
        shared_hosting_provider_count=4,
    )
    return BenignCatalog(config, IpSpace(), np.random.default_rng(11))


class TestCatalogComposition:
    def test_counts(self, catalog):
        assert len(catalog.popular_sites) == 30
        assert len(catalog.longtail_sites) == 100
        assert len(catalog.third_parties) == 20

    def test_all_names_valid_and_unique(self, catalog):
        names = [
            p.domain
            for p in catalog.all_sites
            + catalog.third_parties
            + catalog.background_services
        ]
        assert len(set(names)) == len(names)
        assert all(is_valid_domain_name(n) for n in names)

    def test_records_cover_every_profile(self, catalog):
        record_names = {r.name for r in catalog.records}
        profile_names = {
            p.domain
            for p in catalog.all_sites
            + catalog.third_parties
            + catalog.background_services
        }
        assert profile_names == record_names

    def test_all_records_benign(self, catalog):
        assert all(not r.is_malicious for r in catalog.records)

    def test_third_party_categories(self, catalog):
        categories = {
            r.category for r in catalog.records
            if r.name in {tp.domain for tp in catalog.third_parties}
        }
        assert categories <= {DomainCategory.CDN, DomainCategory.THIRD_PARTY}


class TestHosting:
    def test_every_profile_resolves(self, catalog, rng):
        for profile in catalog.all_sites + catalog.third_parties:
            ip = profile.hosting.resolve(1000.0, rng)
            assert ip.count(".") == 3

    def test_shared_hosting_ips_are_reused(self, catalog):
        shared_users = [
            p for p in catalog.longtail_sites
            if p.hosting.fixed_ips
            and set(p.hosting.fixed_ips) & set(catalog.shared_hosting_ips)
        ]
        used = [
            ip
            for p in shared_users
            for ip in p.hosting.fixed_ips
        ]
        # Many sites per shared address.
        assert len(used) > len(set(used))

    def test_cdn_sites_have_pools(self, catalog):
        pooled = [
            p for p in catalog.popular_sites + catalog.third_parties
            if p.hosting.pool is not None
        ]
        assert pooled, "expected some catalog entries on CDN pools"
        for profile in pooled:
            assert profile.hosting.ttl <= 300  # CDN answers use low TTLs


class TestSampling:
    def test_site_weights_normalized(self, catalog):
        weights = catalog.site_weights()
        assert np.isclose(weights.sum(), 1.0)
        assert weights.size == len(catalog.all_sites)

    def test_popular_sites_dominate_weights(self, catalog):
        weights = catalog.site_weights()
        popular_mass = weights[: len(catalog.popular_sites)].sum()
        assert popular_mass > 0.5

    def test_embedded_domains_are_third_parties(self, catalog):
        third_party_names = {tp.domain for tp in catalog.third_parties}
        for site in catalog.popular_sites:
            assert set(site.embedded_domains) <= third_party_names

    def test_profile_index_complete(self, catalog):
        index = catalog.profile_by_domain()
        assert len(index) == len(catalog.all_sites) + len(catalog.third_parties)


class TestMachineNames:
    def test_machine_fraction_present(self):
        config = BenignCatalogConfig(
            popular_site_count=10,
            longtail_site_count=400,
            third_party_count=10,
            cdn_provider_count=2,
            shared_hosting_provider_count=2,
        )
        catalog = BenignCatalog(config, IpSpace(), np.random.default_rng(5))
        labels = [p.domain.split(".")[0] for p in catalog.longtail_sites]
        with_digits = sum(1 for label in labels if any(c.isdigit() for c in label))
        # Machine-style names (plus numeric suffixes) appear in the tail.
        assert with_digits > len(labels) * 0.15
