"""Unit tests for the SVM-based malicious-domain classifier wrapper."""

import numpy as np
import pytest

from repro.core.detector import (
    MaliciousDomainClassifier,
    PAPER_GAMMA,
    PAPER_PENALTY,
)
from repro.errors import NotFittedError


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    n = 120
    features = np.vstack(
        [rng.normal(-0.8, 0.5, size=(n, 6)), rng.normal(0.8, 0.5, size=(n, 6))]
    )
    labels = np.array([0] * n + [1] * n)
    return features, labels


class TestPaperDefaults:
    def test_constants_match_paper(self):
        assert PAPER_PENALTY == 0.09
        assert PAPER_GAMMA == 0.06

    def test_default_construction_uses_paper_values(self, data):
        features, labels = data
        model = MaliciousDomainClassifier().fit(features, labels)
        assert model._svm.c == 0.09
        assert model._svm.gamma == 0.06
        assert model.score(features, labels) > 0.9


class TestClassification:
    def test_predict_binary(self, data):
        features, labels = data
        model = MaliciousDomainClassifier().fit(features, labels)
        predictions = model.predict(features)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_threshold_trades_recall_for_precision(self, data):
        features, labels = data
        lenient = MaliciousDomainClassifier(threshold=-0.5).fit(features, labels)
        strict = MaliciousDomainClassifier(threshold=0.5).fit(features, labels)
        assert strict.predict(features).sum() <= lenient.predict(features).sum()

    def test_labels_must_be_binary(self, data):
        features, __ = data
        labels = np.array([1, 2] * (features.shape[0] // 2))
        with pytest.raises(ValueError, match="0.*1"):
            MaliciousDomainClassifier().fit(features, labels)

    def test_not_fitted(self):
        model = MaliciousDomainClassifier()
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 6)))
        with pytest.raises(NotFittedError):
            model.support_vector_count

    def test_decision_scores_align_with_labels(self, data):
        features, labels = data
        model = MaliciousDomainClassifier().fit(features, labels)
        scores = model.decision_function(features)
        assert scores[labels == 1].mean() > scores[labels == 0].mean()

    def test_support_vector_count_positive(self, data):
        features, labels = data
        model = MaliciousDomainClassifier().fit(features, labels)
        assert model.support_vector_count > 0
