"""Unit tests for the host-side projection and infected-group mining."""

import pytest

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.host_projection import (
    find_infected_host_groups,
    project_hosts,
    transpose_bipartite,
)


@pytest.fixture()
def campus_graph():
    """3 infected hosts share C&C domains; 3 clean hosts browse."""
    graph = BipartiteGraph(kind="host")
    for domain in ("cc1.ws", "cc2.ws", "cc3.ws"):
        for host in ("h0", "h1", "h2"):
            graph.add_edge(domain, host)
    for domain in ("news.com", "shop.net", "mail.org"):
        for host in ("h3", "h4", "h5"):
            graph.add_edge(domain, host)
    graph.add_edge("news.com", "h0")  # infected host also browses
    return graph


class TestTranspose:
    def test_adjacency_swapped(self, campus_graph):
        transposed = transpose_bipartite(campus_graph)
        assert transposed.neighbors("h0") == {
            "cc1.ws", "cc2.ws", "cc3.ws", "news.com",
        }
        assert transposed.domain_count == 6  # six hosts as left vertices

    def test_edge_count_preserved(self, campus_graph):
        assert (
            transpose_bipartite(campus_graph).edge_count
            == campus_graph.edge_count
        )


class TestProjectHosts:
    def test_infected_hosts_are_similar(self, campus_graph):
        similarity = project_hosts(campus_graph)
        assert similarity.weight_between("h1", "h2") == pytest.approx(1.0)
        # h0 browses too, so slightly less similar but still high.
        assert similarity.weight_between("h0", "h1") == pytest.approx(3 / 4)

    def test_clean_and_infected_disjoint(self, campus_graph):
        similarity = project_hosts(campus_graph)
        assert similarity.weight_between("h1", "h4") == 0.0

    def test_browsing_bridge(self, campus_graph):
        similarity = project_hosts(campus_graph)
        # h0 and h3 share only news.com.
        assert 0 < similarity.weight_between("h0", "h3") < 0.5


class TestInfectedHostGroups:
    def test_botnet_group_found(self, campus_graph):
        groups = find_infected_host_groups(
            campus_graph, ["cc1.ws", "cc2.ws", "cc3.ws"]
        )
        assert len(groups) == 1
        group = groups[0]
        assert group.hosts == ["h0", "h1", "h2"]
        assert group.shared_malicious_domains == ["cc1.ws", "cc2.ws", "cc3.ws"]
        assert group.cohesion == pytest.approx(1.0)

    def test_min_shared_domains_filters_accidental_contact(self, campus_graph):
        campus_graph.add_edge("cc1.ws", "h5")  # one-off contact
        groups = find_infected_host_groups(
            campus_graph, ["cc1.ws", "cc2.ws", "cc3.ws"], min_shared_domains=2
        )
        assert groups[0].hosts == ["h0", "h1", "h2"]

    def test_unknown_flagged_domains_ignored(self, campus_graph):
        assert find_infected_host_groups(campus_graph, ["ghost.ws"]) == []

    def test_empty_flag_list(self, campus_graph):
        assert find_infected_host_groups(campus_graph, []) == []

    def test_two_separate_botnets(self):
        graph = BipartiteGraph(kind="host")
        for domain in ("a1.ws", "a2.ws"):
            for host in ("h0", "h1"):
                graph.add_edge(domain, host)
        for domain in ("b1.cc", "b2.cc"):
            for host in ("h5", "h6", "h7"):
                graph.add_edge(domain, host)
        groups = find_infected_host_groups(
            graph, ["a1.ws", "a2.ws", "b1.cc", "b2.cc"]
        )
        assert len(groups) == 2
        assert groups[0].hosts == ["h5", "h6", "h7"]  # largest first
        assert groups[1].hosts == ["h0", "h1"]

    def test_on_simulated_trace(self, tiny_trace, processed_detector):
        """Ground-truth infected hosts are recovered on the tiny trace."""
        truth = tiny_trace.ground_truth
        family = next(iter(tiny_trace.families))
        flagged = tiny_trace.families[family]
        groups = find_infected_host_groups(
            processed_detector.host_domain, flagged, min_shared_domains=2
        )
        assert groups, "expected at least one infected host group"
