"""Fault-injection tests: the injector itself, and the degradation
paths it exists to exercise (reload fallback, scorer-failure 500s)."""

import http.client
import json
import threading
import time

import pytest

from repro.errors import ArtifactIntegrityError
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    FaultInjector,
    ModelRegistry,
    ScoringService,
    ServiceConfig,
)


def _request(port, method, path, body=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = None if body is None else json.dumps(body).encode()
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        connection.close()


class TestInjector:
    def test_unarmed_site_is_a_noop(self):
        injector = FaultInjector(MetricsRegistry())
        injector.fire("registry.load")  # no rule: nothing happens

    def test_error_rule_fires_exact_count(self):
        metrics = MetricsRegistry()
        injector = FaultInjector(metrics)
        injector.inject(
            "scorer.score_batch", error=RuntimeError("boom"), times=2
        )
        for __ in range(2):
            with pytest.raises(RuntimeError, match="boom"):
                injector.fire("scorer.score_batch")
        injector.fire("scorer.score_batch")  # disarmed after 2 firings
        assert not injector.armed("scorer.score_batch")
        assert metrics.counter("serve.faults.fired").value == 2

    def test_unlimited_rule_until_cleared(self):
        injector = FaultInjector(MetricsRegistry())
        injector.inject(
            "registry.load", error=ArtifactIntegrityError("torn"), times=None
        )
        for __ in range(5):
            with pytest.raises(ArtifactIntegrityError):
                injector.fire("registry.load")
        injector.clear("registry.load")
        injector.fire("registry.load")

    def test_latency_rule_sleeps(self):
        injector = FaultInjector(MetricsRegistry())
        injector.inject("scorer.score_batch", latency_seconds=0.05)
        started = time.perf_counter()
        injector.fire("scorer.score_batch")
        assert time.perf_counter() - started >= 0.045

    def test_each_firing_raises_a_fresh_exception(self):
        injector = FaultInjector(MetricsRegistry())
        template = RuntimeError("shared")
        injector.inject("scorer.score_batch", error=template, times=2)
        caught = []
        for __ in range(2):
            try:
                injector.fire("scorer.score_batch")
            except RuntimeError as exc:
                caught.append(exc)
        assert caught[0] is not caught[1]
        assert caught[0] is not template

    def test_validation(self):
        injector = FaultInjector(MetricsRegistry())
        with pytest.raises(ValueError, match="unknown fault site"):
            injector.inject("nope", error=RuntimeError())
        with pytest.raises(ValueError, match="times"):
            injector.inject("registry.load", error=RuntimeError(), times=0)
        with pytest.raises(ValueError, match="latency_seconds"):
            injector.inject("registry.load", latency_seconds=-1.0)
        with pytest.raises(ValueError, match="error, a latency"):
            injector.inject("registry.load")


@pytest.fixture()
def faulty_service(make_bundle, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    registry.publish(make_bundle(seed=1))
    metrics = MetricsRegistry()
    config = ServiceConfig(
        port=0,
        request_timeout_seconds=5.0,
        reload_retries=2,
        reload_backoff_seconds=0.0,  # keep test wall time flat
    )
    service = ScoringService(registry, config, metrics=metrics)
    __, port = service.start()
    yield service, registry, port, metrics, make_bundle
    service.stop()


class TestReloadDegradation:
    def test_torn_bundle_reload_keeps_last_good_model(self, faulty_service):
        """With every load attempt failing, the previous version keeps
        serving: /readyz stays 200, the failure is a structured 409."""
        service, registry, port, metrics, make_bundle = faulty_service
        registry.publish(make_bundle(seed=2))
        service.faults.inject(
            "registry.load",
            error=ArtifactIntegrityError("torn bundle"),
            times=None,
        )
        status, body = _request(port, "POST", "/admin/reload", {})
        assert status == 409
        assert "torn bundle" in body["error"]
        assert body["active_version"] == 1
        # 1 initial attempt + 2 retries, all counted.
        assert metrics.counter("serve.reload_failures").value == 3
        assert service.active_version == 1
        assert service.ready
        assert _request(port, "GET", "/readyz") == (
            200, {"ready": True, "model_version": 1}
        )
        # Scoring still answers on the last-good model.
        domain = registry.load(1).domains[0]
        status, body = _request(
            port, "POST", "/v1/score", {"domain": domain}
        )
        assert status == 200
        assert body["model_version"] == 1

    def test_transient_fault_retried_to_success(self, faulty_service):
        """A fault that clears within the retry budget never surfaces."""
        service, registry, port, metrics, make_bundle = faulty_service
        registry.publish(make_bundle(seed=2))
        service.faults.inject(
            "registry.load",
            error=ArtifactIntegrityError("transient"),
            times=2,
        )
        status, body = _request(port, "POST", "/admin/reload", {})
        assert status == 200
        assert body["model_version"] == 2
        assert metrics.counter("serve.reload_failures").value == 2

    def test_reload_backoff_applied_between_attempts(
        self, make_bundle, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=1))
        service = ScoringService(
            registry,
            ServiceConfig(
                port=0, reload_retries=2, reload_backoff_seconds=0.03
            ),
            metrics=MetricsRegistry(),
        )
        service.faults.inject(
            "registry.load",
            error=ArtifactIntegrityError("torn"),
            times=None,
        )
        started = time.perf_counter()
        with pytest.raises(ArtifactIntegrityError):
            service.reload()
        # Backoff 0.03 + 0.06 between the three attempts.
        assert time.perf_counter() - started >= 0.08


class TestScorerDegradation:
    def test_scorer_fault_mid_burst_is_a_structured_500(self, faulty_service):
        """One poisoned request answers 500 JSON; neighbors are fine."""
        service, registry, port, metrics, __ = faulty_service
        domains = registry.load(1).domains
        service.faults.inject(
            "scorer.score_batch", error=RuntimeError("cache poisoned"),
            times=1,
        )
        statuses = []
        bodies = []
        lock = threading.Lock()

        def client(domain):
            status, body = _request(
                port, "POST", "/v1/score", {"domain": domain}
            )
            with lock:
                statuses.append(status)
                bodies.append(body)

        threads = [
            threading.Thread(target=client, args=(domains[i],))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert statuses.count(500) == 1
        assert statuses.count(200) == 3
        failed = bodies[statuses.index(500)]
        assert "scoring failed" in failed["error"]
        assert "cache poisoned" in failed["error"]
        assert metrics.counter("serve.scorer_failures").value == 1
        assert metrics.counter("serve.errors").value >= 1
        # The service is not wedged: the next request scores normally.
        status, __ = _request(
            port, "POST", "/v1/score", {"domain": domains[0]}
        )
        assert status == 200

    def test_injected_latency_holds_admission_slots(
        self, make_bundle, tmp_path
    ):
        """Latency faults make overload observable: with the single slot
        pinned and the queue full, the next request is shed with 429."""
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=1))
        metrics = MetricsRegistry()
        service = ScoringService(
            registry,
            ServiceConfig(
                port=0, max_inflight=1, queue_depth=0,
                deadline_seconds=5.0, request_timeout_seconds=10.0,
            ),
            metrics=metrics,
        )
        __, port = service.start()
        try:
            service.faults.inject(
                "scorer.score_batch", latency_seconds=0.5, times=None
            )
            results = {}

            def holder():
                results["holder"] = _request(
                    port, "POST", "/v1/score", {"domain": "h.example"}
                )

            thread = threading.Thread(target=holder)
            thread.start()
            deadline = time.monotonic() + 2.0
            while (
                metrics.gauge("serve.inflight").value < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            status, body = _request(
                port, "POST", "/v1/score", {"domain": "s.example"}
            )
            thread.join()
            service.faults.clear()
            assert status == 429
            assert "retry_after_seconds" in body
            assert results["holder"][0] == 200
            assert metrics.counter("serve.shed").value == 1
        finally:
            service.stop()
