"""Unit tests for bipartite graph construction."""

import pytest

from repro.dns.dhcp import DhcpLog, HostIdentityResolver
from repro.dns.types import DhcpLease, DnsQuery, DnsResponse, QueryType, ResourceRecord
from repro.errors import GraphConstructionError
from repro.graphs.bipartite import (
    BipartiteGraph,
    build_domain_ip_graph,
    build_domain_time_graph,
    build_host_domain_graph,
)


def query(t, ip, qname):
    return DnsQuery(t, 1, ip, qname)


def response(t, ip, qname, answers=(), nxdomain=False):
    return DnsResponse(
        t, 1, ip, qname,
        answers=tuple(ResourceRecord(QueryType.A, a, 300) for a in answers),
        nxdomain=nxdomain,
    )


class TestHostDomainGraph:
    def test_aggregates_to_e2ld(self):
        graph = build_host_domain_graph(
            [
                query(1.0, "10.0.0.1", "www.example.com"),
                query(2.0, "10.0.0.1", "mail.example.com"),
                query(3.0, "10.0.0.2", "example.com"),
            ]
        )
        assert graph.domains == ["example.com"]
        assert graph.neighbors("example.com") == {"10.0.0.1", "10.0.0.2"}

    def test_invalid_names_skipped(self):
        graph = build_host_domain_graph(
            [
                query(1.0, "10.0.0.1", "bad domain!"),
                query(2.0, "10.0.0.1", "com"),  # bare public suffix
                query(3.0, "10.0.0.1", "ok.example.com"),
            ]
        )
        assert graph.domains == ["example.com"]

    def test_dhcp_identity_merges_ips(self):
        dhcp = DhcpLog(
            [
                DhcpLease("aa:01", "10.0.0.1", 0.0, 100.0),
                DhcpLease("aa:01", "10.0.0.2", 100.0, 200.0),
            ]
        )
        identity = HostIdentityResolver(dhcp)
        graph = build_host_domain_graph(
            [
                query(50.0, "10.0.0.1", "example.com"),
                query(150.0, "10.0.0.2", "example.com"),
            ],
            identity,
        )
        # Same physical device: one host vertex despite two IPs.
        assert graph.neighbors("example.com") == {"aa:01"}

    def test_without_dhcp_uses_ips(self):
        graph = build_host_domain_graph(
            [
                query(50.0, "10.0.0.1", "example.com"),
                query(150.0, "10.0.0.2", "example.com"),
            ]
        )
        assert graph.degree("example.com") == 2


class TestDomainIpGraph:
    def test_collects_answer_ips(self):
        graph = build_domain_ip_graph(
            [
                response(1.0, "10.0.0.1", "www.example.com", ["93.0.0.1"]),
                response(2.0, "10.0.0.2", "example.com", ["93.0.0.2"]),
            ]
        )
        assert graph.neighbors("example.com") == {"93.0.0.1", "93.0.0.2"}

    def test_nxdomain_ignored(self):
        graph = build_domain_ip_graph(
            [response(1.0, "10.0.0.1", "gone.example.com", nxdomain=True)]
        )
        assert graph.domain_count == 0


class TestDomainTimeGraph:
    def test_minute_windows(self):
        graph = build_domain_time_graph(
            [
                query(10.0, "h", "example.com"),   # minute 0
                query(59.0, "h", "example.com"),   # minute 0
                query(61.0, "h", "example.com"),   # minute 1
                query(3600.0, "h", "example.com"),  # minute 60
            ]
        )
        assert graph.neighbors("example.com") == {0, 1, 60}

    def test_custom_window(self):
        graph = build_domain_time_graph(
            [query(10.0, "h", "example.com"), query(500.0, "h", "example.com")],
            window_seconds=600.0,
        )
        assert graph.neighbors("example.com") == {0}

    def test_invalid_window_rejected(self):
        with pytest.raises(GraphConstructionError):
            build_domain_time_graph([], window_seconds=0.0)


class TestBipartiteGraphOps:
    @pytest.fixture()
    def graph(self):
        g = BipartiteGraph(kind="host")
        g.add_edge("a.com", "h1")
        g.add_edge("a.com", "h2")
        g.add_edge("b.com", "h2")
        g.add_edge("c.com", "h3")
        return g

    def test_counts(self, graph):
        assert graph.domain_count == 3
        assert graph.edge_count == 4
        assert graph.right_vertices == {"h1", "h2", "h3"}

    def test_restrict_to(self, graph):
        restricted = graph.restrict_to(["a.com", "c.com"])
        assert set(restricted.domains) == {"a.com", "c.com"}
        assert restricted.edge_count == 3
        # Original untouched.
        assert graph.domain_count == 3

    def test_incidence_matrix(self, graph):
        matrix, domains, right = graph.incidence_matrix()
        assert matrix.shape == (3, 3)
        assert matrix.sum() == 4
        row = domains.index("a.com")
        assert matrix[row].sum() == 2

    def test_incidence_with_explicit_order(self, graph):
        order = ["c.com", "a.com", "missing.com"]
        matrix, domains, __ = graph.incidence_matrix(order)
        assert domains == order
        assert matrix[2].sum() == 0  # missing domain -> zero row

    def test_neighbors_returns_copy(self, graph):
        neighbors = graph.neighbors("a.com")
        neighbors.add("h999")
        assert "h999" not in graph.neighbors("a.com")
