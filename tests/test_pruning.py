"""Unit tests for the pruning rules (paper section 4.1)."""

import pytest

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.pruning import PruningRules, prune_graphs


def make_graphs():
    """10 hosts; one hub domain, one single-host domain, two normal."""
    host_domain = BipartiteGraph(kind="host")
    for i in range(10):
        host_domain.add_edge("hub.com", f"h{i}")  # queried by all hosts
    host_domain.add_edge("lonely.com", "h0")  # single host
    for i in range(3):
        host_domain.add_edge("normal-a.com", f"h{i}")
        host_domain.add_edge("normal-b.com", f"h{i+3}")

    domain_ip = BipartiteGraph(kind="ip")
    for domain in ("hub.com", "lonely.com", "normal-a.com", "normal-b.com"):
        domain_ip.add_edge(domain, f"ip-of-{domain}")
    # A domain only seen in responses (no query edge).
    domain_ip.add_edge("response-only.com", "93.0.0.9")

    domain_time = BipartiteGraph(kind="time")
    for domain in ("hub.com", "lonely.com", "normal-a.com", "normal-b.com"):
        domain_time.add_edge(domain, 0)
    return host_domain, domain_ip, domain_time


class TestPruneGraphs:
    def test_rule1_drops_popular(self):
        hd, di, dt = make_graphs()
        __, __, __, report = prune_graphs(hd, di, dt)
        assert "hub.com" in report.dropped_popular

    def test_rule2_drops_single_host(self):
        hd, di, dt = make_graphs()
        __, __, __, report = prune_graphs(hd, di, dt)
        assert "lonely.com" in report.dropped_single_host

    def test_survivors(self):
        hd, di, dt = make_graphs()
        __, __, __, report = prune_graphs(hd, di, dt)
        assert report.surviving_domains == {"normal-a.com", "normal-b.com"}

    def test_pruning_applied_to_all_graphs(self):
        hd, di, dt = make_graphs()
        pruned_hd, pruned_di, pruned_dt, report = prune_graphs(hd, di, dt)
        for graph in (pruned_hd, pruned_di, pruned_dt):
            assert set(graph.domains) <= report.surviving_domains

    def test_response_only_domains_dropped(self):
        hd, di, dt = make_graphs()
        __, pruned_di, __, __ = prune_graphs(hd, di, dt)
        assert "response-only.com" not in pruned_di.domains

    def test_custom_thresholds(self):
        hd, di, dt = make_graphs()
        rules = PruningRules(popular_host_fraction=1.0, min_hosts=1)
        __, __, __, report = prune_graphs(hd, di, dt, rules)
        # Nothing dropped: hub needs >100% of hosts, min_hosts=1 keeps all.
        assert report.domains_after == 4

    def test_report_summary(self):
        hd, di, dt = make_graphs()
        __, __, __, report = prune_graphs(hd, di, dt)
        summary = report.summary()
        assert "rule1" in summary and "rule2" in summary

    def test_originals_not_mutated(self):
        hd, di, dt = make_graphs()
        prune_graphs(hd, di, dt)
        assert "hub.com" in hd.domains


class TestPruningBoundaries:
    """Exact-threshold behavior of rules 1-2 (the cutoffs' open/closed
    sides), plus consistency for domains absent from the host graph."""

    @staticmethod
    def _host_graph(host_counts):
        graph = BipartiteGraph(kind="host")
        for domain, count in host_counts.items():
            for i in range(count):
                graph.add_edge(domain, f"h{i}")
        return graph

    @staticmethod
    def _side_graphs(domains):
        domain_ip = BipartiteGraph(kind="ip")
        domain_time = BipartiteGraph(kind="time")
        for domain in domains:
            domain_ip.add_edge(domain, f"ip-{domain}")
            domain_time.add_edge(domain, 0)
        return domain_ip, domain_time

    def test_rule1_cutoff_is_strictly_greater(self):
        # 10 hosts, fraction 0.5 -> cutoff 5.0. A domain seen by exactly
        # 5 hosts sits ON the cutoff and must survive (strict >); 6
        # hosts is past it and must be dropped.
        hd = self._host_graph({"at-cutoff.com": 5, "past-cutoff.com": 6,
                               "filler.com": 10})
        # filler.com brings total hosts to 10 and is itself dropped.
        di, dt = self._side_graphs(["at-cutoff.com", "past-cutoff.com"])
        rules = PruningRules(popular_host_fraction=0.5, min_hosts=2)
        __, __, __, report = prune_graphs(hd, di, dt, rules)
        assert report.total_hosts == 10
        assert "at-cutoff.com" in report.surviving_domains
        assert "past-cutoff.com" in report.dropped_popular
        assert "filler.com" in report.dropped_popular

    def test_rule2_min_hosts_boundary_is_inclusive(self):
        # min_hosts=2: exactly 2 hosts survives (< is strict), 1 drops.
        hd = self._host_graph({"pair.com": 2, "solo.com": 1,
                               "wide.com": 4})
        di, dt = self._side_graphs(["pair.com", "solo.com", "wide.com"])
        rules = PruningRules(popular_host_fraction=0.9, min_hosts=2)
        __, __, __, report = prune_graphs(hd, di, dt, rules)
        assert "pair.com" in report.surviving_domains
        assert "solo.com" in report.dropped_single_host
        assert "solo.com" not in report.dropped_popular

    def test_ip_and_time_only_domains_dropped_consistently(self):
        hd = self._host_graph({"seen.com": 3, "other.com": 2})
        di, dt = self._side_graphs(["seen.com"])
        di.add_edge("ip-only.com", "198.51.100.7")
        dt.add_edge("time-only.com", 42)
        pruned_hd, pruned_di, pruned_dt, report = prune_graphs(hd, di, dt)
        assert "ip-only.com" not in pruned_di.domains
        assert "time-only.com" not in pruned_dt.domains
        # ...and they are not counted as rule-1/rule-2 drops either:
        # they never appeared in the host graph at all.
        assert "ip-only.com" not in report.dropped_popular
        assert "ip-only.com" not in report.dropped_single_host
        assert set(pruned_di.domains) <= report.surviving_domains
        assert set(pruned_dt.domains) <= report.surviving_domains

    def test_boundary_report_counts_are_exact(self):
        hd = self._host_graph({"a.com": 5, "b.com": 6, "c.com": 2,
                               "d.com": 1, "filler.com": 10})
        di, dt = self._side_graphs(["a.com", "b.com", "c.com", "d.com"])
        rules = PruningRules(popular_host_fraction=0.5, min_hosts=2)
        __, __, __, report = prune_graphs(hd, di, dt, rules)
        assert report.domains_before == 5
        assert sorted(report.dropped_popular) == ["b.com", "filler.com"]
        assert report.dropped_single_host == ["d.com"]
        assert report.surviving_domains == {"a.com", "c.com"}
        assert report.domains_after == 2


class TestPruningRulesValidation:
    def test_fraction_range(self):
        with pytest.raises(ValueError):
            PruningRules(popular_host_fraction=0.0).validate()
        with pytest.raises(ValueError):
            PruningRules(popular_host_fraction=1.5).validate()

    def test_min_hosts(self):
        with pytest.raises(ValueError):
            PruningRules(min_hosts=0).validate()

    def test_paper_defaults(self):
        rules = PruningRules()
        assert rules.popular_host_fraction == 0.5
        assert rules.min_hosts == 2
