"""Unit tests for the pruning rules (paper section 4.1)."""

import pytest

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.pruning import PruningRules, prune_graphs


def make_graphs():
    """10 hosts; one hub domain, one single-host domain, two normal."""
    host_domain = BipartiteGraph(kind="host")
    for i in range(10):
        host_domain.add_edge("hub.com", f"h{i}")  # queried by all hosts
    host_domain.add_edge("lonely.com", "h0")  # single host
    for i in range(3):
        host_domain.add_edge("normal-a.com", f"h{i}")
        host_domain.add_edge("normal-b.com", f"h{i+3}")

    domain_ip = BipartiteGraph(kind="ip")
    for domain in ("hub.com", "lonely.com", "normal-a.com", "normal-b.com"):
        domain_ip.add_edge(domain, f"ip-of-{domain}")
    # A domain only seen in responses (no query edge).
    domain_ip.add_edge("response-only.com", "93.0.0.9")

    domain_time = BipartiteGraph(kind="time")
    for domain in ("hub.com", "lonely.com", "normal-a.com", "normal-b.com"):
        domain_time.add_edge(domain, 0)
    return host_domain, domain_ip, domain_time


class TestPruneGraphs:
    def test_rule1_drops_popular(self):
        hd, di, dt = make_graphs()
        __, __, __, report = prune_graphs(hd, di, dt)
        assert "hub.com" in report.dropped_popular

    def test_rule2_drops_single_host(self):
        hd, di, dt = make_graphs()
        __, __, __, report = prune_graphs(hd, di, dt)
        assert "lonely.com" in report.dropped_single_host

    def test_survivors(self):
        hd, di, dt = make_graphs()
        __, __, __, report = prune_graphs(hd, di, dt)
        assert report.surviving_domains == {"normal-a.com", "normal-b.com"}

    def test_pruning_applied_to_all_graphs(self):
        hd, di, dt = make_graphs()
        pruned_hd, pruned_di, pruned_dt, report = prune_graphs(hd, di, dt)
        for graph in (pruned_hd, pruned_di, pruned_dt):
            assert set(graph.domains) <= report.surviving_domains

    def test_response_only_domains_dropped(self):
        hd, di, dt = make_graphs()
        __, pruned_di, __, __ = prune_graphs(hd, di, dt)
        assert "response-only.com" not in pruned_di.domains

    def test_custom_thresholds(self):
        hd, di, dt = make_graphs()
        rules = PruningRules(popular_host_fraction=1.0, min_hosts=1)
        __, __, __, report = prune_graphs(hd, di, dt, rules)
        # Nothing dropped: hub needs >100% of hosts, min_hosts=1 keeps all.
        assert report.domains_after == 4

    def test_report_summary(self):
        hd, di, dt = make_graphs()
        __, __, __, report = prune_graphs(hd, di, dt)
        summary = report.summary()
        assert "rule1" in summary and "rule2" in summary

    def test_originals_not_mutated(self):
        hd, di, dt = make_graphs()
        prune_graphs(hd, di, dt)
        assert "hub.com" in hd.domains


class TestPruningRulesValidation:
    def test_fraction_range(self):
        with pytest.raises(ValueError):
            PruningRules(popular_host_fraction=0.0).validate()
        with pytest.raises(ValueError):
            PruningRules(popular_host_fraction=1.5).validate()

    def test_min_hosts(self):
        with pytest.raises(ValueError):
            PruningRules(min_hosts=0).validate()

    def test_paper_defaults(self):
        rules = PruningRules()
        assert rules.popular_host_fraction == 0.5
        assert rules.min_hosts == 2
