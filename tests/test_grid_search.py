"""Unit tests for the grid-search utility."""

import numpy as np
import pytest

from repro.ml.grid_search import grid_search
from repro.ml.svm import SupportVectorClassifier


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    n = 120
    features = np.vstack(
        [rng.normal(-1, 0.8, size=(n, 2)), rng.normal(1, 0.8, size=(n, 2))]
    )
    labels = np.array([0] * n + [1] * n)
    return features, labels


class TestGridSearch:
    def test_evaluates_every_cell(self, data):
        features, labels = data
        result = grid_search(
            features,
            labels,
            lambda c, gamma: SupportVectorClassifier(c=c, gamma=gamma),
            {"c": [0.1, 1.0], "gamma": [0.1, 1.0, 5.0]},
            n_splits=3,
        )
        assert len(result.evaluations) == 6

    def test_best_cell_is_maximal(self, data):
        features, labels = data
        result = grid_search(
            features,
            labels,
            lambda c, gamma: SupportVectorClassifier(c=c, gamma=gamma),
            {"c": [0.01, 1.0], "gamma": [0.5]},
            n_splits=3,
        )
        scores = [score for __, score in result.evaluations]
        assert result.best_score == max(scores)
        assert result.best_params in [p for p, __ in result.evaluations]

    def test_reasonable_params_beat_degenerate(self, data):
        features, labels = data
        # gamma so large the kernel degenerates to the identity matrix:
        # the model memorizes training points and transfers nothing.
        result = grid_search(
            features,
            labels,
            lambda gamma: SupportVectorClassifier(c=1.0, gamma=gamma),
            {"gamma": [0.5, 50_000.0]},
            n_splits=3,
        )
        assert result.best_params["gamma"] == 0.5
        by_gamma = {p["gamma"]: s for p, s in result.evaluations}
        assert by_gamma[0.5] > by_gamma[50_000.0] + 0.2

    def test_top_sorted(self, data):
        features, labels = data
        result = grid_search(
            features,
            labels,
            lambda c: SupportVectorClassifier(c=c, gamma=0.5),
            {"c": [0.01, 0.1, 1.0]},
            n_splits=3,
        )
        top = result.top(3)
        values = [score for __, score in top]
        assert values == sorted(values, reverse=True)

    def test_empty_grid_rejected(self, data):
        features, labels = data
        with pytest.raises(ValueError):
            grid_search(features, labels, SupportVectorClassifier, {})
