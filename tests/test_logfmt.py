"""Unit tests for the DNS trace log format (round-trips and errors)."""

import io

import pytest

from repro.dns.logfmt import (
    DnsTraceReader,
    DnsTraceWriter,
    format_query,
    format_response,
)
from repro.dns.types import DnsQuery, DnsResponse, QueryType, ResourceRecord
from repro.errors import DnsLogFormatError


@pytest.fixture()
def sample_records():
    return [
        DnsQuery(1.25, 100, "10.20.0.5", "www.example.com", QueryType.A),
        DnsResponse(
            1.30,
            100,
            "10.20.0.5",
            "www.example.com",
            answers=(
                ResourceRecord(QueryType.A, "93.0.0.1", 300),
                ResourceRecord(QueryType.A, "93.0.0.2", 300),
            ),
        ),
        DnsQuery(2.0, 101, "10.20.0.6", "missing.example.net", QueryType.AAAA),
        DnsResponse(2.1, 101, "10.20.0.6", "missing.example.net", nxdomain=True),
    ]


class TestRoundTrip:
    def test_memory_round_trip(self, sample_records):
        buffer = io.StringIO()
        writer = DnsTraceWriter(buffer)
        assert writer.write_all(sample_records) == 4
        buffer.seek(0)
        parsed = list(DnsTraceReader(buffer))
        assert parsed == sample_records

    def test_file_round_trip(self, sample_records, tmp_path):
        path = tmp_path / "dns.log"
        with DnsTraceWriter(path) as writer:
            writer.write_all(sample_records)
        assert list(DnsTraceReader(path)) == sample_records

    def test_queries_and_responses_filters(self, sample_records, tmp_path):
        path = tmp_path / "dns.log"
        with DnsTraceWriter(path) as writer:
            writer.write_all(sample_records)
        reader = DnsTraceReader(path)
        assert len(list(reader.queries())) == 2
        assert len(list(reader.responses())) == 2

    def test_comments_and_blank_lines_skipped(self, sample_records):
        text = (
            "# a comment\n\n"
            + format_query(sample_records[0])
            + "\n\n# another\n"
            + format_response(sample_records[1])
            + "\n"
        )
        parsed = list(DnsTraceReader(io.StringIO(text)))
        assert parsed == sample_records[:2]


class TestFormat:
    def test_query_line_shape(self, sample_records):
        line = format_query(sample_records[0])
        assert line.split("\t") == [
            "Q", "1.250", "100", "10.20.0.5", "www.example.com", "A",
        ]

    def test_nxdomain_line_shape(self, sample_records):
        line = format_response(sample_records[3])
        assert line.endswith("NXDOMAIN")

    def test_writer_rejects_foreign_types(self):
        writer = DnsTraceWriter(io.StringIO())
        with pytest.raises(TypeError):
            writer.write("not a record")  # type: ignore[arg-type]


class TestRecordIterator:
    def test_context_manager_closes_owned_file(self, sample_records, tmp_path):
        path = tmp_path / "dns.log"
        with DnsTraceWriter(path) as writer:
            writer.write_all(sample_records)
        with DnsTraceReader(path).records() as records:
            first = next(records)
            assert first == sample_records[0]
            assert not records.closed
        assert records.closed

    def test_abandoned_pass_closes_on_exit(self, sample_records, tmp_path):
        # The whole point of the context manager: abandoning iteration
        # midway must still release the handle, not wait for GC.
        path = tmp_path / "dns.log"
        with DnsTraceWriter(path) as writer:
            writer.write_all(sample_records * 100)
        iterator = DnsTraceReader(path).records()
        next(iterator)
        iterator.close()
        assert iterator.closed
        iterator.close()  # idempotent
        assert list(iterator) == []

    def test_external_stream_left_open(self, sample_records):
        buffer = io.StringIO()
        DnsTraceWriter(buffer).write_all(sample_records)
        buffer.seek(0)
        with DnsTraceReader(buffer).records() as records:
            list(records)
        assert not buffer.closed

    def test_parse_error_closes_handle(self, tmp_path):
        path = tmp_path / "dns.log"
        path.write_text("Q\tbroken\n")
        iterator = DnsTraceReader(path).records()
        with pytest.raises(DnsLogFormatError):
            next(iterator)
        assert iterator.closed

    def test_skip_records_without_parsing(self, sample_records):
        # A malformed line inside the skipped region must NOT raise —
        # skipping counts lines, it never parses them.
        text = (
            "# header\n"
            + format_query(sample_records[0])
            + "\nQ\tbroken-but-skipped\n"
            + format_query(sample_records[2])
            + "\n"
        )
        with DnsTraceReader(io.StringIO(text)).records() as records:
            assert records.skip_records(2) == 2
            assert next(records) == sample_records[2]

    def test_skip_records_reports_shortfall(self, sample_records):
        buffer = io.StringIO()
        DnsTraceWriter(buffer).write_all(sample_records)
        buffer.seek(0)
        with DnsTraceReader(buffer).records() as records:
            assert records.skip_records(99) == len(sample_records)
            assert list(records) == []


class TestParseErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "Q\t1.0\t5\t10.0.0.1\texample.com",  # missing field
            "Q\t1.0\txx\t10.0.0.1\texample.com\tA",  # bad txid
            "Q\t1.0\t5\t10.0.0.1\texample.com\tBOGUS",  # bad qtype
            "R\t1.0\t5\t10.0.0.1\texample.com\tA:1.2.3.4",  # bad answer
            "R\t1.0\t5\t10.0.0.1\texample.com\tA:1.2.3.4:-1",  # bad ttl
            "X\t1.0\t5\t10.0.0.1\texample.com\tA",  # unknown kind
        ],
    )
    def test_malformed_lines_raise_with_line_number(self, line):
        with pytest.raises(DnsLogFormatError) as excinfo:
            list(DnsTraceReader(io.StringIO(line + "\n")))
        assert excinfo.value.line_number == 1

    def test_error_reports_correct_line_number(self):
        good = "Q\t1.0\t5\t10.0.0.1\texample.com\tA\n"
        bad = "Q\tbroken\n"
        with pytest.raises(DnsLogFormatError) as excinfo:
            list(DnsTraceReader(io.StringIO(good + good + bad)))
        assert excinfo.value.line_number == 3
