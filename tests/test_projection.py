"""Unit tests for one-mode projection with Jaccard weights."""

import pytest

from repro.errors import GraphConstructionError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.projection import project_to_similarity


@pytest.fixture()
def graph():
    g = BipartiteGraph(kind="host")
    g.add_edge("a.com", "h1")
    g.add_edge("a.com", "h2")
    g.add_edge("b.com", "h1")
    g.add_edge("b.com", "h2")  # identical to a.com -> Jaccard 1
    g.add_edge("c.com", "h2")
    g.add_edge("c.com", "h3")  # overlaps a/b on h2 -> Jaccard 1/3
    g.add_edge("d.com", "h9")  # disjoint
    return g


class TestJaccardWeights:
    def test_identical_neighborhoods(self, graph):
        sim = project_to_similarity(graph)
        assert sim.weight_between("a.com", "b.com") == pytest.approx(1.0)

    def test_partial_overlap(self, graph):
        sim = project_to_similarity(graph)
        assert sim.weight_between("a.com", "c.com") == pytest.approx(1 / 3)

    def test_disjoint_no_edge(self, graph):
        sim = project_to_similarity(graph)
        assert sim.weight_between("a.com", "d.com") == 0.0

    def test_symmetry(self, graph):
        sim = project_to_similarity(graph)
        assert sim.weight_between("c.com", "a.com") == sim.weight_between(
            "a.com", "c.com"
        )

    def test_no_self_loops(self, graph):
        sim = project_to_similarity(graph)
        assert all(r != c for r, c in zip(sim.rows, sim.cols))
        assert sim.weight_between("a.com", "a.com") == 0.0

    def test_manual_jaccard_verification(self, rng):
        """Brute-force comparison on a random bipartite graph."""
        graph = BipartiteGraph(kind="host")
        domains = [f"d{i}.com" for i in range(12)]
        neighborhoods = {}
        for domain in domains:
            size = int(rng.integers(1, 6))
            hood = set(int(h) for h in rng.choice(15, size=size, replace=False))
            neighborhoods[domain] = hood
            for h in hood:
                graph.add_edge(domain, h)
        sim = project_to_similarity(graph)
        for i, di in enumerate(domains):
            for dj in domains[i + 1 :]:
                a, b = neighborhoods[di], neighborhoods[dj]
                expected = len(a & b) / len(a | b) if a & b else 0.0
                assert sim.weight_between(di, dj) == pytest.approx(expected)


class TestProjectionMechanics:
    def test_min_similarity_threshold(self, graph):
        sim = project_to_similarity(graph, min_similarity=0.5)
        assert sim.weight_between("a.com", "b.com") == 1.0
        assert sim.weight_between("a.com", "c.com") == 0.0  # below 0.5

    def test_negative_threshold_rejected(self, graph):
        with pytest.raises(GraphConstructionError):
            project_to_similarity(graph, min_similarity=-1.0)

    def test_explicit_domain_order(self, graph):
        order = ["d.com", "c.com", "b.com", "a.com", "ghost.com"]
        sim = project_to_similarity(graph, domain_order=order)
        assert sim.domains == order
        assert sim.weight_between("a.com", "b.com") == 1.0
        assert sim.weight_between("ghost.com", "a.com") == 0.0

    def test_block_size_does_not_change_result(self, graph):
        sim_small = project_to_similarity(graph, block_size=1)
        sim_large = project_to_similarity(graph, block_size=1024)
        assert sim_small.edge_count == sim_large.edge_count
        for a, b, w in sim_small.iter_edges():
            assert sim_large.weight_between(a, b) == pytest.approx(w)

    def test_empty_graph(self):
        sim = project_to_similarity(BipartiteGraph(kind="ip"))
        assert sim.node_count == 0
        assert sim.edge_count == 0


class TestSimilarityGraphApi:
    def test_neighbors_of(self, graph):
        sim = project_to_similarity(graph)
        neighbors = dict(sim.neighbors_of("a.com"))
        assert neighbors["b.com"] == pytest.approx(1.0)
        assert neighbors["c.com"] == pytest.approx(1 / 3)
        assert "d.com" not in neighbors

    def test_degree_array(self, graph):
        sim = project_to_similarity(graph)
        degrees = sim.degree_array()
        index = sim.domain_index["d.com"]
        assert degrees[index] == 0.0
        index_a = sim.domain_index["a.com"]
        assert degrees[index_a] == pytest.approx(1.0 + 1 / 3)

    def test_to_networkx(self, graph):
        nx_graph = project_to_similarity(graph).to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph["a.com"]["b.com"]["weight"] == pytest.approx(1.0)

    def test_iter_edges_unique_pairs(self, graph):
        sim = project_to_similarity(graph)
        pairs = [(a, b) for a, b, __ in sim.iter_edges()]
        assert len(pairs) == len(set(pairs))
