"""Shared fixtures.

Expensive artifacts (the tiny simulated trace and the processed detector)
are session-scoped: many test modules read them, none mutates them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    IntelligenceFeed,
    MaliciousDomainDetector,
    PipelineConfig,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
)
from repro.embedding.line import LineConfig


@pytest.fixture(scope="session")
def tiny_trace():
    """A small but fully structured simulated campus trace."""
    return TraceGenerator(SimulationConfig.tiny(seed=7)).generate()


@pytest.fixture(scope="session")
def fast_line_config():
    """A LINE config small enough for test-time training."""
    return LineConfig(dimension=16, total_samples=120_000, seed=5)


@pytest.fixture(scope="session")
def processed_detector(tiny_trace, fast_line_config):
    """A detector with graphs, projections and embeddings built."""
    detector = MaliciousDomainDetector(
        PipelineConfig(embedding=fast_line_config)
    )
    detector.process(tiny_trace.queries, tiny_trace.responses, tiny_trace.dhcp)
    return detector


@pytest.fixture(scope="session")
def labeled_dataset(tiny_trace, processed_detector):
    """Labels assembled with the paper's validation rule."""
    feed = IntelligenceFeed(tiny_trace.ground_truth)
    virustotal = SimulatedVirusTotal(tiny_trace.ground_truth)
    return build_labeled_dataset(feed, virustotal, processed_detector.domains)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
