"""Shared fixtures.

Expensive artifacts (the tiny simulated trace and the processed detector)
are session-scoped: many test modules read them, none mutates them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    IntelligenceFeed,
    MaliciousDomainDetector,
    PipelineConfig,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
)
from repro.embedding.line import LineConfig


@pytest.fixture(scope="session")
def tiny_trace():
    """A small but fully structured simulated campus trace."""
    return TraceGenerator(SimulationConfig.tiny(seed=7)).generate()


@pytest.fixture(scope="session")
def fast_line_config():
    """A LINE config small enough for test-time training."""
    return LineConfig(dimension=16, total_samples=120_000, seed=5)


@pytest.fixture(scope="session")
def processed_detector(tiny_trace, fast_line_config):
    """A detector with graphs, projections and embeddings built."""
    detector = MaliciousDomainDetector(
        PipelineConfig(embedding=fast_line_config)
    )
    detector.process(tiny_trace.queries, tiny_trace.responses, tiny_trace.dhcp)
    return detector


@pytest.fixture(scope="session")
def labeled_dataset(tiny_trace, processed_detector):
    """Labels assembled with the paper's validation rule."""
    feed = IntelligenceFeed(tiny_trace.ground_truth)
    virustotal = SimulatedVirusTotal(tiny_trace.ground_truth)
    return build_labeled_dataset(feed, virustotal, processed_detector.domains)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def make_bundle():
    """Factory for small synthetic model bundles (fast to fit).

    Features carry a per-class offset so the SVM has real signal and
    threshold calibration produces a sensible cut; the seed goes into
    the config fingerprint so tests can tell bundles apart after a
    round trip through the registry.
    """
    from repro.core.detector import MaliciousDomainClassifier
    from repro.ml.preprocessing import StandardScaler
    from repro.serve import ModelBundle

    def _make(seed=0, count=24, dimension=6, scaled=False, metrics=None):
        generator = np.random.default_rng(seed)
        labels = np.arange(count) % 2
        features = (
            generator.normal(size=(count, dimension)) + labels[:, None] * 2.0
        )
        scaler = None
        train = features
        if scaled:
            scaler = StandardScaler().fit(features)
            train = scaler.transform(features)
        classifier = MaliciousDomainClassifier().fit(train, labels)
        domains = [f"d{seed}-{i}.example" for i in range(count)]
        return ModelBundle.create(
            classifier,
            features,
            domains,
            scaler=scaler,
            config_fingerprint=f"fp-{seed}",
            metrics=metrics,
            created_at=1_700_000_000.0 + seed,
        )

    return _make
