"""Unit tests for repro.dns.names."""

import pytest

from repro.dns.names import (
    is_valid_domain_name,
    normalize_domain,
    registered_domain,
    split_labels,
)
from repro.errors import DomainNameError


class TestNormalizeDomain:
    def test_lowercases_and_strips_root_dot(self):
        assert normalize_domain("WWW.Example.COM.") == "www.example.com"

    def test_strips_whitespace(self):
        assert normalize_domain("  example.com \n") == "example.com"

    def test_empty_raises(self):
        with pytest.raises(DomainNameError):
            normalize_domain("   ")

    def test_only_dots_raises(self):
        with pytest.raises(DomainNameError):
            normalize_domain(".")


class TestSplitLabels:
    def test_splits_in_order(self):
        assert split_labels("a.b.example.com") == ["a", "b", "example", "com"]


class TestIsValidDomainName:
    @pytest.mark.parametrize(
        "name",
        [
            "example.com",
            "sub.example.co.uk",
            "xn--fiqs8s.cn",
            "a-b.example.com",
            "_dmarc.example.com",
            "123.example.com",
            "a" * 63 + ".com",
        ],
    )
    def test_valid_names(self, name):
        assert is_valid_domain_name(name)

    @pytest.mark.parametrize(
        "name",
        [
            "",
            " ",
            "exa mple.com",
            "-bad.example.com",
            "bad-.example.com",
            "a" * 64 + ".com",
            "exa!mple.com",
            "a." * 127 + "a" * 60,  # exceeds total length
        ],
    )
    def test_invalid_names(self, name):
        assert not is_valid_domain_name(name)

    def test_total_length_boundary(self):
        # 253 characters is legal, 254 is not.
        label = "a" * 59
        legal = ".".join([label, label, label, label, "x" * 13])
        assert len(legal) == 253
        assert is_valid_domain_name(legal)
        assert not is_valid_domain_name(legal + "a")


class TestRegisteredDomain:
    def test_paper_examples(self):
        # Section 4.1: maps.google.com -> google.com.
        assert registered_domain("maps.google.com") == "google.com"

    def test_multi_label_suffix(self):
        assert registered_domain("www.bbc.co.uk") == "bbc.co.uk"

    def test_bare_suffix_raises(self):
        with pytest.raises(DomainNameError):
            registered_domain("co.uk")
