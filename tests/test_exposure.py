"""Unit tests for the Exposure baseline (features + J48)."""

import numpy as np
import pytest

from repro.baselines.exposure import (
    ExposureClassifier,
    ExposureFeatureExtractor,
    ExposureFeatures,
    FEATURE_NAMES,
    _longest_meaningful_substring,
)
from repro.dns.types import DnsQuery, DnsResponse, QueryType, ResourceRecord
from repro.errors import DatasetError


def query(t, ip, qname):
    return DnsQuery(t, 1, ip, qname)


def response(t, qname, ips=(), ttl=300, nxdomain=False):
    return DnsResponse(
        t, 1, "10.0.0.1", qname,
        answers=tuple(ResourceRecord(QueryType.A, ip, ttl) for ip in ips),
        nxdomain=nxdomain,
    )


@pytest.fixture(scope="module")
def extracted():
    day = 86_400.0
    queries = [
        # steady.com: queried on 5 days.
        *[query(d * day + 3600, "10.0.0.1", "www.steady.com") for d in range(5)],
        # burst.bid: everything on day 2.
        *[query(2 * day + i * 60, "10.0.0.2", "burst.bid") for i in range(10)],
    ]
    responses = [
        *[
            response(d * day + 3601, "www.steady.com", ["93.0.0.1"], ttl=3600)
            for d in range(5)
        ],
        *[
            response(2 * day + i * 60 + 1, "burst.bid", ["93.0.9.9"], ttl=60)
            for i in range(10)
        ],
    ]
    return ExposureFeatureExtractor(time_window_days=5.0).extract(
        queries, responses
    )


class TestFeatureExtraction:
    def test_domains_observed(self, extracted):
        assert set(extracted.domains) == {"steady.com", "burst.bid"}

    def test_matrix_shape(self, extracted):
        assert extracted.matrix.shape == (2, len(FEATURE_NAMES))

    def test_access_ratio(self, extracted):
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        rows = extracted.rows_for(["steady.com", "burst.bid"])
        assert rows[0][index["access_ratio"]] == pytest.approx(1.0)
        assert rows[1][index["access_ratio"]] == pytest.approx(0.2)

    def test_short_life_flag(self, extracted):
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        rows = extracted.rows_for(["steady.com", "burst.bid"])
        assert rows[0][index["short_life"]] == 0.0
        assert rows[1][index["short_life"]] == 1.0

    def test_ttl_mean(self, extracted):
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        rows = extracted.rows_for(["steady.com", "burst.bid"])
        assert rows[0][index["ttl_mean"]] == pytest.approx(3600.0)
        assert rows[1][index["ttl_mean"]] == pytest.approx(60.0)

    def test_distinct_ip_count(self, extracted):
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        rows = extracted.rows_for(["steady.com"])
        assert rows[0][index["distinct_ip_count"]] == 1.0

    def test_rows_for_missing_domain_raises(self, extracted):
        with pytest.raises(DatasetError, match="lack Exposure features"):
            extracted.rows_for(["nope.example"])

    def test_shared_ip_counting(self):
        responses = [
            response(1.0, "a.com", ["93.0.0.5"]),
            response(2.0, "b.net", ["93.0.0.5"]),
            response(3.0, "c.org", ["93.0.0.7"]),
        ]
        queries = [
            query(1.0, "h", "a.com"),
            query(2.0, "h", "b.net"),
            query(3.0, "h", "c.org"),
        ]
        features = ExposureFeatureExtractor().extract(queries, responses)
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        rows = features.rows_for(["a.com", "c.org"])
        assert rows[0][index["shared_ip_domain_count"]] == 1.0
        assert rows[1][index["shared_ip_domain_count"]] == 0.0

    def test_ttl_change_count(self):
        responses = [
            response(1.0, "x.com", ["93.0.0.1"], ttl=300),
            response(2.0, "x.com", ["93.0.0.1"], ttl=60),
            response(3.0, "x.com", ["93.0.0.1"], ttl=60),
            response(4.0, "x.com", ["93.0.0.1"], ttl=300),
        ]
        queries = [query(1.0, "h", "x.com")]
        features = ExposureFeatureExtractor().extract(queries, responses)
        index = {name: i for i, name in enumerate(FEATURE_NAMES)}
        assert features.rows_for(["x.com"])[0][index["ttl_change_count"]] == 2.0


class TestLongestMeaningfulSubstring:
    def test_pure_dictionary_word(self):
        assert _longest_meaningful_substring("google") == 6

    def test_embedded_word(self):
        assert _longest_meaningful_substring("xxbankxx") == 4

    def test_random_string(self):
        assert _longest_meaningful_substring("qzxvkqjw") == 0

    def test_empty(self):
        assert _longest_meaningful_substring("") == 0


class TestExposureClassifier:
    def test_end_to_end_on_synthetic_features(self, rng):
        n = 150
        features = np.vstack(
            [rng.normal(0, 1, size=(n, 5)), rng.normal(2, 1, size=(n, 5))]
        )
        labels = np.array([0] * n + [1] * n)
        model = ExposureClassifier().fit(features, labels)
        assert model.score(features, labels) > 0.85
        scores = model.decision_function(features)
        assert scores.shape == (2 * n,)
        assert scores[labels == 1].mean() > scores[labels == 0].mean()

    def test_predict_proba_shape(self, rng):
        features = rng.normal(size=(50, 3))
        labels = (features[:, 0] > 0).astype(int)
        model = ExposureClassifier().fit(features, labels)
        assert model.predict_proba(features).shape == (50, 2)
        assert model.tree_node_count >= 1


class TestExposureFeaturesValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            ExposureFeatures(domains=["a.com"], matrix=np.zeros((2, 3)))
