"""Unit tests for kernel functions."""

import numpy as np
import pytest

from repro.ml.kernels import linear_kernel, polynomial_kernel, rbf_kernel


@pytest.fixture()
def points(rng):
    return rng.normal(size=(20, 5)), rng.normal(size=(8, 5))


class TestRbfKernel:
    def test_shape(self, points):
        a, b = points
        assert rbf_kernel(a, b).shape == (20, 8)

    def test_self_similarity_is_one(self, points):
        a, __ = points
        assert np.allclose(np.diag(rbf_kernel(a, a)), 1.0)

    def test_range(self, points):
        a, b = points
        values = rbf_kernel(a, b, gamma=0.5)
        assert np.all(values > 0) and np.all(values <= 1)

    def test_matches_direct_formula(self, points):
        a, b = points
        gamma = 0.3
        direct = np.exp(
            -gamma * np.sum((a[3] - b[5]) ** 2)
        )
        assert rbf_kernel(a, b, gamma=gamma)[3, 5] == pytest.approx(direct)

    def test_symmetry(self, points):
        a, __ = points
        matrix = rbf_kernel(a, a)
        assert np.allclose(matrix, matrix.T)

    def test_gamma_controls_locality(self, points):
        a, b = points
        wide = rbf_kernel(a, b, gamma=0.01)
        narrow = rbf_kernel(a, b, gamma=10.0)
        assert wide.mean() > narrow.mean()

    def test_default_gamma_is_paper_value(self, points):
        a, b = points
        assert np.allclose(rbf_kernel(a, b), rbf_kernel(a, b, gamma=0.06))


class TestLinearKernel:
    def test_matches_dot_product(self, points):
        a, b = points
        assert np.allclose(linear_kernel(a, b), a @ b.T)


class TestPolynomialKernel:
    def test_matches_direct_formula(self, points):
        a, b = points
        expected = (0.5 * (a @ b.T) + 1.0) ** 3
        assert np.allclose(
            polynomial_kernel(a, b, degree=3, gamma=0.5, coef0=1.0), expected
        )

    def test_degree_one_with_zero_coef_is_scaled_linear(self, points):
        a, b = points
        assert np.allclose(
            polynomial_kernel(a, b, degree=1, gamma=1.0, coef0=0.0),
            linear_kernel(a, b),
        )
