"""Unit tests for the DGA generators."""

import string

import pytest

from repro.dns.names import is_valid_domain_name
from repro.simulation.dga import (
    HexDga,
    PseudoRandomDga,
    WordlistDga,
    spam_campaign_names,
)


class TestPseudoRandomDga:
    def test_deterministic_per_index(self):
        generator = PseudoRandomDga(seed=1, tld="ws")
        assert generator.domain(5) == generator.domain(5)

    def test_different_indices_differ(self):
        generator = PseudoRandomDga(seed=1)
        assert generator.domain(0) != generator.domain(1)

    def test_different_seeds_differ(self):
        assert PseudoRandomDga(1).domain(0) != PseudoRandomDga(2).domain(0)

    def test_shape_matches_conficker_style(self):
        generator = PseudoRandomDga(seed=3, tld="ws", length=11)
        label, tld = generator.domain(0).rsplit(".", 1)
        assert tld == "ws"
        assert len(label) == 11
        assert set(label) <= set(string.ascii_lowercase)

    def test_domains_are_unique_and_valid(self):
        names = PseudoRandomDga(seed=4).domains(200)
        assert len(set(names)) == 200
        assert all(is_valid_domain_name(n) for n in names)

    def test_minimum_length_enforced(self):
        with pytest.raises(ValueError):
            PseudoRandomDga(seed=1, length=3)


class TestHexDga:
    def test_hex_alphabet(self):
        label, __ = HexDga(seed=9).domain(0).rsplit(".", 1)
        assert set(label) <= set("0123456789abcdef")

    def test_length(self):
        label, __ = HexDga(seed=9, length=12).domain(0).rsplit(".", 1)
        assert len(label) == 12


class TestWordlistDga:
    def test_produces_pronounceable_names(self):
        generator = WordlistDga(seed=2, tld="net", words_per_name=2)
        label, tld = generator.domain(0).rsplit(".", 1)
        assert tld == "net"
        assert label.isalpha()

    def test_dedup_in_domains(self):
        # The wordlist is small so collisions happen; domains() must
        # still return distinct names.
        names = WordlistDga(seed=2).domains(300)
        assert len(set(names)) == 300

    def test_words_per_name_bounds(self):
        with pytest.raises(ValueError):
            WordlistDga(seed=2, words_per_name=4)


class TestSpamCampaignNames:
    def test_count_and_tld(self):
        names = spam_campaign_names(seed=1, count=40, tld="bid")
        assert len(names) == 40
        assert len(set(names)) == 40
        assert all(n.endswith(".bid") for n in names)

    def test_labels_are_keyword_mashups(self):
        names = spam_campaign_names(seed=1, count=40)
        labels = [n.rsplit(".", 1)[0] for n in names]
        assert all(6 <= len(label) <= 18 for label in labels)
        assert all(is_valid_domain_name(n) for n in names)

    def test_deterministic(self):
        assert spam_campaign_names(seed=5, count=10) == spam_campaign_names(
            seed=5, count=10
        )
