"""Tests for the versioned model registry (atomic publish, hot swap)."""

import threading

import pytest

from repro.errors import DatasetError
from repro.serve import ModelRegistry
from repro.serve.registry import CURRENT_FILENAME


class TestPublish:
    def test_versions_count_up_from_one(self, make_bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        assert registry.versions() == []
        assert registry.latest_version() is None
        assert registry.publish(make_bundle(seed=1)) == 1
        assert registry.publish(make_bundle(seed=2)) == 2
        assert registry.versions() == [1, 2]
        assert registry.latest_version() == 2

    def test_slot_layout_and_current_pointer(self, make_bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle())
        assert (registry.root / "v0001" / "manifest.json").is_file()
        pointer = registry.root / CURRENT_FILENAME
        assert pointer.read_text().strip() == "1"

    def test_no_staging_leftovers(self, make_bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle())
        leftovers = [
            entry.name
            for entry in registry.root.iterdir()
            if entry.name.startswith(".")
        ]
        assert leftovers == []

    def test_existing_slot_never_overwritten(self, make_bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=1))
        # A slot that appeared out-of-band (another process) is skipped,
        # not clobbered.
        (registry.root / "v0002").mkdir()
        version = registry.publish(make_bundle(seed=9))
        assert version == 3
        assert registry.load(3).manifest.config_fingerprint == "fp-9"

    def test_slot_path_rejects_bad_version(self, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        with pytest.raises(ValueError):
            registry.slot_path(0)


class TestLoad:
    def test_load_specific_and_latest(self, make_bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=1))
        registry.publish(make_bundle(seed=2))
        assert registry.load(1).manifest.config_fingerprint == "fp-1"
        assert registry.load().manifest.config_fingerprint == "fp-2"

    def test_empty_registry_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        with pytest.raises(DatasetError, match="no published"):
            registry.load()

    def test_corrupt_current_falls_back_to_highest_slot(
        self, make_bundle, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=1))
        registry.publish(make_bundle(seed=2))
        (registry.root / CURRENT_FILENAME).write_text("garbage")
        assert registry.latest_version() == 2

    def test_dangling_current_falls_back(self, make_bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=1))
        (registry.root / CURRENT_FILENAME).write_text("99\n")
        assert registry.latest_version() == 1


class TestHotSwap:
    def test_activate_latest(self, make_bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        assert registry.active is None
        assert registry.active_version is None
        registry.publish(make_bundle(seed=1))
        assert registry.activate() == 1
        version, bundle = registry.active
        assert version == 1
        assert bundle.manifest.config_fingerprint == "fp-1"

    def test_activate_empty_registry_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        with pytest.raises(DatasetError):
            registry.activate()

    def test_concurrent_swap_readers_never_see_torn_state(
        self, make_bundle, tmp_path
    ):
        """Readers under continuous hot swap always observe a matched
        (version, bundle) pair — fingerprint "fp-N" belongs to vN."""
        registry = ModelRegistry(tmp_path / "models")
        registry.publish(make_bundle(seed=1))
        registry.activate()
        stop = threading.Event()
        torn: list[tuple[int, str]] = []

        def reader() -> None:
            while not stop.is_set():
                snapshot = registry.active
                if snapshot is None:
                    continue
                version, bundle = snapshot
                fingerprint = bundle.manifest.config_fingerprint
                if fingerprint != f"fp-{version}":
                    torn.append((version, fingerprint))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for seed in range(2, 7):
                version = registry.publish(make_bundle(seed=seed))
                assert version == seed
                registry.activate(version)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert torn == []
        assert registry.active_version == 6
