"""Unit tests for feature preprocessing."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.preprocessing import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(5.0, 3.0, size=(500, 4))
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_not_divided(self):
        data = np.column_stack([np.full(10, 7.0), np.arange(10, dtype=float)])
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled[:, 0], 0.0)
        assert np.all(np.isfinite(scaled))

    def test_transform_uses_training_stats(self, rng):
        train = rng.normal(size=(100, 2))
        test = rng.normal(loc=10.0, size=(50, 2))
        scaler = StandardScaler().fit(train)
        scaled_test = scaler.transform(test)
        # Test data is off-center by construction.
        assert scaled_test.mean() > 5.0

    def test_inverse_transform_round_trip(self, rng):
        data = rng.normal(2.0, 5.0, size=(50, 3))
        scaler = StandardScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))
        with pytest.raises(NotFittedError):
            StandardScaler().inverse_transform(np.zeros((2, 2)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))
