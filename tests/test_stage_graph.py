"""Tests for the typed stage-graph engine and its execution policies.

Three layers of coverage:

* engine unit tests — artifact store semantics, static DAG validation,
  and the batch / incremental / checkpoint policies over toy stages
  (including a real :class:`PipelineCheckpointer` backend);
* span-naming regression — every execution path reports the canonical
  ``stage.pipeline.<stage>.seconds`` metrics, so dashboards never see
  two names for the same work;
* the three-way equivalence contract — batch facade, streaming refresh,
  and the checkpointed runner execute the same stage objects and must
  produce byte-identical embeddings, scores, and clusters.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.dataflow import (
    STAGE_INGEST,
    STAGE_PROJECT,
    STAGE_PRUNE,
)
from repro.core.stages import (
    ArtifactKey,
    ArtifactStore,
    BatchPolicy,
    CheckpointPolicy,
    ExecutionContext,
    IncrementalPolicy,
    Stage,
    StageGraph,
    span_name,
)
from repro.errors import StageGraphError

LEFT = ArtifactKey("toy.left")
RIGHT = ArtifactKey("toy.right")
TOTAL = ArtifactKey("toy.total")


class _Source(Stage[None, int]):
    """Produces a constant; optionally inactive."""

    name = "source"
    outputs = (LEFT,)

    def __init__(self, value: int = 2, enabled: bool = True) -> None:
        self.value = value
        self.enabled = enabled
        self.runs = 0

    def active(self, store: ArtifactStore) -> bool:
        return self.enabled

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        self.runs += 1
        store.put(LEFT, self.value)


class _Double(Stage[int, int]):
    name = "double"
    inputs = (LEFT,)
    outputs = (RIGHT,)

    def __init__(self) -> None:
        self.runs = 0

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        self.runs += 1
        store.put(RIGHT, store.get(LEFT) * 2)


class TestArtifactStore:
    def test_put_get_roundtrip(self):
        store = ArtifactStore()
        assert store.put(LEFT, 7) == 7
        assert store.get(LEFT) == 7
        assert store.has(LEFT)
        assert LEFT in store
        assert len(store) == 1
        assert store.names() == ("toy.left",)

    def test_get_missing_raises(self):
        with pytest.raises(StageGraphError, match="toy.right"):
            ArtifactStore().get(RIGHT)

    def test_maybe_and_discard(self):
        store = ArtifactStore()
        assert store.maybe(LEFT) is None
        store.put(LEFT, 1)
        store.discard(LEFT)
        assert not store.has(LEFT)
        store.discard(LEFT)  # idempotent

    def test_keys_compare_by_name(self):
        store = ArtifactStore()
        store.put(ArtifactKey("toy.left"), 5)
        assert store.get(LEFT) == 5
        assert ArtifactKey("toy.left") == LEFT
        assert hash(ArtifactKey("toy.left")) == hash(LEFT)


class TestGraphValidation:
    def test_missing_input_rejected(self):
        with pytest.raises(StageGraphError, match="toy.left"):
            StageGraph([_Double()])

    def test_initial_artifacts_satisfy_inputs(self):
        graph = StageGraph([_Double()], initial=(LEFT,))
        assert graph.names() == ("double",)

    def test_duplicate_stage_name_rejected(self):
        with pytest.raises(StageGraphError, match="duplicate"):
            StageGraph([_Source(), _Source()])

    def test_duplicate_producer_rejected(self):
        class _SecondProducer(Stage[None, int]):
            name = "second"
            outputs = (LEFT,)

            def run(self, store, ctx):  # pragma: no cover - never runs
                pass

        with pytest.raises(StageGraphError, match="two producers"):
            StageGraph([_Source(), _SecondProducer()])

    def test_nameless_stage_rejected(self):
        class _NoName(Stage[None, None]):
            def run(self, store, ctx):  # pragma: no cover - never runs
                pass

        with pytest.raises(StageGraphError, match="no name"):
            StageGraph([_NoName()])

    def test_describe_reports_static_shape(self):
        info = StageGraph([_Source(), _Double()]).describe()
        assert [s.name for s in info] == ["source", "double"]
        assert info[1].inputs == ("toy.left",)
        assert info[1].outputs == ("toy.right",)
        assert info[0].checkpointed


class TestBatchPolicy:
    def test_runs_stages_in_order(self):
        store = ArtifactStore()
        report = StageGraph([_Source(), _Double()]).execute(store)
        assert report.executed == ["source", "double"]
        assert store.get(RIGHT) == 4

    def test_only_restricts_execution(self):
        store = ArtifactStore()
        store.put(LEFT, 5)
        report = StageGraph([_Source(), _Double()]).execute(
            store, BatchPolicy(only={"double"})
        )
        assert report.executed == ["double"]
        assert report.skipped == ["source"]
        assert store.get(RIGHT) == 10

    def test_inactive_stage_skipped(self):
        store = ArtifactStore()
        store.put(LEFT, 3)
        report = StageGraph(
            [_Source(enabled=False), _Double()], initial=(LEFT,)
        ).execute(store)
        assert report.skipped == ["source"]
        assert store.get(RIGHT) == 6


class TestIncrementalPolicy:
    def test_satisfied_stage_skipped(self):
        store = ArtifactStore()
        store.put(LEFT, 9)
        source, double = _Source(), _Double()
        report = StageGraph([source, double]).execute(
            store, IncrementalPolicy()
        )
        assert source.runs == 0
        assert report.skipped == ["source"]
        assert report.executed == ["double"]
        assert store.get(RIGHT) == 18

    def test_missing_outputs_recomputed(self):
        store = ArtifactStore()
        report = StageGraph([_Source(), _Double()]).execute(
            store, IncrementalPolicy()
        )
        assert report.executed == ["source", "double"]


VAL = ArtifactKey("toy.value")
DERIVED = ArtifactKey("toy.derived")


class _PersistedStage(Stage[None, int]):
    """Toy checkpointed stage; uses a canonical stage name so the real
    :class:`PipelineCheckpointer` accepts it."""

    name = STAGE_PRUNE
    outputs = (VAL,)

    def __init__(self, value: int = 40) -> None:
        self.value = value
        self.runs = 0

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        self.runs += 1
        current = store.maybe(VAL) or 0
        store.put(VAL, current + self.value)

    def save_artifacts(self, staging: Path, store: ArtifactStore):
        (staging / "value.txt").write_text(str(store.get(VAL)))
        return {"value": store.get(VAL)}

    def load_artifacts(self, directory, manifest, store):
        store.put(VAL, int(manifest.meta["value"]))


class _RawStage(Stage[None, int]):
    name = STAGE_INGEST
    outputs = (LEFT,)

    def __init__(self) -> None:
        self.runs = 0

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        self.runs += 1
        store.put(LEFT, 1)

    def save_artifacts(self, staging: Path, store: ArtifactStore):
        (staging / "raw.txt").write_text(str(store.get(LEFT)))
        return {}

    def load_artifacts(self, directory, manifest, store):
        store.put(LEFT, int((directory / "raw.txt").read_text()))


class _SupersedingStage(_PersistedStage):
    supersedes = (STAGE_INGEST,)


class TestCheckpointPolicy:
    @pytest.fixture()
    def checkpointer(self, tmp_path):
        from repro.ingest import PipelineCheckpointer

        return PipelineCheckpointer(tmp_path, "fp-test")

    def _ctx(self, checkpointer, resume):
        return ExecutionContext(checkpointer=checkpointer, resume=resume)

    def test_cold_run_saves_checkpoint(self, checkpointer):
        store = ArtifactStore()
        stage = _PersistedStage()
        report = StageGraph([stage]).execute(
            store, CheckpointPolicy(), self._ctx(checkpointer, False)
        )
        assert report.executed == [STAGE_PRUNE]
        assert report.resumed_from is None
        assert checkpointer.has(STAGE_PRUNE)
        __, manifest = checkpointer.verify(STAGE_PRUNE)
        assert manifest.meta["value"] == 40

    def test_resume_restores_instead_of_running(self, checkpointer):
        StageGraph([_PersistedStage()]).execute(
            ArtifactStore(), CheckpointPolicy(), self._ctx(checkpointer, False)
        )
        stage = _PersistedStage()
        store = ArtifactStore()
        report = StageGraph([stage]).execute(
            store, CheckpointPolicy(resume=True), self._ctx(checkpointer, True)
        )
        assert stage.runs == 0
        assert report.restored == [STAGE_PRUNE]
        assert report.executed == []
        assert report.resumed_from == STAGE_PRUNE
        assert store.get(VAL) == 40

    def test_without_resume_checkpoints_are_ignored(self, checkpointer):
        StageGraph([_PersistedStage()]).execute(
            ArtifactStore(), CheckpointPolicy(), self._ctx(checkpointer, False)
        )
        stage = _PersistedStage(value=7)
        store = ArtifactStore()
        report = StageGraph([stage]).execute(
            store, CheckpointPolicy(), self._ctx(checkpointer, False)
        )
        assert stage.runs == 1
        assert report.restored == []
        assert store.get(VAL) == 7

    def test_partial_checkpoint_restores_then_continues(self, checkpointer):
        # A rolling (complete=False) save is a prefix of the stage's
        # work: resume must load it AND run the stage to finish.
        checkpointer.save(
            STAGE_PRUNE,
            lambda staging: (staging / "value.txt").write_text("40"),
            {"value": 5},
            complete=False,
        )
        stage = _PersistedStage()
        store = ArtifactStore()
        report = StageGraph([stage]).execute(
            store, CheckpointPolicy(resume=True), self._ctx(checkpointer, True)
        )
        assert report.restored == [STAGE_PRUNE]
        assert report.executed == [STAGE_PRUNE]
        assert report.resumed_from == STAGE_PRUNE
        assert store.get(VAL) == 45  # restored 5 + the stage's 40

    def test_superseded_stage_skipped_on_resume(self, checkpointer):
        raw, pruned = _RawStage(), _SupersedingStage()
        StageGraph([raw, pruned]).execute(
            ArtifactStore(), CheckpointPolicy(), self._ctx(checkpointer, False)
        )
        raw2, pruned2 = _RawStage(), _SupersedingStage()
        store = ArtifactStore()
        report = StageGraph([raw2, pruned2]).execute(
            store, CheckpointPolicy(resume=True), self._ctx(checkpointer, True)
        )
        assert raw2.runs == 0
        assert report.skipped == [STAGE_INGEST]
        assert report.restored == [STAGE_PRUNE]
        assert store.get(VAL) == 40
        assert not store.has(LEFT)  # raw artifacts never loaded

    def test_rerun_invalidates_downstream_checkpoints(self, checkpointer):
        # Plant a later-stage checkpoint, then re-run an earlier stage:
        # the stale downstream checkpoint must be dropped.
        checkpointer.save(
            STAGE_PROJECT,
            lambda staging: (staging / "p.txt").write_text("x"),
            {},
        )
        StageGraph([_PersistedStage()]).execute(
            ArtifactStore(), CheckpointPolicy(), self._ctx(checkpointer, False)
        )
        assert checkpointer.has(STAGE_PRUNE)
        assert not checkpointer.has(STAGE_PROJECT)


class TestCanonicalSpans:
    def test_engine_emits_pipeline_stage_metrics(self):
        from repro.obs.export import snapshot_to_dict
        from repro.obs.metrics import MetricsRegistry, default_registry

        registry = default_registry()
        registry.reset()
        try:
            StageGraph([_Source(), _Double()]).execute(ArtifactStore())
            snapshot = snapshot_to_dict(registry)
        finally:
            registry.reset()
        for stage in ("source", "double"):
            name = span_name(stage)
            assert name == f"pipeline.{stage}"
            assert f"stage.{name}.seconds" in snapshot["histograms"]
            assert snapshot["counters"][f"stage.{name}.calls"]["value"] == 1
        assert isinstance(registry, MetricsRegistry)


# --------------------------------------------------------------------------
# Three-way equivalence: the same trace through the batch facade, the
# streaming refresh, and the checkpointed runner must produce
# byte-identical embeddings, scores, and clusters — they are three
# policies over one stage graph, not three pipelines.
# --------------------------------------------------------------------------

_PIPELINE_STAGE_METRICS = (
    "stage.pipeline.ingest.seconds",
    "stage.pipeline.prune.seconds",
    "stage.pipeline.project.seconds",
    "stage.pipeline.embed.seconds",
    "stage.pipeline.classify.seconds",
)

_CLUSTER_K_MAX = 8


def _cluster_shape(clusters):
    return [(c.cluster_id, tuple(c.domains)) for c in clusters]


@pytest.fixture(scope="module")
def pipeline_config():
    from repro.core.pipeline import PipelineConfig
    from repro.embedding.line import LineConfig

    return PipelineConfig(
        embedding=LineConfig(dimension=8, total_samples=30_000, seed=13)
    )


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    from repro.simulation import SimulationConfig, TraceGenerator

    directory = tmp_path_factory.mktemp("stage-graph-trace")
    TraceGenerator(SimulationConfig.tiny(seed=7)).generate().save(directory)
    return directory


@pytest.fixture(scope="module")
def trace_records(trace_dir):
    from repro.dns.logfmt import DnsTraceReader

    return list(DnsTraceReader(trace_dir / "dns.log"))


@pytest.fixture(scope="module")
def dataset_for(trace_dir):
    from repro.labels import (
        IntelligenceFeed,
        SimulatedVirusTotal,
        build_labeled_dataset,
    )
    from repro.simulation.groundtruth import GroundTruth

    truth = GroundTruth.load(trace_dir / "groundtruth.tsv")
    feed = IntelligenceFeed(truth)
    virustotal = SimulatedVirusTotal(truth)

    def _build(domains):
        return build_labeled_dataset(feed, virustotal, domains)

    return _build


@pytest.fixture(scope="module")
def batch_run(pipeline_config, trace_dir, trace_records, dataset_for):
    """Reference batch-facade outputs plus the metric names it emitted."""
    from repro.core.pipeline import MaliciousDomainDetector
    from repro.dns.dhcp import DhcpLog
    from repro.dns.types import DnsQuery, DnsResponse
    from repro.obs.export import snapshot_to_dict
    from repro.obs.metrics import default_registry

    queries = [r for r in trace_records if isinstance(r, DnsQuery)]
    responses = [r for r in trace_records if isinstance(r, DnsResponse)]
    dhcp = DhcpLog.load(trace_dir / "dhcp.log")
    registry = default_registry()
    registry.reset()
    detector = MaliciousDomainDetector(pipeline_config)
    detector.build_graphs(queries, responses, dhcp)
    detector.build_similarity_graphs()
    space = detector.learn_embeddings()
    detector.fit(dataset_for(detector.domains))
    domains = detector.domains
    scores = detector.decision_scores(domains)
    clusters = detector.cluster(k_max=_CLUSTER_K_MAX)
    snapshot = snapshot_to_dict(registry)
    registry.reset()
    return {
        "domains": domains,
        "space": space,
        "scores": scores,
        "clusters": clusters,
        "snapshot": snapshot,
    }


@pytest.mark.slow
class TestThreeWayEquivalence:
    def test_batch_path_emits_canonical_metrics(self, batch_run):
        histograms = batch_run["snapshot"]["histograms"]
        for name in _PIPELINE_STAGE_METRICS:
            assert name in histograms, name

    def test_streaming_refresh_matches_batch(
        self, pipeline_config, trace_dir, trace_records, dataset_for,
        batch_run,
    ):
        from repro.core.streaming import StreamingDetector
        from repro.dns.dhcp import DhcpLog

        stream = StreamingDetector(
            pipeline_config, dhcp=DhcpLog.load(trace_dir / "dhcp.log")
        )
        stream.ingest(trace_records)
        stream.refresh(dataset_for(batch_run["domains"]))
        detector = stream.detector

        assert detector.domains == batch_run["domains"]
        space = detector.feature_space
        for view in ("query", "ip", "temporal"):
            assert np.array_equal(
                getattr(space, view).vectors,
                getattr(batch_run["space"], view).vectors,
            ), f"{view} embeddings diverge between streaming and batch"
        assert np.array_equal(
            detector.decision_scores(batch_run["domains"]),
            batch_run["scores"],
        )
        clusters = detector.cluster(k_max=_CLUSTER_K_MAX)
        assert _cluster_shape(clusters) == _cluster_shape(
            batch_run["clusters"]
        )

    def test_checkpointed_run_matches_batch(
        self, pipeline_config, trace_dir, dataset_for, batch_run
    ):
        from repro.dns.dhcp import DhcpLog
        from repro.ingest import (
            CheckpointedPipeline,
            ChunkPolicy,
            IngestConfig,
        )
        from repro.obs.export import snapshot_to_dict
        from repro.obs.metrics import default_registry

        registry = default_registry()
        registry.reset()
        outcome = CheckpointedPipeline(
            pipeline_config,
            IngestConfig(
                chunk=ChunkPolicy(max_records=700), checkpoint_every_chunks=3
            ),
            dhcp=DhcpLog.load(trace_dir / "dhcp.log"),
        ).run(
            trace_dir / "dns.log",
            dataset_for,
            cluster_k_max=_CLUSTER_K_MAX,
        )
        snapshot = snapshot_to_dict(registry)
        registry.reset()

        assert outcome.domains == batch_run["domains"]
        space = outcome.detector.feature_space
        for view in ("query", "ip", "temporal"):
            assert np.array_equal(
                getattr(space, view).vectors,
                getattr(batch_run["space"], view).vectors,
            ), f"{view} embeddings diverge between checkpointed and batch"
        assert np.array_equal(outcome.scores, batch_run["scores"])
        assert _cluster_shape(outcome.clusters) == _cluster_shape(
            batch_run["clusters"]
        )

        # Same spans from the checkpointed path (plus the cluster stage
        # this run enabled): one canonical name per stage, every path.
        histograms = snapshot["histograms"]
        for name in _PIPELINE_STAGE_METRICS:
            assert name in histograms, name
        assert "stage.pipeline.cluster.seconds" in histograms
