"""Unit and integration tests for the end-to-end trace generator."""


from repro.dns.logfmt import DnsTraceReader
from repro.dns.types import DnsQuery, DnsResponse
from repro.simulation import SimulationConfig, TraceGenerator
from repro.simulation.groundtruth import GroundTruth


class TestTraceShape:
    def test_queries_and_responses_pair_up(self, tiny_trace):
        assert len(tiny_trace.queries) == len(tiny_trace.responses)

    def test_queries_sorted_by_time(self, tiny_trace):
        times = [q.timestamp for q in tiny_trace.queries]
        assert times == sorted(times)

    def test_timestamps_within_duration(self, tiny_trace):
        duration = tiny_trace.config.duration_seconds
        assert all(0 <= q.timestamp < duration for q in tiny_trace.queries)

    def test_txids_match(self, tiny_trace):
        for query, response in zip(tiny_trace.queries, tiny_trace.responses):
            assert query.txid == response.txid
            assert query.qname == response.qname
            assert response.timestamp > query.timestamp

    def test_response_goes_back_to_querier(self, tiny_trace):
        for query, response in zip(
            tiny_trace.queries[:500], tiny_trace.responses[:500]
        ):
            assert response.destination_ip == query.source_ip

    def test_source_ips_are_campus(self, tiny_trace):
        assert all(
            q.source_ip.startswith("10.20.") for q in tiny_trace.queries[:500]
        )


class TestGroundTruthConsistency:
    def test_malicious_domains_appear_in_trace(self, tiny_trace):
        queried = {q.qname for q in tiny_trace.queries}
        malicious = set(tiny_trace.ground_truth.malicious_domains)
        seen = {d for d in malicious if d in queried}
        assert len(seen) > len(malicious) * 0.5

    def test_families_recorded(self, tiny_trace):
        assert tiny_trace.families
        for family, domains in tiny_trace.families.items():
            assert domains
            for domain in domains:
                record = tiny_trace.ground_truth.get(domain)
                assert record is not None and record.family == family

    def test_nxdomain_only_for_unregistered(self, tiny_trace):
        truth = tiny_trace.ground_truth
        for response in tiny_trace.responses:
            if response.nxdomain:
                record = truth.get(response.qname)
                # NXDOMAIN responses come only from unregistered DGA names
                # (which are recorded as DGA ground truth).
                assert record is not None and record.category.value == "dga"

    def test_resolved_responses_carry_answers_and_ttls(self, tiny_trace):
        for response in tiny_trace.responses[:2000]:
            if not response.nxdomain:
                assert response.answers
                assert all(rr.ttl > 0 for rr in response.answers)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        config_a = SimulationConfig.tiny(seed=99)
        config_b = SimulationConfig.tiny(seed=99)
        trace_a = TraceGenerator(config_a).generate()
        trace_b = TraceGenerator(config_b).generate()
        assert len(trace_a.queries) == len(trace_b.queries)
        assert trace_a.queries[:100] == trace_b.queries[:100]
        assert trace_a.responses[:100] == trace_b.responses[:100]

    def test_different_seed_different_trace(self):
        trace_a = TraceGenerator(SimulationConfig.tiny(seed=1)).generate()
        trace_b = TraceGenerator(SimulationConfig.tiny(seed=2)).generate()
        assert trace_a.queries[:50] != trace_b.queries[:50]


class TestPersistence:
    def test_save_round_trip(self, tiny_trace, tmp_path):
        tiny_trace.save(tmp_path)
        records = list(DnsTraceReader(tmp_path / "dns.log"))
        queries = [r for r in records if isinstance(r, DnsQuery)]
        responses = [r for r in records if isinstance(r, DnsResponse)]
        assert len(queries) == len(tiny_trace.queries)
        assert len(responses) == len(tiny_trace.responses)
        truth = GroundTruth.load(tmp_path / "groundtruth.tsv")
        assert len(truth) == len(tiny_trace.ground_truth)

    def test_metadata_description(self, tiny_trace):
        assert "hosts" in tiny_trace.metadata.description
        assert tiny_trace.metadata.host_count == 40
