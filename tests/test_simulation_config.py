"""Unit tests for simulation configuration validation."""

import pytest

from repro.errors import SimulationConfigError
from repro.simulation.config import (
    BenignCatalogConfig,
    HostPopulationConfig,
    MalwareConfig,
    SimulationConfig,
)


class TestHostPopulationConfig:
    def test_default_is_valid(self):
        HostPopulationConfig().validate()

    def test_fractions_must_sum_to_one(self):
        config = HostPopulationConfig(desktop_fraction=0.9)
        with pytest.raises(SimulationConfigError, match="sum to 1"):
            config.validate()

    def test_minimum_host_count(self):
        with pytest.raises(SimulationConfigError, match="host_count"):
            HostPopulationConfig(host_count=2).validate()

    def test_sessions_positive(self):
        with pytest.raises(SimulationConfigError, match="sessions_per_day"):
            HostPopulationConfig(sessions_per_day=0).validate()


class TestBenignCatalogConfig:
    def test_default_is_valid(self):
        BenignCatalogConfig().validate()

    def test_zipf_exponent_must_exceed_one(self):
        with pytest.raises(SimulationConfigError, match="zipf"):
            BenignCatalogConfig(zipf_exponent=1.0).validate()

    def test_shared_hosting_fraction_range(self):
        with pytest.raises(SimulationConfigError, match="shared_hosting"):
            BenignCatalogConfig(shared_hosting_fraction=1.5).validate()


class TestMalwareConfig:
    def test_default_is_valid(self):
        MalwareConfig().validate()

    def test_negative_family_count_rejected(self):
        with pytest.raises(SimulationConfigError):
            MalwareConfig(dga_botnet_count=-1).validate()

    def test_total_malicious_domains(self):
        config = MalwareConfig(
            dga_botnet_count=2,
            domains_per_dga_family=10,
            cnc_family_count=1,
            domains_per_cnc_family=5,
            spam_campaign_count=0,
            phishing_campaign_count=0,
            fastflux_family_count=0,
        )
        assert config.total_malicious_domains == 25


class TestSimulationConfig:
    def test_default_is_valid(self):
        SimulationConfig().validate()

    def test_tiny_is_valid(self):
        SimulationConfig.tiny().validate()

    def test_paper_scale_is_valid(self):
        SimulationConfig.paper_scale().validate()

    def test_duration_must_be_positive(self):
        with pytest.raises(SimulationConfigError, match="duration"):
            SimulationConfig(duration_days=0).validate()

    def test_duration_seconds(self):
        assert SimulationConfig(duration_days=2).duration_seconds == 172_800.0

    def test_validation_cascades_to_subconfigs(self):
        config = SimulationConfig()
        config.malware.beacon_interval_minutes = -1
        with pytest.raises(SimulationConfigError, match="beacon"):
            config.validate()
