"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-trace")
    code = main(
        ["simulate", str(directory), "--scale", "tiny", "--seed", "3",
         "--days", "1"]
    )
    assert code == 0
    return directory


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "out"])
        assert args.scale == "tiny"
        assert args.seed == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSimulate:
    def test_writes_all_artifacts(self, trace_dir):
        assert (trace_dir / "dns.log").exists()
        assert (trace_dir / "dhcp.log").exists()
        assert (trace_dir / "groundtruth.tsv").exists()

    def test_deterministic_for_seed(self, tmp_path):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        main(["simulate", str(dir_a), "--seed", "9", "--days", "0.5"])
        main(["simulate", str(dir_b), "--seed", "9", "--days", "0.5"])
        assert (dir_a / "dns.log").read_text() == (dir_b / "dns.log").read_text()


class TestStats:
    def test_prints_summary(self, trace_dir, capsys):
        assert main(["stats", str(trace_dir)]) == 0
        output = capsys.readouterr().out
        assert "total queries" in output
        assert "unique e2LDs" in output

    def test_profile_flag(self, trace_dir, capsys):
        assert main(["stats", str(trace_dir), "--profile"]) == 0
        output = capsys.readouterr().out
        assert "00:00" in output and "23:00" in output


class TestDetect:
    def test_scores_written_and_ranked(self, trace_dir, capsys):
        assert main(["detect", str(trace_dir), "--dimension", "8"]) == 0
        output = capsys.readouterr().out
        assert "top suspects" in output
        scores_file = trace_dir / "scores.tsv"
        assert scores_file.exists()
        values = [
            float(line.split("\t")[1])
            for line in scores_file.read_text().splitlines()
        ]
        assert values == sorted(values, reverse=True)

    def test_missing_groundtruth_fails_cleanly(self, trace_dir, tmp_path, capsys):
        bare = tmp_path / "bare"
        bare.mkdir()
        (bare / "dns.log").write_text(
            (trace_dir / "dns.log").read_text()
        )
        assert main(["detect", str(bare)]) == 2


class TestCluster:
    def test_prints_annotated_clusters(self, trace_dir, capsys):
        assert main(["cluster", str(trace_dir), "--dimension", "8"]) == 0
        output = capsys.readouterr().out
        assert "clusters" in output
