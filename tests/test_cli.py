"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-trace")
    code = main(
        ["simulate", str(directory), "--scale", "tiny", "--seed", "3",
         "--days", "1"]
    )
    assert code == 0
    return directory


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "out"])
        assert args.scale == "tiny"
        assert args.seed == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSimulate:
    def test_writes_all_artifacts(self, trace_dir):
        assert (trace_dir / "dns.log").exists()
        assert (trace_dir / "dhcp.log").exists()
        assert (trace_dir / "groundtruth.tsv").exists()

    def test_deterministic_for_seed(self, tmp_path):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        main(["simulate", str(dir_a), "--seed", "9", "--days", "0.5"])
        main(["simulate", str(dir_b), "--seed", "9", "--days", "0.5"])
        assert (dir_a / "dns.log").read_text() == (dir_b / "dns.log").read_text()


class TestStats:
    def test_prints_summary(self, trace_dir, capsys):
        assert main(["stats", str(trace_dir)]) == 0
        output = capsys.readouterr().out
        assert "total queries" in output
        assert "unique e2LDs" in output

    def test_profile_flag(self, trace_dir, capsys):
        assert main(["stats", str(trace_dir), "--profile"]) == 0
        output = capsys.readouterr().out
        assert "00:00" in output and "23:00" in output


class TestDetect:
    def test_scores_written_and_ranked(self, trace_dir, capsys):
        assert main(["detect", str(trace_dir), "--dimension", "8"]) == 0
        output = capsys.readouterr().out
        assert "top suspects" in output
        scores_file = trace_dir / "scores.tsv"
        assert scores_file.exists()
        values = [
            float(line.split("\t")[1])
            for line in scores_file.read_text().splitlines()
        ]
        assert values == sorted(values, reverse=True)

    def test_missing_groundtruth_fails_cleanly(self, trace_dir, tmp_path, capsys):
        bare = tmp_path / "bare"
        bare.mkdir()
        (bare / "dns.log").write_text(
            (trace_dir / "dns.log").read_text()
        )
        assert main(["detect", str(bare)]) == 2


class TestCluster:
    def test_prints_annotated_clusters(self, trace_dir, capsys):
        assert main(["cluster", str(trace_dir), "--dimension", "8"]) == 0
        output = capsys.readouterr().out
        assert "clusters" in output
        assert "stage timings:" in output
        assert "pipeline.cluster" in output


class TestDescribe:
    def test_prints_stage_graph(self, capsys):
        assert main(["describe"]) == 0
        output = capsys.readouterr().out
        for stage in (
            "ingest", "prune", "project", "embed", "classify", "cluster",
        ):
            assert f"pipeline.{stage}" in output
        assert "graphs.pruned" in output
        assert "supersedes ingest" in output

    def test_reports_checkpoint_restorability(self, tmp_path, capsys):
        assert main(["describe", "--checkpoint-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "checkpoint: none" in output
        assert "none found" in output


class TestChunkedIngestion:
    @pytest.fixture()
    def fresh_trace(self, trace_dir, tmp_path):
        # Private copy of the simulated trace so scores.tsv from other
        # tests (or other runs here) can't leak across assertions.
        import shutil

        copy = tmp_path / "trace"
        copy.mkdir()
        for name in ("dns.log", "dhcp.log", "groundtruth.tsv"):
            shutil.copy(trace_dir / name, copy / name)
        return copy

    def test_parser_accepts_ingest_flags(self):
        args = build_parser().parse_args(
            ["detect", "t", "--chunk-records", "500",
             "--chunk-seconds", "3600", "--checkpoint-dir", "ck", "--resume"]
        )
        assert args.chunk_records == 500
        assert args.chunk_seconds == 3600.0
        assert args.checkpoint_dir == "ck"
        assert args.resume

    @pytest.mark.parametrize("command", ["detect", "cluster"])
    def test_resume_without_checkpoint_dir_exits_2(
        self, command, fresh_trace, capsys
    ):
        assert main([command, str(fresh_trace), "--resume"]) == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_bad_chunk_records_exits_2(self, fresh_trace, capsys):
        code = main(["detect", str(fresh_trace), "--chunk-records", "0"])
        assert code == 2
        assert "--chunk-records" in capsys.readouterr().err

    @pytest.mark.slow
    def test_chunked_scores_match_monolithic(self, fresh_trace, capsys):
        assert main(["detect", str(fresh_trace), "--dimension", "8"]) == 0
        monolithic = (fresh_trace / "scores.tsv").read_bytes()
        (fresh_trace / "scores.tsv").unlink()
        code = main(
            ["detect", str(fresh_trace), "--dimension", "8",
             "--chunk-records", "700"]
        )
        assert code == 0
        assert (fresh_trace / "scores.tsv").read_bytes() == monolithic

    @pytest.mark.slow
    def test_detect_resume_reuses_checkpoints(
        self, fresh_trace, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        base = ["detect", str(fresh_trace), "--dimension", "8",
                "--chunk-records", "700", "--checkpoint-dir", str(ckpt)]
        assert main(base) == 0
        capsys.readouterr()
        first = (fresh_trace / "scores.tsv").read_bytes()
        assert main(base + ["--resume"]) == 0
        assert "resumed from checkpoint stage" in capsys.readouterr().err
        assert (fresh_trace / "scores.tsv").read_bytes() == first

    @pytest.mark.slow
    def test_cluster_supports_chunked_path(self, fresh_trace, capsys):
        code = main(
            ["cluster", str(fresh_trace), "--dimension", "8",
             "--chunk-records", "700"]
        )
        assert code == 0
        assert "clusters" in capsys.readouterr().out


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestBadInputPaths:
    @pytest.mark.parametrize("command", ["stats", "detect", "cluster"])
    def test_missing_tracedir_exits_nonzero(self, command, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main([command, str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["stats", "detect", "cluster"])
    def test_dir_without_dns_log_exits_nonzero(self, command, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([command, str(empty)]) == 2
        assert "no dns.log" in capsys.readouterr().err

    def test_simulate_outdir_collides_with_file(self, tmp_path, capsys):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        assert main(["simulate", str(target)]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestSaveModel:
    def test_detect_publishes_matching_model(self, trace_dir, tmp_path, capsys):
        from repro.serve import DomainScorer, ModelRegistry

        registry_dir = tmp_path / "models"
        code = main(
            ["detect", str(trace_dir), "--dimension", "8",
             "--save-model", str(registry_dir)]
        )
        assert code == 0
        assert "published model v0001" in capsys.readouterr().out
        registry = ModelRegistry(registry_dir)
        assert registry.versions() == [1]
        scorer = DomainScorer(registry.load(1), cache_size=0)
        rows = [
            line.split("\t")
            for line in (trace_dir / "scores.tsv").read_text().splitlines()
        ]
        assert scorer.known_domains == len(rows)
        # The published bundle answers with the scores detect printed
        # (scores.tsv rounds to 6 decimals; batch on both sides).
        verdicts = scorer.score_batch([domain for domain, __ in rows])
        for verdict, (domain, score_text) in zip(verdicts, rows):
            assert verdict.known is True
            assert verdict.score == pytest.approx(
                float(score_text), abs=5e-7
            )

    def test_detect_bad_save_model_path_exits_2(
        self, trace_dir, tmp_path, capsys
    ):
        occupied = tmp_path / "occupied"
        occupied.write_text("not a directory")
        code = main(
            ["detect", str(trace_dir), "--save-model", str(occupied)]
        )
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_detect_missing_save_model_parent_exits_2(
        self, trace_dir, tmp_path, capsys
    ):
        missing = tmp_path / "no" / "such" / "registry"
        code = main(
            ["detect", str(trace_dir), "--save-model", str(missing)]
        )
        assert code == 2
        assert "parent directory does not exist" in capsys.readouterr().err

    def test_cluster_save_model_requires_groundtruth(
        self, trace_dir, tmp_path, capsys
    ):
        bare = tmp_path / "bare"
        bare.mkdir()
        (bare / "dns.log").write_text((trace_dir / "dns.log").read_text())
        code = main(
            ["cluster", str(bare), "--save-model", str(tmp_path / "models")]
        )
        assert code == 2
        assert "requires groundtruth.tsv" in capsys.readouterr().err


class TestServeCommand:
    def test_missing_registry_exits_2(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_registry_path_is_file_exits_2(self, tmp_path, capsys):
        occupied = tmp_path / "occupied"
        occupied.write_text("x")
        assert main(["serve", str(occupied)]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_empty_registry_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["serve", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "no published model versions" in err
        assert "detect --save-model" in err

    @pytest.mark.parametrize(
        ("flags", "message"),
        [
            (["--max-inflight", "0"], "max_inflight"),
            (["--queue-depth", "-1"], "queue_depth"),
            (["--batch-window-ms", "-5"], "batch_window_seconds"),
            (["--deadline-ms", "0"], "deadline_seconds"),
            (["--port", "70000"], "port"),
            (["--host", "  "], "host"),
        ],
    )
    def test_bad_hardening_flags_exit_2(
        self, make_bundle, tmp_path, capsys, flags, message
    ):
        from repro.serve import ModelRegistry

        registry_dir = tmp_path / "models"
        ModelRegistry(registry_dir).publish(make_bundle(seed=1))
        assert main(["serve", str(registry_dir), *flags]) == 2
        assert message in capsys.readouterr().err


class TestObservability:
    def test_detect_metrics_out_writes_stage_snapshot(self, trace_dir, capsys):
        import json

        metrics_path = trace_dir / "metrics.json"
        assert (
            main(
                ["detect", str(trace_dir), "--dimension", "8",
                 "--metrics-out", str(metrics_path)]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "stage timings:" in output
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["schema_version"] == 1
        for stage in (
            "pipeline.ingest", "pipeline.prune", "pipeline.project",
            "pipeline.embed", "pipeline.classify",
        ):
            assert f"stage.{stage}.seconds" in snapshot["histograms"]
            assert f"stage.{stage}.calls" in snapshot["counters"]
            assert snapshot["histograms"][f"stage.{stage}.seconds"]["count"] >= 1

    def test_verbose_flag_emits_structured_logs(self, trace_dir, capsys):
        assert main(["stats", str(trace_dir), "-v"]) == 0
        # -v routes repro.* INFO logs to stderr as logfmt.
        from repro.obs.logging import configure

        configure(0)  # restore quiet default for other tests
        assert main(["detect", str(trace_dir), "--dimension", "8", "-v"]) == 0
        err = capsys.readouterr().err
        assert "event=graphs_built" in err
        assert "level=info" in err
        configure(0)
