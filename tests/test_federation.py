"""Unit tests for cross-network verdict correlation (paper section 10)."""

import numpy as np
import pytest

from repro.analysis.federation import (
    SiteVerdicts,
    correlate_verdicts,
    match_campaigns,
)
from repro.core.clustering import DomainCluster


def cluster(cid, domains):
    return DomainCluster(cid, list(domains), np.zeros(2))


@pytest.fixture()
def three_sites():
    return [
        SiteVerdicts(
            site="campus-a",
            scores={"evil.ws": 1.2, "benign.com": -0.9, "shared.bid": 0.4},
            clusters=[cluster(0, ["evil.ws", "shared.bid", "evil2.ws"])],
            domain_ips={"evil.ws": {"93.0.0.1"}, "shared.bid": {"93.0.0.2"}},
        ),
        SiteVerdicts(
            site="campus-b",
            scores={"evil.ws": 0.8, "benign.com": -1.1, "other.net": -0.2},
            clusters=[cluster(0, ["evil.ws", "evil3.ws"])],
            domain_ips={"evil.ws": {"93.0.0.1"}, "evil3.ws": {"93.0.0.1"}},
        ),
        SiteVerdicts(
            site="campus-c",
            scores={"shared.bid": 0.6, "benign.com": -0.7},
            clusters=[cluster(0, ["shared.bid", "evil4.ws"])],
            domain_ips={"shared.bid": {"93.0.0.2"}, "evil4.ws": {"93.0.0.2"}},
        ),
    ]


class TestCorrelateVerdicts:
    def test_multi_site_detection_ranks_first(self, three_sites):
        verdicts = correlate_verdicts(three_sites)
        assert verdicts[0].domain == "evil.ws"
        assert verdicts[0].sites_flagged == 2

    def test_benign_consensus_stays_negative(self, three_sites):
        verdicts = {v.domain: v for v in correlate_verdicts(three_sites)}
        benign = verdicts["benign.com"]
        assert benign.sites_observed == 3
        assert benign.sites_flagged == 0
        assert benign.consensus_score < 0

    def test_breadth_boost(self, three_sites):
        verdicts = {v.domain: v for v in correlate_verdicts(three_sites)}
        flagged = verdicts["evil.ws"]
        assert flagged.consensus_score > flagged.mean_score

    def test_single_site_domain_included(self, three_sites):
        verdicts = {v.domain: v for v in correlate_verdicts(three_sites)}
        assert verdicts["other.net"].sites_observed == 1

    def test_empty_sites(self):
        assert correlate_verdicts([]) == []


class TestMatchCampaigns:
    def test_shared_domain_plus_ip_matches(self, three_sites):
        matches = match_campaigns(three_sites)
        pairs = {(m.site_a, m.site_b) for m in matches}
        # campus-a & campus-b share evil.ws + 93.0.0.1.
        assert ("campus-a", "campus-b") in pairs
        # campus-a & campus-c share shared.bid + 93.0.0.2.
        assert ("campus-a", "campus-c") in pairs

    def test_match_carries_evidence(self, three_sites):
        matches = match_campaigns(three_sites)
        best = matches[0]
        assert best.evidence >= 2
        assert best.shared_domains

    def test_unrelated_clusters_do_not_match(self):
        sites = [
            SiteVerdicts("a", {}, [cluster(0, ["x.com", "y.com"])]),
            SiteVerdicts("b", {}, [cluster(0, ["p.net", "q.net"])]),
        ]
        assert match_campaigns(sites) == []

    def test_min_shared_domains_threshold(self):
        sites = [
            SiteVerdicts("a", {}, [cluster(0, ["x.com", "y.com"])]),
            SiteVerdicts("b", {}, [cluster(0, ["x.com", "q.net"])]),
        ]
        # One shared domain, no IP overlap data: below default threshold.
        assert match_campaigns(sites, min_shared_domains=2) == []
        assert len(match_campaigns(sites, min_shared_domains=1)) == 1

    def test_matches_sorted_by_evidence(self, three_sites):
        matches = match_campaigns(three_sites, min_shared_domains=1)
        evidences = [m.evidence for m in matches]
        assert evidences == sorted(evidences, reverse=True)
