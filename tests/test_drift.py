"""Unit tests for temporal-stability analysis."""

import numpy as np
import pytest

from repro.analysis.drift import (
    TransferDecay,
    feature_stability,
    neighborhood_stability,
    transfer_auc_decay,
)
from repro.graphs.bipartite import BipartiteGraph


class TestNeighborhoodStability:
    def test_identical_windows_score_one(self):
        graph = BipartiteGraph(kind="host")
        graph.add_edge("a.com", "h1")
        graph.add_edge("a.com", "h2")
        stability = neighborhood_stability(graph, graph, ["a.com"])
        assert stability == {"a.com": 1.0}

    def test_partial_overlap(self):
        window_a = BipartiteGraph(kind="host")
        window_a.add_edge("a.com", "h1")
        window_a.add_edge("a.com", "h2")
        window_b = BipartiteGraph(kind="host")
        window_b.add_edge("a.com", "h2")
        window_b.add_edge("a.com", "h3")
        stability = neighborhood_stability(window_a, window_b, ["a.com"])
        assert stability["a.com"] == pytest.approx(1 / 3)

    def test_missing_domains_skipped(self):
        window_a = BipartiteGraph(kind="host")
        window_a.add_edge("a.com", "h1")
        window_b = BipartiteGraph(kind="host")
        stability = neighborhood_stability(window_a, window_b, ["a.com", "x.com"])
        assert stability == {}


class TestFeatureStability:
    def test_perfect_rank_preservation(self, rng):
        features = rng.normal(size=(40, 3))
        shifted = features * 2.0 + 5.0  # monotone transform
        stability = feature_stability(features, shifted, ["a", "b", "c"])
        assert all(v == pytest.approx(1.0) for v in stability.values())

    def test_shuffled_feature_scores_near_zero(self, rng):
        features = rng.normal(size=(200, 1))
        shuffled = features[rng.permutation(200)]
        stability = feature_stability(features, shuffled)
        assert abs(stability["f0"]) < 0.2

    def test_inverted_feature_scores_minus_one(self, rng):
        features = rng.normal(size=(50, 1))
        stability = feature_stability(features, -features)
        assert stability["f0"] == pytest.approx(-1.0)

    def test_constant_feature_scores_zero(self):
        features = np.ones((10, 1))
        assert feature_stability(features, features)["f0"] == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            feature_stability(np.ones((3, 2)), np.ones((4, 2)))

    def test_names_mismatch_rejected(self):
        with pytest.raises(ValueError):
            feature_stability(np.ones((3, 2)), np.ones((3, 2)), ["only-one"])


class _ThresholdModel:
    def fit(self, features, labels):
        return self

    def decision_function(self, features):
        return features[:, 0]


class TestTransferDecay:
    def test_no_drift_no_decay(self, rng):
        features = rng.normal(size=(100, 1))
        labels = (features[:, 0] > 0).astype(int)
        result = transfer_auc_decay(
            _ThresholdModel, features, features, labels
        )
        assert result.decay == pytest.approx(0.0)
        assert result.within_auc == pytest.approx(1.0)

    def test_drift_causes_decay(self, rng):
        features = rng.normal(size=(300, 1))
        labels = (features[:, 0] > 0).astype(int)
        # Window 2: the feature loses most of its signal.
        shifted = features * 0.1 + rng.normal(size=(300, 1))
        result = transfer_auc_decay(
            _ThresholdModel, features, shifted, labels
        )
        assert result.transfer_auc < result.within_auc
        assert result.decay > 0.1

    def test_dataclass_decay_property(self):
        assert TransferDecay(0.9, 0.8).decay == pytest.approx(0.1)
