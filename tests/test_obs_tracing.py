"""Tests for repro.obs.tracing, the timing table, logging, and progress."""

import io
import logging

import pytest

from repro.obs.export import render_timing_table
from repro.obs.logging import configure, format_fields, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import (
    FanoutProgress,
    LoggingProgress,
    MetricsProgress,
    ProgressCallback,
)
from repro.obs.tracing import Span, current_span, trace


class TestTrace:
    def test_records_histogram_and_counter(self):
        registry = MetricsRegistry()
        with trace("stage_a", registry):
            pass
        assert registry.counter("stage.stage_a.calls").value == 1.0
        hist = registry.histogram("stage.stage_a.seconds")
        assert hist.count == 1
        assert hist.sum >= 0.0

    def test_span_elapsed_fills_in_at_exit(self):
        registry = MetricsRegistry()
        with trace("x", registry) as span:
            assert span.elapsed is None
        assert span.elapsed is not None and span.elapsed >= 0.0

    def test_nested_spans_have_paths_and_depths(self):
        registry = MetricsRegistry()
        with trace("pipeline", registry) as outer:
            with trace("view", registry) as middle:
                with trace("epoch", registry) as inner:
                    assert inner.path == "pipeline.view.epoch"
        assert outer.depth == 0 and middle.depth == 1 and inner.depth == 2
        # Nested spans keep their own metric names.
        assert "stage.view.seconds" in registry
        assert "stage.epoch.seconds" in registry

    def test_nesting_stack_unwinds(self):
        registry = MetricsRegistry()
        assert current_span() is None
        with trace("a", registry):
            assert current_span().name == "a"
            with trace("b", registry):
                assert current_span().name == "b"
            assert current_span().name == "a"
        assert current_span() is None

    def test_stage_recorded_even_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with trace("failing", registry):
                raise RuntimeError("boom")
        assert registry.counter("stage.failing.calls").value == 1.0
        assert current_span() is None

    def test_each_call_accumulates(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with trace("loop", registry):
                pass
        assert registry.histogram("stage.loop.seconds").count == 3

    def test_span_direct_use_and_validation(self):
        registry = MetricsRegistry()
        with Span("direct", registry):
            pass
        assert registry.counter("stage.direct.calls").value == 1.0
        with pytest.raises(ValueError):
            Span("")


class TestTimingTable:
    def test_empty_registry_placeholder(self):
        assert render_timing_table(MetricsRegistry()) == "(no stages traced)"

    def test_table_lists_stages_in_execution_order(self):
        registry = MetricsRegistry()
        for name in ("graph_build", "pruning", "embedding"):
            with trace(name, registry):
                pass
        table = render_timing_table(registry)
        lines = table.splitlines()
        assert lines[0].split() == [
            "stage", "calls", "total", "mean", "p50", "p95", "max",
        ]
        stages = [line.split()[0] for line in lines[2:]]
        assert stages == ["graph_build", "pruning", "embedding"]

    def test_table_ignores_non_stage_metrics(self):
        registry = MetricsRegistry()
        registry.counter("records").inc()
        registry.histogram("other.latency").observe(1.0)
        with trace("only_stage", registry):
            pass
        table = render_timing_table(registry)
        assert "only_stage" in table
        assert "records" not in table and "other.latency" not in table


class TestStructuredLogging:
    def test_format_fields_quotes_awkward_values(self):
        line = format_fields("started", {"a": 1, "b": "two words", "c": True})
        assert line == 'event=started a=1 b="two words" c=true'

    def test_get_logger_roots_under_repro(self):
        assert get_logger("core.pipeline").name == "repro.core.pipeline"
        assert get_logger("repro.core.pipeline").name == "repro.core.pipeline"

    def test_configure_verbosity_levels(self):
        root = configure(0)
        assert root.level == logging.WARNING
        root = configure(1)
        assert root.level == logging.INFO
        root = configure(2)
        assert root.level == logging.DEBUG

    def test_configure_is_idempotent(self):
        before = len(configure(1).handlers)
        after = len(configure(1).handlers)
        assert before == after

    def test_log_lines_are_logfmt(self):
        stream = io.StringIO()
        configure(1, stream=stream)
        get_logger("obs.test").info("unit_event", n=3, what="a b")
        line = stream.getvalue().strip()
        assert "level=info" in line
        assert "logger=repro.obs.test" in line
        assert 'event=unit_event n=3 what="a b"' in line
        configure(0)  # restore default quietness for other tests

    def test_bound_fields_appear_on_every_line(self):
        stream = io.StringIO()
        configure(1, stream=stream)
        log = get_logger("obs.test").bind(run="r1")
        log.info("first")
        log.info("second", extra_field=2)
        lines = stream.getvalue().strip().splitlines()
        assert all("run=r1" in line for line in lines)
        configure(0)

    def test_disabled_level_emits_nothing(self):
        stream = io.StringIO()
        configure(0, stream=stream)
        get_logger("obs.test").debug("hidden")
        get_logger("obs.test").info("hidden_too")
        assert stream.getvalue() == ""


class _Recorder:
    def __init__(self):
        self.calls = []

    def on_epoch(self, epoch, total, loss):
        self.calls.append((epoch, total, loss))


class TestProgress:
    def test_protocol_runtime_checkable(self):
        assert isinstance(_Recorder(), ProgressCallback)
        assert isinstance(LoggingProgress("x"), ProgressCallback)
        assert isinstance(MetricsProgress("x"), ProgressCallback)

    def test_metrics_progress_records_gauges(self):
        registry = MetricsRegistry()
        progress = MetricsProgress("line.query", registry)
        progress.on_epoch(1, 10, 0.9)
        progress.on_epoch(2, 10, 0.5)
        assert registry.gauge("line.query.epoch").value == 2.0
        assert registry.gauge("line.query.loss").value == 0.5
        assert registry.counter("line.query.epochs_done").value == 2.0

    def test_fanout_forwards_in_order(self):
        first, second = _Recorder(), _Recorder()
        FanoutProgress(first, second).on_epoch(3, 5, 0.1)
        assert first.calls == [(3, 5, 0.1)]
        assert second.calls == [(3, 5, 0.1)]

    def test_logging_progress_logs_epoch_event(self):
        stream = io.StringIO()
        configure(1, stream=stream)
        LoggingProgress("line.ip").on_epoch(2, 20, 0.25)
        line = stream.getvalue()
        assert "event=epoch" in line and "task=line.ip" in line
        assert "epoch=2" in line and "loss=0.25" in line
        configure(0)
