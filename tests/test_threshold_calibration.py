"""Tests for the classifier's training-time threshold calibration."""

import numpy as np
import pytest

from repro.core.detector import MaliciousDomainClassifier
from repro.ml import f1_score


@pytest.fixture(scope="module")
def imbalanced_data():
    """Skewed classes with small C push raw scores off-center."""
    rng = np.random.default_rng(3)
    benign = rng.normal(-0.4, 0.6, size=(300, 4))
    malicious = rng.normal(0.6, 0.6, size=(60, 4))
    features = np.vstack([benign, malicious])
    labels = np.array([0] * 300 + [1] * 60)
    return features, labels


class TestThresholdCalibration:
    def test_auto_threshold_recovers_f1(self, imbalanced_data):
        features, labels = imbalanced_data
        fixed = MaliciousDomainClassifier(threshold=0.0).fit(features, labels)
        auto = MaliciousDomainClassifier().fit(features, labels)
        f1_fixed = f1_score(labels, fixed.predict(features))
        f1_auto = f1_score(labels, auto.predict(features))
        assert f1_auto >= f1_fixed
        assert f1_auto > 0.5

    def test_explicit_threshold_respected(self, imbalanced_data):
        features, labels = imbalanced_data
        model = MaliciousDomainClassifier(threshold=1.5).fit(features, labels)
        assert model.threshold_ == 1.5

    def test_calibrated_threshold_is_a_score_midpoint(self, imbalanced_data):
        features, labels = imbalanced_data
        model = MaliciousDomainClassifier().fit(features, labels)
        scores = model.decision_function(features)
        assert scores.min() < model.threshold_ < scores.max()

    def test_decision_function_unaffected_by_threshold(self, imbalanced_data):
        features, labels = imbalanced_data
        auto = MaliciousDomainClassifier().fit(features, labels)
        fixed = MaliciousDomainClassifier(threshold=0.0).fit(features, labels)
        assert np.allclose(
            auto.decision_function(features), fixed.decision_function(features)
        )
