"""Tests for the streaming / incremental detection mode."""

import pytest

from repro import (
    IntelligenceFeed,
    PipelineConfig,
    SimulatedVirusTotal,
    build_labeled_dataset,
)
from repro.core.streaming import IncrementalGraphBuilder, StreamingDetector
from repro.dns.types import DnsQuery, DnsResponse, QueryType, ResourceRecord
from repro.embedding.line import LineConfig
from repro.errors import NotFittedError


def query(t, ip, qname):
    return DnsQuery(t, 1, ip, qname)


def response(t, qname, ips=()):
    return DnsResponse(
        t, 1, "10.0.0.1", qname,
        answers=tuple(ResourceRecord(QueryType.A, a, 60) for a in ips),
    )


class TestIncrementalGraphBuilder:
    def test_batches_accumulate(self):
        builder = IncrementalGraphBuilder()
        builder.ingest([query(1.0, "h1", "a.example.com")])
        builder.ingest([query(70.0, "h2", "b.example.com")])
        assert builder.host_domain.neighbors("example.com") == {"h1", "h2"}
        assert builder.domain_time.neighbors("example.com") == {0, 1}
        assert builder.records_ingested == 2

    def test_responses_feed_ip_graph(self):
        builder = IncrementalGraphBuilder()
        builder.ingest(
            [
                response(1.0, "www.example.com", ["93.0.0.1"]),
                response(2.0, "example.com", ["93.0.0.2"]),
            ]
        )
        assert builder.domain_ip.neighbors("example.com") == {
            "93.0.0.1", "93.0.0.2",
        }

    def test_nxdomain_and_invalid_names_skipped(self):
        builder = IncrementalGraphBuilder()
        builder.ingest(
            [
                DnsResponse(1.0, 1, "10.0.0.1", "gone.example.com",
                            nxdomain=True),
                query(2.0, "h1", "!!bad!!"),
            ]
        )
        assert builder.domain_ip.domain_count == 0
        assert builder.host_domain.domain_count == 0

    def test_latest_timestamp_tracked(self):
        builder = IncrementalGraphBuilder()
        builder.ingest([query(5.0, "h", "a.com"), query(3.0, "h", "b.com")])
        assert builder.latest_timestamp == 5.0

    def test_matches_batch_construction(self, tiny_trace):
        """Incremental ingestion equals the batch graph builders."""
        from repro.graphs.bipartite import build_host_domain_graph

        builder = IncrementalGraphBuilder(dhcp=tiny_trace.dhcp)
        half = len(tiny_trace.queries) // 2
        builder.ingest(tiny_trace.queries[:half])
        builder.ingest(tiny_trace.queries[half:])
        from repro.dns.dhcp import HostIdentityResolver

        batch = build_host_domain_graph(
            tiny_trace.queries, HostIdentityResolver(tiny_trace.dhcp)
        )
        assert builder.host_domain.adjacency == batch.adjacency


class TestStreamingDetector:
    @pytest.fixture(scope="class")
    def stream_setup(self, tiny_trace):
        config = PipelineConfig(
            embedding=LineConfig(dimension=16, total_samples=100_000, seed=6)
        )
        stream = StreamingDetector(config, dhcp=tiny_trace.dhcp)
        merged = sorted(
            [*tiny_trace.queries, *tiny_trace.responses],
            key=lambda r: r.timestamp,
        )
        half = len(merged) // 2
        stream.ingest(merged[:half])

        feed = IntelligenceFeed(tiny_trace.ground_truth)
        virustotal = SimulatedVirusTotal(tiny_trace.ground_truth)

        def make_dataset():
            return build_labeled_dataset(
                feed,
                virustotal,
                sorted(stream.builder.host_domain.adjacency),
            )

        return stream, merged[half:], make_dataset, tiny_trace

    def test_score_before_refresh_raises(self, tiny_trace):
        stream = StreamingDetector(dhcp=tiny_trace.dhcp)
        with pytest.raises(NotFittedError):
            stream.score(["a.com"])

    def test_refresh_then_score(self, stream_setup):
        stream, remaining, make_dataset, trace = stream_setup
        stream.refresh(make_dataset())
        assert stream.refreshes == 1
        scores = stream.score(stream.known_domains[:5])
        assert scores.shape == (5,)

    def test_second_refresh_absorbs_new_traffic(self, stream_setup):
        stream, remaining, make_dataset, trace = stream_setup
        if stream.refreshes == 0:
            stream.refresh(make_dataset())
        domains_before = set(stream.known_domains)
        stream.ingest(remaining)
        stream.refresh(make_dataset())
        domains_after = set(stream.known_domains)
        # The second half of the trace surfaces new domains.
        assert len(domains_after) >= len(domains_before)

    def test_publish_creates_versioned_bundle(self, stream_setup, tmp_path):
        from repro.obs.metrics import default_registry
        from repro.serve import ModelRegistry

        stream, remaining, make_dataset, trace = stream_setup
        if stream.refreshes == 0:
            stream.refresh(make_dataset())
        registry = ModelRegistry(tmp_path / "models")
        version = stream.publish(registry)
        assert version == 1
        bundle = registry.load(1)
        assert bundle.domains == stream.known_domains
        assert bundle.manifest.metrics["refreshes"] == float(stream.refreshes)
        assert bundle.manifest.metrics["records_ingested"] == float(
            stream.builder.records_ingested
        )
        assert default_registry().gauge("serve.model_version").value == 1
        # A second refresh->publish cycle appends, never overwrites.
        assert stream.publish(registry) == 2
        assert registry.versions() == [1, 2]

    def test_publish_before_refresh_raises(self, tiny_trace, tmp_path):
        from repro.serve import ModelRegistry

        stream = StreamingDetector(dhcp=tiny_trace.dhcp)
        with pytest.raises(NotFittedError):
            stream.publish(ModelRegistry(tmp_path / "models"))

    def test_detection_quality_after_full_stream(self, stream_setup):
        stream, remaining, make_dataset, trace = stream_setup
        stream.ingest(remaining)
        dataset = make_dataset()
        stream.refresh(dataset)
        from repro.ml import roc_auc_score

        scores = stream.score(dataset.domains)
        assert roc_auc_score(dataset.labels, scores) > 0.8
