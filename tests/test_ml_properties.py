"""Property-based tests for the ML substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ml.kernels import rbf_kernel
from repro.ml.kmeans import KMeans
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeClassifier


@st.composite
def small_dataset(draw):
    n = draw(st.integers(min_value=8, max_value=40))
    d = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, d))
    labels = draw(
        st.lists(st.integers(min_value=0, max_value=1), min_size=n, max_size=n)
        .filter(lambda ls: 0 < sum(ls) < len(ls))
    )
    return features, np.array(labels)


class TestKernelProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=30)
    def test_rbf_gram_matrix_is_psd(self, seed, gamma):
        """RBF Gram matrices are positive semi-definite (Mercer)."""
        points = np.random.default_rng(seed).normal(size=(15, 3))
        gram = rbf_kernel(points, points, gamma=gamma)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-8

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30)
    def test_rbf_bounded_and_symmetric(self, seed):
        points = np.random.default_rng(seed).normal(size=(12, 2))
        gram = rbf_kernel(points, points)
        assert np.all(gram <= 1.0 + 1e-12)
        assert np.all(gram > 0.0)
        assert np.allclose(gram, gram.T)


class TestTreeProperties:
    @given(small_dataset())
    @settings(max_examples=25, deadline=None)
    def test_predictions_are_training_classes(self, data):
        features, labels = data
        tree = DecisionTreeClassifier().fit(features, labels)
        predictions = tree.predict(features)
        assert set(np.unique(predictions)) <= set(np.unique(labels))

    @given(small_dataset())
    @settings(max_examples=25, deadline=None)
    def test_probabilities_valid(self, data):
        features, labels = data
        tree = DecisionTreeClassifier().fit(features, labels)
        probabilities = tree.predict_proba(features)
        assert np.all(probabilities >= 0)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    @given(small_dataset())
    @settings(max_examples=25, deadline=None)
    def test_unpruned_tree_at_least_as_deep(self, data):
        features, labels = data
        pruned = DecisionTreeClassifier(confidence=0.25).fit(features, labels)
        unpruned = DecisionTreeClassifier(confidence=None).fit(features, labels)
        assert pruned.node_count <= unpruned.node_count


class TestKMeansProperties:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_more_clusters_never_increase_inertia(self, seed, k):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(30, 2))
        inertia_k = KMeans(n_clusters=k, seed=1).fit(data).inertia_
        inertia_k1 = KMeans(n_clusters=k + 1, seed=1).fit(data).inertia_
        # k-means++ with restarts: adding a cluster should not make the
        # best found solution meaningfully worse.
        assert inertia_k1 <= inertia_k * 1.05 + 1e-9

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_labels_within_range(self, seed):
        data = np.random.default_rng(seed).normal(size=(20, 3))
        model = KMeans(n_clusters=3, seed=0).fit(data)
        assert set(np.unique(model.labels_)) <= {0, 1, 2}


class TestScalerProperties:
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=-1e3, max_value=1e3),
        st.floats(min_value=0.01, max_value=1e3),
    )
    @settings(max_examples=30)
    def test_affine_invariance_of_output(self, rows, seed, shift, scale):
        """Scaling output is identical for affinely transformed input."""
        data = np.random.default_rng(seed).normal(size=(rows, 2))
        direct = StandardScaler().fit_transform(data)
        transformed = StandardScaler().fit_transform(data * scale + shift)
        assert np.allclose(direct, transformed, atol=1e-6)
