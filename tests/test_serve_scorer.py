"""Tests for the vectorized domain scorer (cache, unknown policies)."""

import math

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import DomainScorer


@pytest.fixture()
def bundle(make_bundle):
    return make_bundle(seed=5, count=16, dimension=4)


class TestScoring:
    def test_known_domain_matches_bundle_scores(self, bundle):
        # Compare same-shaped computations: BLAS picks different kernels
        # for different matrix shapes, so only equal-shape calls are
        # bit-identical.
        scorer = DomainScorer(bundle)
        for row in (0, 7, 15):
            verdict = scorer.score(bundle.domains[row])
            expected = bundle.decision_scores(
                bundle.features[row:row + 1]
            )[0]
            assert verdict.known is True
            assert verdict.score == expected
            assert verdict.malicious == (
                verdict.score >= bundle.classifier.threshold_
            )

    def test_batch_preserves_input_order(self, bundle):
        scorer = DomainScorer(bundle)
        queried = [bundle.domains[3], "nope.example", bundle.domains[1]]
        verdicts = scorer.score_batch(queried)
        assert [v.domain for v in verdicts] == queried

    def test_batch_matches_direct_computation(self, bundle):
        batch = DomainScorer(bundle).score_batch(bundle.domains[:6])
        expected = bundle.decision_scores(bundle.features[:6])
        assert [v.score for v in batch] == list(expected)

    def test_batch_close_to_singles(self, bundle):
        # Not bit-identical (1-row vs 6-row BLAS paths) but equal to
        # within float64 noise.
        batch = DomainScorer(bundle).score_batch(bundle.domains[:6])
        singles = [DomainScorer(bundle).score(d) for d in bundle.domains[:6]]
        for joint, single in zip(batch, singles):
            assert joint.score == pytest.approx(single.score, rel=1e-9)
            assert joint.malicious == single.malicious

    def test_scaled_bundle_applies_scaler(self, make_bundle):
        bundle = make_bundle(seed=6, scaled=True)
        scorer = DomainScorer(bundle)
        expected = bundle.decision_scores(bundle.features[:1])[0]
        assert scorer.score(bundle.domains[0]).score == expected


class TestUnknownPolicy:
    def test_zero_policy_scores_no_evidence_vector(self, bundle):
        scorer = DomainScorer(bundle, unknown_policy="zero")
        verdict = scorer.score("never-seen.example")
        zero_score = bundle.decision_scores(
            np.zeros((1, bundle.dimension))
        )[0]
        assert verdict.known is False
        assert verdict.score == zero_score

    def test_reject_policy_returns_nan(self, bundle):
        scorer = DomainScorer(bundle, unknown_policy="reject")
        verdict = scorer.score("never-seen.example")
        assert verdict.known is False
        assert math.isnan(verdict.score)
        assert verdict.malicious is False

    def test_reject_policy_still_scores_known(self, bundle):
        scorer = DomainScorer(bundle, unknown_policy="reject")
        verdict = scorer.score(bundle.domains[0])
        assert verdict.known is True
        assert not math.isnan(verdict.score)

    def test_bad_policy_rejected(self, bundle):
        with pytest.raises(ValueError, match="unknown_policy"):
            DomainScorer(bundle, unknown_policy="explode")


class TestCache:
    def test_repeat_queries_served_from_cache(self, bundle):
        registry = MetricsRegistry()
        scorer = DomainScorer(bundle, metrics=registry)
        first = scorer.score(bundle.domains[0])
        second = scorer.score(bundle.domains[0])
        assert first == second
        assert scorer.cache_len == 1
        assert registry.counter("serve.cache.hits").value == 1
        assert registry.counter("serve.cache.misses").value == 1
        assert registry.gauge("serve.cache.hit_ratio").value == 0.5

    def test_lru_eviction(self, bundle):
        scorer = DomainScorer(bundle, cache_size=2)
        scorer.score(bundle.domains[0])
        scorer.score(bundle.domains[1])
        scorer.score(bundle.domains[0])  # refresh 0: now 1 is the LRU
        scorer.score(bundle.domains[2])  # evicts 1
        assert scorer.cache_len == 2
        registry = MetricsRegistry()
        tracked = DomainScorer(bundle, cache_size=2, metrics=registry)
        tracked.score(bundle.domains[0])
        tracked.score(bundle.domains[1])
        tracked.score(bundle.domains[0])
        tracked.score(bundle.domains[2])
        tracked.score(bundle.domains[1])  # evicted above -> miss again
        assert registry.counter("serve.cache.misses").value == 4

    def test_cache_disabled(self, bundle):
        registry = MetricsRegistry()
        scorer = DomainScorer(bundle, cache_size=0, metrics=registry)
        scorer.score(bundle.domains[0])
        scorer.score(bundle.domains[0])
        assert scorer.cache_len == 0
        assert registry.counter("serve.cache.misses").value == 2

    def test_negative_cache_size_rejected(self, bundle):
        with pytest.raises(ValueError, match="cache_size"):
            DomainScorer(bundle, cache_size=-1)

    def test_duplicate_domains_in_one_batch(self, bundle):
        """Each occurrence of a duplicate gets its own result slot, in
        input order, and cache accounting counts occurrences."""
        registry = MetricsRegistry()
        scorer = DomainScorer(bundle, metrics=registry)
        queried = [
            bundle.domains[2],
            bundle.domains[5],
            bundle.domains[2],
            bundle.domains[2],
        ]
        verdicts = scorer.score_batch(queried)
        assert [v.domain for v in verdicts] == queried
        assert verdicts[0] == verdicts[2] == verdicts[3]
        # Only two distinct domains end up cached...
        assert scorer.cache_len == 2
        # ...but all four cold occurrences were scored as misses.
        assert registry.counter("serve.cache.misses").value == 4
        assert registry.counter("serve.cache.hits").value == 0
        # The same batch again is answered entirely from the cache.
        repeat = scorer.score_batch(queried)
        assert repeat == verdicts
        assert registry.counter("serve.cache.hits").value == 4
        assert registry.counter("serve.cache.misses").value == 4
        assert registry.gauge("serve.cache.hit_ratio").value == 0.5

    def test_cache_disabled_batch_with_duplicates(self, bundle):
        """cache_size=0 batches keep order and never populate the LRU,
        even for duplicates within one batch."""
        registry = MetricsRegistry()
        scorer = DomainScorer(bundle, cache_size=0, metrics=registry)
        queried = [bundle.domains[0], bundle.domains[1], bundle.domains[0]]
        verdicts = scorer.score_batch(queried)
        assert [v.domain for v in verdicts] == queried
        assert verdicts[0] == verdicts[2]
        assert scorer.cache_len == 0
        assert registry.counter("serve.cache.misses").value == 3
        scorer.score_batch(queried)
        assert registry.counter("serve.cache.misses").value == 6
        assert registry.counter("serve.cache.hits").value == 0

    def test_throughput_counter(self, bundle):
        registry = MetricsRegistry()
        scorer = DomainScorer(bundle, metrics=registry)
        scorer.score_batch(bundle.domains[:5])
        scorer.score_batch(bundle.domains[:5])
        assert registry.counter("serve.scored_domains").value == 10


class TestConcurrency:
    def test_threaded_batches_agree_with_serial(self, bundle):
        import threading

        scorer = DomainScorer(bundle, cache_size=8)
        expected = {
            d: DomainScorer(bundle, cache_size=0).score(d)
            for d in bundle.domains
        }
        failures: list[str] = []

        def worker(offset: int) -> None:
            for i in range(50):
                domain = bundle.domains[(offset + i) % len(bundle.domains)]
                if scorer.score(domain) != expected[domain]:
                    failures.append(domain)
                    return

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

    def test_hit_ratio_consistent_under_concurrent_scoring(self, bundle):
        """The hit-ratio gauge always equals hits/(hits+misses) from the
        counters, even with interleaved multi-threaded batches."""
        import threading

        registry = MetricsRegistry()
        scorer = DomainScorer(bundle, cache_size=64, metrics=registry)

        def worker(offset: int) -> None:
            for i in range(30):
                start = (offset + i) % (len(bundle.domains) - 3)
                scorer.score_batch(bundle.domains[start:start + 3])

        threads = [
            threading.Thread(target=worker, args=(k * 5,)) for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        hits = registry.counter("serve.cache.hits").value
        misses = registry.counter("serve.cache.misses").value
        assert hits + misses == 4 * 30 * 3
        assert (
            registry.counter("serve.scored_domains").value == hits + misses
        )
        assert registry.gauge("serve.cache.hit_ratio").value == pytest.approx(
            hits / (hits + misses)
        )
