"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    auc,
    confusion_matrix,
    f1_score,
    mean_roc_curve,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)


class TestRocCurve:
    def test_perfect_classifier(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, thresholds = roc_curve(labels, scores)
        assert roc_auc_score(labels, scores) == pytest.approx(1.0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_inverted_classifier(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(labels, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000)
        scores = rng.uniform(size=5000)
        assert abs(roc_auc_score(labels, scores) - 0.5) < 0.03

    def test_auc_equals_rank_probability(self):
        """AUC == P(score_pos > score_neg), the Mann-Whitney identity."""
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=300)
        scores = rng.normal(size=300) + labels * 0.8
        positives = scores[labels == 1]
        negatives = scores[labels == 0]
        greater = np.mean(positives[:, None] > negatives[None, :])
        ties = np.mean(positives[:, None] == negatives[None, :])
        assert roc_auc_score(labels, scores) == pytest.approx(
            greater + ties / 2, abs=1e-9
        )

    def test_tied_scores_handled(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc_score(labels, scores) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="positive and negative"):
            roc_curve(np.ones(5), np.zeros(5))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            roc_curve(np.array([0, 1, 2]), np.zeros(3))

    def test_monotone_curve(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 2, size=200)
        scores = rng.normal(size=200)
        fpr, tpr, __ = roc_curve(labels, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)


class TestAuc:
    def test_unit_triangle(self):
        assert auc(np.array([0, 1]), np.array([0, 1])) == pytest.approx(0.5)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            auc(np.array([0.0]), np.array([0.0]))

    def test_non_monotonic_rejected(self):
        with pytest.raises(ValueError, match="monotonic"):
            auc(np.array([0.0, 1.0, 0.5]), np.array([0.0, 1.0, 1.0]))


class TestPointMetrics:
    def test_confusion_matrix_layout(self):
        labels = np.array([0, 0, 1, 1, 1])
        predictions = np.array([0, 1, 1, 1, 0])
        matrix = confusion_matrix(labels, predictions)
        assert matrix.tolist() == [[1, 1], [1, 2]]

    def test_precision_recall_f1(self):
        labels = np.array([0, 0, 1, 1, 1])
        predictions = np.array([0, 1, 1, 1, 0])
        assert precision_score(labels, predictions) == pytest.approx(2 / 3)
        assert recall_score(labels, predictions) == pytest.approx(2 / 3)
        assert f1_score(labels, predictions) == pytest.approx(2 / 3)

    def test_degenerate_precision(self):
        labels = np.array([1, 1, 0])
        predictions = np.zeros(3, dtype=int)
        assert precision_score(labels, predictions) == 0.0
        assert f1_score(labels, predictions) == 0.0

    def test_accuracy(self):
        assert accuracy_score(np.array([1, 0, 1]), np.array([1, 1, 1])) == (
            pytest.approx(2 / 3)
        )


class TestMeanRocCurve:
    def test_average_of_identical_curves(self):
        fpr = np.array([0.0, 0.5, 1.0])
        tpr = np.array([0.0, 0.8, 1.0])
        grid, mean_tpr = mean_roc_curve([(fpr, tpr), (fpr, tpr)])
        assert grid.size == mean_tpr.size
        assert np.interp(0.5, grid, mean_tpr) == pytest.approx(0.8, abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_roc_curve([])
