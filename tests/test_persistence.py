"""Unit tests for artifact persistence (npz round-trips)."""

import numpy as np
import pytest

from repro.core.features import FeatureSpace
from repro.core.persistence import (
    load_embedding,
    load_feature_space,
    load_similarity_graph,
    save_embedding,
    save_feature_space,
    save_similarity_graph,
)
from repro.embedding.line import LineConfig, LineEmbedding
from repro.graphs.projection import SimilarityGraph


@pytest.fixture()
def embedding(rng):
    return LineEmbedding(
        kind="host",
        domains=["a.com", "b.net", "c.org"],
        vectors=rng.normal(size=(3, 8)),
        config=LineConfig(dimension=8, order="second", seed=5),
    )


@pytest.fixture()
def graph():
    return SimilarityGraph(
        kind="ip",
        domains=["a.com", "b.net", "c.org"],
        rows=np.array([0, 0]),
        cols=np.array([1, 2]),
        weights=np.array([0.5, 0.25]),
    )


class TestEmbeddingRoundTrip:
    def test_round_trip(self, embedding, tmp_path):
        path = tmp_path / "embedding.npz"
        save_embedding(embedding, path)
        loaded = load_embedding(path)
        assert loaded.kind == embedding.kind
        assert loaded.domains == embedding.domains
        assert np.allclose(loaded.vectors, embedding.vectors)
        assert loaded.config == embedding.config

    def test_lookup_works_after_load(self, embedding, tmp_path):
        path = tmp_path / "embedding.npz"
        save_embedding(embedding, path)
        loaded = load_embedding(path)
        assert np.allclose(loaded.vector("b.net"), embedding.vector("b.net"))
        assert np.all(loaded.vector("missing.example") == 0)


class TestFeatureSpaceRoundTrip:
    def test_round_trip(self, embedding, tmp_path):
        space = FeatureSpace(query=embedding, ip=embedding, temporal=embedding)
        save_feature_space(space, tmp_path / "space")
        loaded = load_feature_space(tmp_path / "space")
        assert loaded.dimension == space.dimension
        assert np.allclose(
            loaded.matrix(["a.com", "c.org"]),
            space.matrix(["a.com", "c.org"]),
        )


class TestGraphRoundTrip:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_similarity_graph(graph, path)
        loaded = load_similarity_graph(path)
        assert loaded.kind == graph.kind
        assert loaded.domains == graph.domains
        assert loaded.weight_between("a.com", "b.net") == 0.5
        assert loaded.edge_count == 2

    def test_embeddable_after_load(self, graph, tmp_path):
        from repro.embedding.line import train_line

        path = tmp_path / "graph.npz"
        save_similarity_graph(graph, path)
        loaded = load_similarity_graph(path)
        result = train_line(
            loaded, LineConfig(dimension=4, total_samples=5_000)
        )
        assert result.vectors.shape == (3, 4)
