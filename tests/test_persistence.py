"""Unit tests for artifact persistence (npz round-trips)."""

import numpy as np
import pytest

from repro.core.detector import MaliciousDomainClassifier
from repro.core.features import FeatureSpace
from repro.core.persistence import (
    load_classifier,
    load_embedding,
    load_feature_space,
    load_scaler,
    load_similarity_graph,
    save_classifier,
    save_embedding,
    save_feature_space,
    save_scaler,
    save_similarity_graph,
)
from repro.embedding.line import LineConfig, LineEmbedding
from repro.errors import NotFittedError
from repro.graphs.projection import SimilarityGraph
from repro.ml.preprocessing import StandardScaler


@pytest.fixture()
def embedding(rng):
    return LineEmbedding(
        kind="host",
        domains=["a.com", "b.net", "c.org"],
        vectors=rng.normal(size=(3, 8)),
        config=LineConfig(dimension=8, order="second", seed=5),
    )


@pytest.fixture()
def graph():
    return SimilarityGraph(
        kind="ip",
        domains=["a.com", "b.net", "c.org"],
        rows=np.array([0, 0]),
        cols=np.array([1, 2]),
        weights=np.array([0.5, 0.25]),
    )


class TestEmbeddingRoundTrip:
    def test_round_trip(self, embedding, tmp_path):
        path = tmp_path / "embedding.npz"
        save_embedding(embedding, path)
        loaded = load_embedding(path)
        assert loaded.kind == embedding.kind
        assert loaded.domains == embedding.domains
        assert np.allclose(loaded.vectors, embedding.vectors)
        assert loaded.config == embedding.config

    def test_lookup_works_after_load(self, embedding, tmp_path):
        path = tmp_path / "embedding.npz"
        save_embedding(embedding, path)
        loaded = load_embedding(path)
        assert np.allclose(loaded.vector("b.net"), embedding.vector("b.net"))
        assert np.all(loaded.vector("missing.example") == 0)


class TestFeatureSpaceRoundTrip:
    def test_round_trip(self, embedding, tmp_path):
        space = FeatureSpace(query=embedding, ip=embedding, temporal=embedding)
        save_feature_space(space, tmp_path / "space")
        loaded = load_feature_space(tmp_path / "space")
        assert loaded.dimension == space.dimension
        assert np.allclose(
            loaded.matrix(["a.com", "c.org"]),
            space.matrix(["a.com", "c.org"]),
        )


class TestGraphRoundTrip:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_similarity_graph(graph, path)
        loaded = load_similarity_graph(path)
        assert loaded.kind == graph.kind
        assert loaded.domains == graph.domains
        assert loaded.weight_between("a.com", "b.net") == 0.5
        assert loaded.edge_count == 2

    def test_embeddable_after_load(self, graph, tmp_path):
        from repro.embedding.line import train_line

        path = tmp_path / "graph.npz"
        save_similarity_graph(graph, path)
        loaded = load_similarity_graph(path)
        result = train_line(
            loaded, LineConfig(dimension=4, total_samples=5_000)
        )
        assert result.vectors.shape == (3, 4)


class TestClassifierRoundTrip:
    @pytest.fixture()
    def fitted(self, rng):
        labels = np.arange(30) % 2
        features = rng.normal(size=(30, 5)) + labels[:, None] * 2.0
        return MaliciousDomainClassifier().fit(features, labels), features

    def test_decision_function_byte_exact(self, fitted, tmp_path, rng):
        classifier, __ = fitted
        path = tmp_path / "classifier.npz"
        save_classifier(classifier, path)
        loaded = load_classifier(path)
        probe = rng.normal(size=(12, 5))
        # Not allclose: the kernel expansion over bit-equal float64
        # support vectors must reproduce scores exactly.
        assert np.array_equal(
            loaded.decision_function(probe),
            classifier.decision_function(probe),
        )
        assert np.array_equal(loaded.predict(probe), classifier.predict(probe))

    def test_calibrated_threshold_preserved(self, fitted, tmp_path):
        classifier, __ = fitted
        path = tmp_path / "classifier.npz"
        save_classifier(classifier, path)
        loaded = load_classifier(path)
        assert loaded.threshold is None  # configured: calibrate-on-fit
        assert loaded.threshold_ == classifier.threshold_

    def test_fixed_threshold_preserved(self, rng, tmp_path):
        labels = np.arange(20) % 2
        features = rng.normal(size=(20, 4)) + labels[:, None]
        classifier = MaliciousDomainClassifier(threshold=0.5).fit(
            features, labels
        )
        path = tmp_path / "classifier.npz"
        save_classifier(classifier, path)
        loaded = load_classifier(path)
        assert loaded.threshold == 0.5
        assert loaded.threshold_ == 0.5

    def test_unfitted_classifier_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_classifier(
                MaliciousDomainClassifier(), tmp_path / "classifier.npz"
            )


class TestScalerRoundTrip:
    def test_transform_byte_exact(self, rng, tmp_path):
        scaler = StandardScaler().fit(rng.normal(size=(40, 6)))
        path = tmp_path / "scaler.npz"
        save_scaler(scaler, path)
        loaded = load_scaler(path)
        probe = rng.normal(size=(10, 6))
        assert np.array_equal(loaded.mean_, scaler.mean_)
        assert np.array_equal(loaded.scale_, scaler.scale_)
        assert np.array_equal(
            loaded.transform(probe), scaler.transform(probe)
        )

    def test_unfitted_scaler_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_scaler(StandardScaler(), tmp_path / "scaler.npz")
