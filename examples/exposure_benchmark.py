#!/usr/bin/env python3
"""Head-to-head: graph embeddings vs the Exposure baseline (section 8.2).

Trains both systems on the *same* labeled data from one simulated
capture and compares 10-fold cross-validated AUC:

* ours — LINE embeddings of the three behavioral similarity views,
  RBF SVM with the paper's hyperparameters;
* Exposure — J48 decision tree over time / DNS-answer / TTL / lexical
  statistics (Bilge et al., TISSEC 2014).

Run:  python examples/exposure_benchmark.py
"""

from __future__ import annotations

from repro import (
    IntelligenceFeed,
    MaliciousDomainDetector,
    PipelineConfig,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
)
from repro.analysis.reporting import format_roc_ascii, format_series_table
from repro.baselines import ExposureClassifier, ExposureFeatureExtractor
from repro.core.detector import MaliciousDomainClassifier
from repro.embedding.line import LineConfig
from repro.ml import cross_validated_scores, roc_auc_score, roc_curve


def main() -> None:
    print("simulating the evaluation capture...")
    trace = TraceGenerator(SimulationConfig.tiny(seed=31)).generate()

    detector = MaliciousDomainDetector(
        PipelineConfig(embedding=LineConfig(dimension=16, seed=4))
    )
    detector.process(trace.queries, trace.responses, trace.dhcp)
    feed = IntelligenceFeed(trace.ground_truth)
    virustotal = SimulatedVirusTotal(trace.ground_truth)
    dataset = build_labeled_dataset(feed, virustotal, detector.domains)
    print(
        f"labeled set: {len(dataset)} domains, "
        f"{dataset.malicious_fraction:.0%} malicious"
    )

    print("\nscoring with graph embeddings + SVM (10-fold CV)...")
    ours_features = detector.features_for(dataset.domains)
    ours_scores, __ = cross_validated_scores(
        ours_features, dataset.labels, MaliciousDomainClassifier, n_splits=10
    )
    ours_auc = roc_auc_score(dataset.labels, ours_scores)

    print("scoring with Exposure features + J48 (10-fold CV)...")
    extractor = ExposureFeatureExtractor()
    exposure_features = extractor.extract(trace.queries, trace.responses)
    exposure_matrix = exposure_features.rows_for(dataset.domains)
    exposure_scores, __ = cross_validated_scores(
        exposure_matrix, dataset.labels, ExposureClassifier, n_splits=10
    )
    exposure_auc = roc_auc_score(dataset.labels, exposure_scores)

    improvement = (ours_auc - exposure_auc) / exposure_auc * 100.0
    print()
    print(
        format_series_table(
            ["system", "AUC (paper)", "AUC (measured)"],
            [
                ["embeddings + SVM", 0.94, ours_auc],
                ["Exposure (J48)", 0.88, exposure_auc],
                ["improvement %", 6.8, improvement],
            ],
        )
    )

    fpr, tpr, __ = roc_curve(dataset.labels, ours_scores)
    print("\nROC — embeddings + SVM")
    print(format_roc_ascii(fpr, tpr))


if __name__ == "__main__":
    main()
