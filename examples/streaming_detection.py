#!/usr/bin/env python3
"""Streaming detection: score domains as traffic arrives.

The paper motivates catching malicious domains "during the very early
stage of their operations" (section 2). This example replays a simulated
capture day by day through :class:`repro.core.streaming.StreamingDetector`,
refreshing the model each day and tracking how detection quality improves
as behavioral evidence accumulates.

Run:  python examples/streaming_detection.py
"""

from __future__ import annotations

from repro import (
    IntelligenceFeed,
    PipelineConfig,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
)
from repro.analysis.reporting import format_series_table
from repro.core.streaming import StreamingDetector
from repro.embedding.line import LineConfig
from repro.ml import roc_auc_score

SECONDS_PER_DAY = 86_400.0


def main() -> None:
    config = SimulationConfig.tiny(seed=19)
    config.duration_days = 4.0
    print("simulating a 4-day campus capture...")
    trace = TraceGenerator(config).generate()
    merged = sorted(
        [*trace.queries, *trace.responses], key=lambda r: r.timestamp
    )

    feed = IntelligenceFeed(trace.ground_truth)
    virustotal = SimulatedVirusTotal(trace.ground_truth)
    stream = StreamingDetector(
        PipelineConfig(
            embedding=LineConfig(dimension=16, total_samples=150_000, seed=8)
        ),
        dhcp=trace.dhcp,
    )

    rows = []
    cursor = 0
    for day in range(1, int(config.duration_days) + 1):
        cutoff = day * SECONDS_PER_DAY
        batch = []
        while cursor < len(merged) and merged[cursor].timestamp < cutoff:
            batch.append(merged[cursor])
            cursor += 1
        stream.ingest(batch)

        dataset = build_labeled_dataset(
            feed, virustotal, sorted(stream.builder.host_domain.adjacency)
        )
        stream.refresh(dataset)
        scores = stream.score(dataset.domains)
        auc = roc_auc_score(dataset.labels, scores)
        rows.append(
            [
                day,
                len(batch),
                len(stream.known_domains),
                len(dataset),
                auc,
            ]
        )
        print(
            f"day {day}: ingested {len(batch)} records, "
            f"{len(stream.known_domains)} domains in model, AUC {auc:.3f}"
        )

    print()
    print(
        format_series_table(
            ["day", "records", "model domains", "labeled", "AUC"], rows
        )
    )
    print(
        "\nThe model stays usable from day one and absorbs newly observed "
        "domains at each refresh — no need to wait for a full month of "
        "logs before scoring."
    )


if __name__ == "__main__":
    main()
