#!/usr/bin/env python3
"""Quickstart: detect malicious domains in a simulated campus trace.

Runs the paper's full pipeline end to end on a small trace:

1. simulate a campus DNS capture (hosts, browsing, malware infections);
2. build the three bipartite graphs and prune them (section 4.1);
3. project to domain-similarity graphs and embed with LINE (sections
   4.2, 5);
4. assemble labels from the simulated intelligence feed + VirusTotal
   validation (section 6.1) and train the RBF SVM (section 6.2);
5. score held-out domains and report accuracy.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    IntelligenceFeed,
    MaliciousDomainDetector,
    PipelineConfig,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
)
from repro.embedding.line import LineConfig
from repro.ml import f1_score, precision_score, recall_score, roc_auc_score
from repro.ml.model_selection import train_test_split


def main() -> None:
    print("=== 1. Simulating a campus DNS capture ===")
    config = SimulationConfig.tiny(seed=42)
    trace = TraceGenerator(config).generate()
    print(trace.metadata.description)
    print(f"{trace.query_count} queries captured\n")

    print("=== 2-3. Graphs, projections, LINE embeddings ===")
    detector = MaliciousDomainDetector(
        PipelineConfig(embedding=LineConfig(dimension=16, seed=1))
    )
    detector.build_graphs(trace.queries, trace.responses, trace.dhcp)
    print(detector.pruning_report.summary())
    detector.build_similarity_graphs()
    for view, graph in detector.similarity_graphs.items():
        print(
            f"  {view.value:9s} similarity graph: "
            f"{graph.node_count} domains, {graph.edge_count} edges"
        )
    feature_space = detector.learn_embeddings()
    print(f"feature dimension: {feature_space.dimension} (3k)\n")

    print("=== 4. Labels and SVM training ===")
    feed = IntelligenceFeed(trace.ground_truth)
    virustotal = SimulatedVirusTotal(trace.ground_truth)
    dataset = build_labeled_dataset(feed, virustotal, detector.domains)
    print(
        f"labeled set: {len(dataset)} domains "
        f"({dataset.malicious_count} malicious / {dataset.benign_count} benign)"
    )

    features = detector.features_for(dataset.domains)
    train_x, test_x, train_y, test_y = train_test_split(
        features, dataset.labels, test_fraction=0.3, seed=7
    )
    from repro.core.detector import MaliciousDomainClassifier

    classifier = MaliciousDomainClassifier().fit(train_x, train_y)
    print(f"trained with {classifier.support_vector_count} support vectors\n")

    print("=== 5. Held-out evaluation ===")
    scores = classifier.decision_function(test_x)
    predictions = classifier.predict(test_x)
    print(f"AUC       {roc_auc_score(test_y, scores):.3f}")
    print(f"precision {precision_score(test_y, predictions):.3f}")
    print(f"recall    {recall_score(test_y, predictions):.3f}")
    print(f"F1        {f1_score(test_y, predictions):.3f}")

    # Show a few concrete verdicts.
    print("\nsample verdicts (score > 0 => malicious):")
    sample = np.random.default_rng(3).choice(len(dataset), 8, replace=False)
    sample_domains = [dataset.domains[int(i)] for i in sample]
    sample_scores = classifier.decision_function(features[sample])
    for domain, score in zip(sample_domains, sample_scores):
        actual = "malicious" if trace.ground_truth.is_malicious(domain) else "benign"
        print(f"  {domain:28s} d(x)={score:+.3f}   truth: {actual}")


if __name__ == "__main__":
    main()
