#!/usr/bin/env python3
"""DGA hunting: grow a handful of confirmed seeds into whole botnets.

Reproduces the paper's section 7 workflow: cluster the domain embedding
space with X-Means, start from a few confirmed malicious seed domains,
treat every cluster containing a seed as malicious, and validate the
newly discovered members with the (simulated) VirusTotal API — splitting
them into *true* and *suspicious* discoveries (Figure 4).

Run:  python examples/dga_hunting.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MaliciousDomainDetector,
    PipelineConfig,
    SimulatedThreatBook,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    expand_from_seeds,
)
from repro.core.clustering import DomainClusterer
from repro.embedding.line import LineConfig


def main() -> None:
    print("simulating a campus capture with several DGA botnets...")
    config = SimulationConfig.tiny(seed=11)
    config.malware.dga_botnet_count = 2
    config.malware.domains_per_dga_family = 40
    trace = TraceGenerator(config).generate()

    detector = MaliciousDomainDetector(
        PipelineConfig(embedding=LineConfig(dimension=16, seed=2))
    )
    detector.process(trace.queries, trace.responses, trace.dhcp)
    print(f"{len(detector.domains)} domains survive pruning")

    print("\nclustering the embedding space with X-Means...")
    clusterer = DomainClusterer(k_min=4, k_max=40, seed=5)
    clusters = clusterer.fit(
        detector.domains, detector.features_for(detector.domains)
    )
    print(f"{len(clusters)} clusters discovered")

    threatbook = SimulatedThreatBook(trace.ground_truth)
    for report in clusterer.annotate(threatbook):
        if report.dominant_category != "unknown" and report.category_share > 0.4:
            members = report.cluster.domains
            print(
                f"  cluster {report.cluster.cluster_id:3d}: {len(members):4d} "
                f"domains, {report.category_share:.0%} reported "
                f"{report.dominant_category}  e.g. {', '.join(members[:3])}"
            )

    # Seed expansion: pretend the analyst only knows a few DGA domains.
    truth = trace.ground_truth
    dga_domains = [
        d for d in detector.domains
        if truth.get(d) is not None and truth.record(d).family.startswith("dga")
    ]
    rng = np.random.default_rng(0)
    seeds = [dga_domains[int(i)] for i in rng.choice(len(dga_domains), 5, replace=False)]
    print(f"\nexpanding from {len(seeds)} seed domains: {seeds}")

    virustotal = SimulatedVirusTotal(truth)
    result = expand_from_seeds(clusters, seeds, virustotal)
    print(
        f"discovered {result.discovered_true} VT-confirmed (true) and "
        f"{result.discovered_suspicious} suspicious domains"
    )
    genuinely_malicious = sum(
        truth.is_malicious(d)
        for d in result.true_domains + result.suspicious_domains
    )
    total = result.discovered_true + result.discovered_suspicious
    if total:
        print(f"expansion precision vs ground truth: {genuinely_malicious / total:.0%}")
    print("\nsample discoveries:")
    for domain in (result.true_domains + result.suspicious_domains)[:10]:
        record = truth.get(domain)
        kind = record.category.value if record else "?"
        print(f"  {domain:28s} ({kind})")


if __name__ == "__main__":
    main()
