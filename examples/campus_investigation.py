#!/usr/bin/env python3
"""Campus investigation: an analyst's end-to-end session.

Walks the full workflow of the paper's Figure 2 system over a simulated
capture, the way a security analyst would use it:

* traffic overview (Figure 1-style statistics);
* behavioral modeling and pruning report;
* detection with the trained SVM, listing the highest-scoring domains;
* cluster mining with ThreatBook-style annotation (section 7.1);
* netflow join to profile one malicious cluster's infrastructure
  (section 7.2.2).

Run:  python examples/campus_investigation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    IntelligenceFeed,
    MaliciousDomainDetector,
    PipelineConfig,
    SimulatedThreatBook,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
)
from repro.analysis.reporting import format_series_table
from repro.analysis.stats import compute_traffic_statistics
from repro.core.clustering import DomainClusterer
from repro.embedding.line import LineConfig
from repro.netflow import NetflowSimulator, mine_cluster_patterns


def main() -> None:
    config = SimulationConfig.tiny(seed=23)
    config.duration_days = 2.0
    trace = TraceGenerator(config).generate()

    print("=== Traffic overview (Figure 1) ===")
    stats = compute_traffic_statistics(trace.queries, bin_seconds=3600.0)
    print(
        format_series_table(
            ["metric", "value"],
            [
                ["queries", stats.total_queries],
                ["unique FQDNs", stats.total_unique_fqdns],
                ["unique e2LDs", stats.total_unique_e2lds],
                ["peak hour volume", int(stats.query_volume.max())],
            ],
        )
    )

    print("\n=== Behavioral modeling ===")
    detector = MaliciousDomainDetector(
        PipelineConfig(embedding=LineConfig(dimension=16, seed=3))
    )
    detector.build_graphs(trace.queries, trace.responses, trace.dhcp)
    print(detector.pruning_report.summary())
    detector.build_similarity_graphs()
    detector.learn_embeddings()

    print("\n=== Supervised detection ===")
    feed = IntelligenceFeed(trace.ground_truth)
    virustotal = SimulatedVirusTotal(trace.ground_truth)
    dataset = build_labeled_dataset(feed, virustotal, detector.domains)
    detector.fit(dataset)

    # Score the whole campus domain population, flag the worst.
    scores = detector.decision_scores(detector.domains)
    order = np.argsort(-scores)
    print("top-scoring domains (d(x) per equation 7):")
    for rank in order[:10]:
        domain = detector.domains[int(rank)]
        truth = (
            "malicious"
            if trace.ground_truth.is_malicious(domain)
            else "benign"
        )
        print(f"  {scores[rank]:+.3f}  {domain:30s} truth: {truth}")

    print("\n=== Cluster mining (section 7.1) ===")
    clusterer = DomainClusterer(k_min=4, k_max=30, seed=9)
    clusters = clusterer.fit(
        detector.domains, detector.features_for(detector.domains)
    )
    threatbook = SimulatedThreatBook(trace.ground_truth)
    reports = clusterer.annotate(threatbook)
    malicious_reports = [
        r for r in reports if r.dominant_category != "unknown"
    ]
    for report in malicious_reports[:6]:
        print(
            f"  cluster {report.cluster.cluster_id:3d}: "
            f"{len(report.cluster):4d} domains, "
            f"{report.category_share:.0%} {report.dominant_category}"
        )

    print("\n=== Infrastructure profile via netflow (section 7.2.2) ===")
    simulator = NetflowSimulator(trace.ground_truth, seed=1)
    flows = list(simulator.flows_from(trace.responses))
    print(f"{len(flows)} flows at the campus edge")
    if malicious_reports:
        target = max(malicious_reports, key=lambda r: r.category_share)
        patterns = mine_cluster_patterns([target.cluster], flows)
        print(patterns[0].summary())

    print("\n=== Compromised host groups (Figure 3(c) host projection) ===")
    from repro.graphs import find_infected_host_groups

    cutoff = detector.classifier.threshold_
    flagged = [
        detector.domains[int(i)] for i in order if scores[int(i)] > cutoff
    ] or [detector.domains[int(order[0])]]
    groups = find_infected_host_groups(detector.host_domain, flagged)
    for group in groups[:3]:
        print(
            f"  {len(group.hosts)} hosts sharing "
            f"{len(group.shared_malicious_domains)} flagged domain(s), "
            f"cohesion {group.cohesion:.2f}: {', '.join(group.hosts[:4])}..."
        )
    if not groups:
        print("  (no multi-host groups above threshold)")


if __name__ == "__main__":
    main()
