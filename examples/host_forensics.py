#!/usr/bin/env python3
"""Host forensics: find compromised machines, not just bad domains.

The paper's Figure 3(c) notes that projecting the host-domain bipartite
graph onto the *host* side captures shared domain interests — and
section 7.2.2 observes that the hosts talking to one malicious cluster
"are indeed controlled by the same botnet". This example turns that into
an incident-response workflow:

1. detect malicious domains with the standard pipeline;
2. group the hosts that jointly query them into infection clusters;
3. resolve each host back to its physical device via the DHCP log.

Run:  python examples/host_forensics.py
"""

from __future__ import annotations

from repro import (
    IntelligenceFeed,
    MaliciousDomainDetector,
    PipelineConfig,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
)
from repro.embedding.line import LineConfig
from repro.graphs import find_infected_host_groups, project_hosts


def main() -> None:
    print("simulating a campus capture with botnet infections...")
    config = SimulationConfig.tiny(seed=37)
    config.duration_days = 2.0
    trace = TraceGenerator(config).generate()

    detector = MaliciousDomainDetector(
        PipelineConfig(embedding=LineConfig(dimension=16, seed=6))
    )
    detector.process(trace.queries, trace.responses, trace.dhcp)
    feed = IntelligenceFeed(trace.ground_truth)
    virustotal = SimulatedVirusTotal(trace.ground_truth)
    dataset = build_labeled_dataset(feed, virustotal, detector.domains)
    detector.fit(dataset)

    scores = detector.decision_scores(detector.domains)
    cutoff = detector.classifier.threshold_
    flagged = [
        domain
        for domain, score in zip(detector.domains, scores)
        if score > cutoff
    ]
    print(f"{len(flagged)} domains flagged malicious\n")

    print("=== Infection clusters (hosts sharing flagged domains) ===")
    groups = find_infected_host_groups(
        detector.host_domain, flagged, min_shared_domains=4
    )
    truth = trace.ground_truth
    for rank, group in enumerate(groups[:5], start=1):
        families = {
            truth.record(d).family
            for d in group.shared_malicious_domains
            if truth.get(d) is not None
        }
        print(
            f"group {rank}: {len(group.hosts)} devices, "
            f"{len(group.shared_malicious_domains)} shared flagged domains, "
            f"cohesion {group.cohesion:.2f}"
        )
        print(f"  devices (MACs): {', '.join(group.hosts[:5])}")
        if families:
            print(f"  ground-truth families touched: {sorted(families)}")
    if not groups:
        print("  none found")

    print("\n=== Host similarity neighborhood of one infected device ===")
    if groups:
        similarity = project_hosts(detector.host_domain)
        suspect = groups[0].hosts[0]
        neighbors = sorted(
            similarity.neighbors_of(suspect), key=lambda kv: -kv[1]
        )[:5]
        print(f"devices with the most similar domain interests to {suspect}:")
        for mac, weight in neighbors:
            marker = (
                " <- same infection group"
                if mac in groups[0].hosts
                else ""
            )
            print(f"  {mac}  similarity {weight:.2f}{marker}")


if __name__ == "__main__":
    main()
