#!/usr/bin/env python3
"""Federated detection across two campuses (paper section 10 future work).

Two campus networks are hit by the same malware campaigns (shared global
threat infrastructure) but have different local traffic. Each campus runs
its own detector and shares only verdicts and cluster memberships; the
federation layer then:

* ranks domains by cross-site consensus (independent detections at
  several sites outrank single-site ones);
* links site-local clusters into cross-campus campaigns through shared
  domains and resolved addresses.

Run:  python examples/federated_campuses.py
"""

from __future__ import annotations

from repro import (
    IntelligenceFeed,
    MaliciousDomainDetector,
    PipelineConfig,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
)
from repro.analysis.federation import (
    SiteVerdicts,
    correlate_verdicts,
    match_campaigns,
)
from repro.analysis.reporting import format_series_table
from repro.core.clustering import DomainClusterer
from repro.embedding.line import LineConfig


def run_campus(name: str, seed: int, malware_seed: int):
    print(f"[{name}] simulating and analyzing...")
    config = SimulationConfig.tiny(seed=seed)
    config.malware_seed = malware_seed
    config.duration_days = 2.0
    trace = TraceGenerator(config).generate()
    detector = MaliciousDomainDetector(
        PipelineConfig(
            embedding=LineConfig(dimension=16, total_samples=200_000, seed=seed)
        )
    )
    detector.process(trace.queries, trace.responses, trace.dhcp)
    feed = IntelligenceFeed(trace.ground_truth)
    virustotal = SimulatedVirusTotal(trace.ground_truth)
    dataset = build_labeled_dataset(feed, virustotal, detector.domains)
    detector.fit(dataset)
    clusterer = DomainClusterer(k_min=4, k_max=30, seed=seed)
    clusters = clusterer.fit(
        detector.domains, detector.features_for(detector.domains)
    )
    # Share threshold-centered scores: >0 means "this site flags it".
    scores = (
        detector.decision_scores(detector.domains)
        - detector.classifier.threshold_
    )
    verdicts = SiteVerdicts(
        site=name,
        scores=dict(zip(detector.domains, scores)),
        clusters=clusters,
        domain_ips={d: detector.domain_ip.neighbors(d) for d in detector.domains},
    )
    return verdicts, trace.ground_truth


def main() -> None:
    # Shared malware_seed -> the same campaigns hit both sites; different
    # base seeds -> local hosts and benign traffic differ.
    site_a, truth = run_campus("campus-a", seed=61, malware_seed=99)
    site_b, __ = run_campus("campus-b", seed=62, malware_seed=99)

    print("\n=== Federated consensus ranking ===")
    verdicts = correlate_verdicts([site_a, site_b])
    rows = []
    for verdict in verdicts[:12]:
        rows.append(
            [
                verdict.domain,
                verdict.sites_flagged,
                verdict.consensus_score,
                "malicious" if truth.is_malicious(verdict.domain) else "benign",
            ]
        )
    print(
        format_series_table(
            ["domain", "sites flagged", "consensus", "ground truth"], rows
        )
    )

    print("\n=== Cross-campus campaign matches ===")
    matches = match_campaigns([site_a, site_b], min_shared_domains=2)
    for match in matches[:5]:
        sample = sorted(match.shared_domains)[:4]
        print(
            f"  {match.site_a}#{match.cluster_a} <-> "
            f"{match.site_b}#{match.cluster_b}: "
            f"{len(match.shared_domains)} shared domains, "
            f"{len(match.shared_ips)} shared IPs  e.g. {', '.join(sample)}"
        )
    if not matches:
        print("  (no matches above threshold)")


if __name__ == "__main__":
    main()
