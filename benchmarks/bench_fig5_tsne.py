"""Figure 5 — t-SNE visualization of domain clusters.

Paper: five randomly selected domain clusters, embedded to 2-D with
t-SNE, appear as compact well-separated groups — evidence that the graph
embedding places associated domains close together.

Reproduction: pick five discovered clusters, t-SNE their members'
embedding vectors, and quantify the layout with a silhouette-style
separation score (within-cluster spread vs between-centroid distance).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series_table
from repro.embedding.tsne import TsneConfig, tsne_embed

CLUSTER_COUNT = 5


def test_fig5_cluster_visualization(benchmark, bench_detector, malicious_clusters):
    __, clusters = malicious_clusters
    rng = np.random.default_rng(4)
    usable = [c for c in clusters if 10 <= len(c) <= 150]
    assert len(usable) >= CLUSTER_COUNT, "not enough mid-sized clusters"
    picks = rng.choice(len(usable), size=CLUSTER_COUNT, replace=False)
    chosen = [usable[int(i)] for i in picks]

    domains = [d for c in chosen for d in c.domains]
    membership = np.concatenate(
        [np.full(len(c), i) for i, c in enumerate(chosen)]
    )
    vectors = bench_detector.features_for(domains)

    def run_tsne():
        return tsne_embed(
            vectors,
            TsneConfig(perplexity=20.0, iterations=500, seed=2),
        )

    layout = benchmark.pedantic(run_tsne, rounds=1, iterations=1)

    centroids = np.array(
        [layout[membership == i].mean(axis=0) for i in range(CLUSTER_COUNT)]
    )
    spreads = np.array(
        [
            np.linalg.norm(
                layout[membership == i] - centroids[i], axis=1
            ).mean()
            for i in range(CLUSTER_COUNT)
        ]
    )
    gaps = [
        np.linalg.norm(centroids[i] - centroids[j])
        for i in range(CLUSTER_COUNT)
        for j in range(i + 1, CLUSTER_COUNT)
    ]

    rows = [
        [i, len(chosen[i]), spreads[i]] for i in range(CLUSTER_COUNT)
    ]
    print()
    print("Figure 5 — t-SNE layout of five domain clusters")
    print(format_series_table(["cluster", "size", "2-D spread"], rows))
    print(
        f"min centroid gap: {min(gaps):.2f}   "
        f"mean within-cluster spread: {spreads.mean():.2f}"
    )

    # The figure's claim: associated domains land close together — the
    # typical cluster is far tighter than the distance between clusters.
    assert np.median(spreads) < 0.5 * np.median(gaps)
    assert np.all(np.isfinite(layout))
