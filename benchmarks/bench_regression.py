"""Benchmark-regression harness: the repo's performance trajectory.

Runs the detection pipeline on a small fixed-seed trace and emits a
machine-readable JSON point — per-stage wall times (from the
``repro.obs`` snapshot), LINE throughput, alias-table build time, peak
RSS, and serial-vs-parallel embedding timings. CI runs this on every
push (``--baseline BENCH_baseline.json``) and fails when any tracked
metric regresses more than the tolerance, so "make the hot path faster"
claims stay honest and silent slowdowns can't land.

Usage::

    PYTHONPATH=src python benchmarks/bench_regression.py --out BENCH_ci.json
    PYTHONPATH=src python benchmarks/bench_regression.py \
        --out BENCH_ci.json --baseline BENCH_baseline.json --tolerance 0.25
    PYTHONPATH=src python benchmarks/bench_regression.py \
        --update-baseline BENCH_baseline.json

Wall-clock numbers are machine-dependent: regenerate the baseline
(``--update-baseline``) when the reference hardware changes, and read
cross-machine deltas as trajectory, not truth. The ``speedup`` field is
informational only (it collapses to ~1.0 on single-core runners, which
would make gating on it flaky).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

SCHEMA_VERSION = 1

#: Metric -> improvement direction. "lower" metrics regress when they
#: grow past baseline * (1 + tolerance); "higher" metrics regress when
#: they fall below baseline * (1 - tolerance).
TRACKED_METRICS = {
    "stage.pipeline.ingest.seconds": "lower",
    "stage.pipeline.prune.seconds": "lower",
    "stage.pipeline.project.seconds": "lower",
    "stage.pipeline.embed.seconds": "lower",
    "stage.pipeline.classify.seconds": "lower",
    "stage_engine_overhead_seconds": "lower",
    "graph_build_seconds": "lower",
    "pruning_seconds": "lower",
    "projection_seconds": "lower",
    "line.edges_per_sec": "higher",
    "line.edges_per_sec.segment": "higher",
    "line.edges_per_sec.add_at": "higher",
    "alias.build_seconds": "lower",
    "embedding.serial_seconds": "lower",
    "embedding.parallel_seconds": "lower",
    "serve_score_p50_us": "lower",
    "serve_shed_rate": "higher",
    "serve_p99_under_load_us": "lower",
    "svm_fit_seconds": "lower",
    "svm_fit_peak_mb": "lower",
    "cv.parallel_identical": "higher",
    "peak_rss_mb": "lower",
    "ingest_peak_rss_mb": "lower",
}


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (Linux: KiB units)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return peak / divisor


def _timed(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time: the min is far less noisy than any
    single run on a loaded machine (noise is strictly additive)."""
    best = float("inf")
    for __ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_alias(seed: int, repeats: int) -> dict[str, float]:
    """Alias-table construction cost on 1M weights (and the old loop)."""
    from repro.embedding.alias import build_alias_tables

    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.0, 1.0, 1_000_000)
    vectorized = _timed(lambda: build_alias_tables(weights), repeats + 1)
    loop_weights = weights[:200_000]
    loop = _timed(
        lambda: build_alias_tables(loop_weights, vectorized=False), repeats
    )
    return {
        "alias.build_seconds": vectorized,
        "alias.loop_build_seconds_200k": loop,
    }


def _bench_graph_stages(trace, repeats: int) -> dict[str, float]:
    """Best-of-N wall times for the columnar graph stages in isolation.

    Unlike the ``stage.*`` obs sums (one-shot, measured inside the full
    pipeline run), these are dedicated best-of-``repeats`` timings of
    build -> prune -> project on the bare graph layer, so regressions in
    the columnar core surface even when pipeline noise would hide them.
    Each build starts from a fresh shared :class:`VertexTable`, matching
    how the pipeline threads one domain table through all three views.
    """
    from repro.graphs import (
        VertexTable,
        build_domain_ip_graph,
        build_query_graphs,
        project_to_similarity,
        prune_graphs,
    )

    queries, responses = trace.queries, trace.responses
    state: dict[str, object] = {}

    def _build():
        domains = VertexTable()
        host, times = build_query_graphs(queries, domains=domains)
        ips = build_domain_ip_graph(responses, domains=domains)
        state["graphs"] = (host, ips, times)

    build_seconds = _timed(_build, repeats + 1)
    host, ips, times = state["graphs"]  # type: ignore[misc]

    def _prune():
        state["pruned"] = prune_graphs(host, ips, times)

    pruning_seconds = _timed(_prune, repeats + 1)
    pruned_host, pruned_ips, pruned_times, __ = state["pruned"]  # type: ignore[misc]

    def _project():
        for graph in (pruned_host, pruned_ips, pruned_times):
            project_to_similarity(graph)

    projection_seconds = _timed(_project, repeats + 1)
    return {
        "graph_build_seconds": build_seconds,
        "pruning_seconds": pruning_seconds,
        "projection_seconds": projection_seconds,
    }


def _bench_serve_scorer(detector, repeats: int) -> dict[str, float]:
    """Median single-domain scoring latency through the serving layer.

    Packages the fitted detector into a :class:`ModelBundle` and times
    uncached :class:`DomainScorer` lookups (cache_size=0, so every call
    pays the full gather -> scale -> decision-function path). Reported
    as the p50 in microseconds over a round-robin of known domains;
    best-of-``repeats`` to shed scheduler noise.
    """
    from repro.serve import DomainScorer, ModelBundle

    bundle = ModelBundle.from_detector(detector)
    scorer = DomainScorer(bundle, cache_size=0)
    domains = bundle.domains[: min(64, len(bundle.domains))]
    calls = 400

    best_p50 = float("inf")
    for __ in range(max(1, repeats)):
        samples = np.empty(calls)
        for i in range(calls):
            domain = domains[i % len(domains)]
            started = time.perf_counter()
            scorer.score(domain)
            samples[i] = time.perf_counter() - started
        best_p50 = min(best_p50, float(np.median(samples)))
    return {"serve_score_p50_us": best_p50 * 1e6}


# Child script for _bench_ingest_rss: chunked graph construction over an
# on-disk trace, printing the process's own peak RSS in MiB. Runs in a
# fresh interpreter because ru_maxrss measured in the parent would be
# dominated by the alias/embedding benches above. The child samples
# current RSS from /proc/self/statm at chunk boundaries instead of
# trusting its own ru_maxrss: on some kernels the high-water mark
# survives exec, so a fresh child would just echo the parent's peak.
_INGEST_RSS_CHILD = """
import os, resource, sys
sys.path[:0] = {sys_path!r}
from repro.dns.dhcp import DhcpLog, HostIdentityResolver
from repro.graphs.bipartite import BipartiteGraph, fold_records_into_graphs
from repro.graphs.core import VertexTable
from repro.ingest import ChunkPolicy, ChunkedTraceReader

def rss_bytes():
    try:
        with open("/proc/self/statm") as stream:
            return int(stream.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError):
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak * (1024 if sys.platform != "darwin" else 1)

identity = HostIdentityResolver(DhcpLog.load({trace_dir!r} + "/dhcp.log"))
table = VertexTable()
graphs = (
    BipartiteGraph(kind="host", left=table),
    BipartiteGraph(kind="ip", left=table),
    BipartiteGraph(kind="time", left=table),
)
peak = rss_bytes()
with ChunkedTraceReader(
    {trace_dir!r} + "/dns.log", ChunkPolicy(max_records={chunk_records})
) as reader:
    for batch in reader:
        fold_records_into_graphs(
            batch.records, *graphs, identity=identity, window_seconds=60.0
        )
        peak = max(peak, rss_bytes())
print(peak / (1024.0 * 1024.0))
"""


def _bench_ingest_rss(trace, chunk_records: int = 5_000) -> dict[str, float]:
    """Peak RSS (MiB) of chunked out-of-core graph construction."""
    with tempfile.TemporaryDirectory() as tmp:
        trace.save(Path(tmp))
        child = _INGEST_RSS_CHILD.format(
            sys_path=sys.path, trace_dir=tmp, chunk_records=chunk_records
        )
        result = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True,
            text=True,
            check=True,
        )
    return {"ingest_peak_rss_mb": float(result.stdout.strip().splitlines()[-1])}


def _bench_serve_load(detector, repeats: int) -> tuple[
    dict[str, float], dict[str, float]
]:
    """Closed-loop overload benchmark through the HTTP scoring service.

    Publishes the fitted detector into a registry, starts a
    :class:`ScoringService` with a deliberately small admission limit,
    injects a fixed scorer latency (so configured capacity, not
    hardware speed, bounds throughput), and drives a closed loop of
    concurrent clients against it. Two tracked numbers fall out:

    * ``serve_shed_rate`` ("higher") — the fraction of attempts shed
      with 429. Under this fixed overload the admission controller must
      keep refusing excess work; a falling shed rate means requests are
      piling up inside the service instead.
    * ``serve_p99_under_load_us`` ("lower") — p99 latency of *accepted*
      requests. Shedding exists precisely so that admitted work stays
      fast; queue bloat shows up here first.
    """
    import http.client
    import threading

    from repro.obs.metrics import MetricsRegistry
    from repro.serve import (
        ModelBundle,
        ModelRegistry,
        ScoringService,
        ServiceConfig,
    )

    bundle = ModelBundle.from_detector(detector)
    clients, per_client = 12, 10
    injected_latency = 0.005

    best_p99 = float("inf")
    shed_total = 0
    accepted_total = 0
    other_total = 0

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(Path(tmp) / "models")
        registry.publish(bundle)
        service = ScoringService(
            registry,
            ServiceConfig(
                port=0,
                max_inflight=2,
                queue_depth=4,
                deadline_seconds=10.0,
                batch_window_seconds=0.001,
                request_timeout_seconds=30.0,
            ),
            metrics=MetricsRegistry(),
        )
        __, port = service.start()
        try:
            service.faults.inject(
                "scorer.score_batch",
                latency_seconds=injected_latency,
                times=None,
            )
            domains = bundle.domains
            for __ in range(max(1, repeats)):
                latencies: list[float] = []
                outcomes = {"shed": 0, "other": 0}
                lock = threading.Lock()

                def _client(offset: int) -> None:
                    for i in range(per_client):
                        domain = domains[(offset + i) % len(domains)]
                        connection = http.client.HTTPConnection(
                            "127.0.0.1", port, timeout=30
                        )
                        started = time.perf_counter()
                        try:
                            connection.request(
                                "POST",
                                "/v1/score",
                                body=json.dumps({"domain": domain}).encode(),
                            )
                            response = connection.getresponse()
                            response.read()
                        finally:
                            connection.close()
                        elapsed = time.perf_counter() - started
                        with lock:
                            if response.status == 200:
                                latencies.append(elapsed)
                            elif response.status == 429:
                                outcomes["shed"] += 1
                            else:
                                outcomes["other"] += 1

                threads = [
                    threading.Thread(target=_client, args=(k * 3,))
                    for k in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                if latencies:
                    best_p99 = min(
                        best_p99, float(np.percentile(latencies, 99))
                    )
                shed_total += outcomes["shed"]
                other_total += outcomes["other"]
                accepted_total += len(latencies)
        finally:
            service.stop()

    attempts = shed_total + other_total + accepted_total
    metrics = {
        "serve_shed_rate": shed_total / max(attempts, 1),
        "serve_p99_under_load_us": best_p99 * 1e6,
    }
    info = {
        "serve.load_attempts": float(attempts),
        "serve.load_accepted": float(accepted_total),
        "serve.load_failed": float(other_total),
        "serve.load_injected_latency_us": injected_latency * 1e6,
    }
    return metrics, info


def _bench_svm_solver(seed: int, repeats: int) -> tuple[
    dict[str, float], dict[str, float]
]:
    """Cached-solver fit time and peak memory vs the dense Gram matrix.

    Fits the cached SMO solver on an n=1200 workload under a small
    ``kernel_cache_mb`` budget and measures its tracemalloc peak. The
    FATAL gate asserts the tentpole claim: solver memory is bounded by
    the cache budget (plus O(n) solver state), not by the n x n Gram
    matrix the dense reference allocates.
    """
    import tracemalloc

    from repro.ml.svm import SupportVectorClassifier

    rng = np.random.default_rng(seed)
    n, dims = 1200, 8
    features = rng.normal(size=(n, dims))
    labels = (
        features[:, 0] + 0.5 * features[:, 1] + 0.3 * rng.normal(size=n) > 0
    ).astype(int)
    cache_mb = 4.0

    def _model(solver: str) -> SupportVectorClassifier:
        return SupportVectorClassifier(
            solver=solver, kernel_cache_mb=cache_mb, c=1.0, gamma=0.1
        )

    metrics: dict[str, float] = {}
    info: dict[str, float] = {}
    metrics["svm_fit_seconds"] = _timed(
        lambda: _model("cached").fit(features, labels), repeats
    )

    def _traced_peak_mb(solver: str) -> float:
        tracemalloc.start()
        try:
            _model(solver).fit(features, labels)
            __, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak / (1024.0 * 1024.0)

    metrics["svm_fit_peak_mb"] = _traced_peak_mb("cached")
    info["svm.dense_fit_peak_mb"] = _traced_peak_mb("dense")
    dense_gram_mb = n * n * 8 / (1024.0 * 1024.0)
    info["svm.dense_gram_mb"] = dense_gram_mb
    info["svm.cache_budget_mb"] = cache_mb
    # Budget + O(n) solver state (alpha/gradient/masks) + numpy temp
    # headroom; far below the n^2 Gram footprint either way.
    peak_limit = cache_mb * 2.0 + 2.0
    if metrics["svm_fit_peak_mb"] > min(peak_limit, dense_gram_mb):
        print(
            "FATAL: cached-solver peak "
            f"{metrics['svm_fit_peak_mb']:.2f} MiB exceeds its budget-"
            f"bound limit {peak_limit:.2f} MiB "
            f"(dense Gram would be {dense_gram_mb:.2f} MiB)",
            file=sys.stderr,
        )
        raise SystemExit(1)
    return metrics, info


def _bench_parallel_cv(args: argparse.Namespace) -> tuple[
    dict[str, float], dict[str, float]
]:
    """Serial vs parallel grid-search over the bench grid.

    Runs the same (cell x fold) grid through the serial path and the
    configured worker pool and asserts the evaluations are *exactly*
    equal — the ``cv.parallel_identical`` determinism contract. Wall
    times for both modes are recorded; the speedup itself stays
    informational (single-core runners would make gating on it flaky).
    """
    from repro.ml.grid_search import grid_search
    from repro.ml.svm import SupportVectorClassifier
    from repro.parallel import ParallelConfig

    rng = np.random.default_rng(args.seed + 1)
    n = 420
    features = rng.normal(size=(n, 6))
    labels = (
        features[:, 0] + 0.4 * features[:, 1] + 0.3 * rng.normal(size=n) > 0
    ).astype(int)
    grid = {"c": (0.3, 1.0), "gamma": (0.1, 0.3)}
    results: dict[str, object] = {}

    def _serial():
        results["serial"] = grid_search(
            features, labels, SupportVectorClassifier, grid, n_splits=3
        )

    serial_seconds = _timed(_serial, args.repeats)

    parallel_config = ParallelConfig(
        workers=args.workers, backend=args.backend, min_parallel_weight=0
    )

    def _parallel():
        results["parallel"] = grid_search(
            features,
            labels,
            SupportVectorClassifier,
            grid,
            n_splits=3,
            parallel=parallel_config,
        )

    parallel_seconds = _timed(_parallel, args.repeats)

    serial_result = results["serial"]
    parallel_result = results["parallel"]
    identical = (
        serial_result.evaluations == parallel_result.evaluations
        and serial_result.best_params == parallel_result.best_params
    )
    if not identical:
        print(
            "FATAL: parallel grid-search evaluations diverge from serial",
            file=sys.stderr,
        )
        raise SystemExit(1)

    metrics = {"cv.parallel_identical": 1.0}
    info = {
        "cv.grid_serial_seconds": serial_seconds,
        "cv.grid_parallel_seconds": parallel_seconds,
        "cv.grid_parallel_speedup": serial_seconds
        / max(parallel_seconds, 1e-9),
    }
    return metrics, info


def _bench_engine_overhead(trace, repeats: int) -> dict[str, float]:
    """Stage-graph dispatch tax: engine run vs direct graph-layer calls.

    Times prune -> project twice over the same prebuilt raw graphs —
    once through ``StageGraph.execute`` (DAG validation, policy checks,
    artifact-store traffic, spans) and once as direct calls into the
    graph layer — and reports the difference. This is the abstraction
    cost the typed engine adds per pipeline run; ``run_benchmark``
    asserts it stays under 2% of the end-to-end stage time.
    """
    from repro.core.dataflow import (
        RAW_GRAPHS,
        RECORDS_INGESTED,
        ProjectStage,
        PruneStage,
    )
    from repro.core.pipeline import PipelineConfig
    from repro.core.stages import ArtifactStore, BatchPolicy, StageGraph
    from repro.graphs import (
        VertexTable,
        build_domain_ip_graph,
        build_query_graphs,
        project_to_similarity,
        prune_graphs,
    )

    config = PipelineConfig()
    domains = VertexTable()
    host, times = build_query_graphs(trace.queries, domains=domains)
    ips = build_domain_ip_graph(trace.responses, domains=domains)
    graph = StageGraph(
        [PruneStage(config.pruning), ProjectStage(config.min_similarity)],
        initial=(RAW_GRAPHS, RECORDS_INGESTED),
    )

    def _engine():
        store = ArtifactStore()
        store.put(RAW_GRAPHS, (host, ips, times))
        store.put(RECORDS_INGESTED, len(trace.queries))
        graph.execute(store, BatchPolicy())

    def _direct():
        pruned_host, pruned_ip, pruned_time, report = prune_graphs(
            host, ips, times, config.pruning
        )
        order = sorted(report.surviving_domains)
        for view in (pruned_host, pruned_ip, pruned_time):
            project_to_similarity(view, order, config.min_similarity)

    engine = _timed(_engine, repeats + 1)
    direct = _timed(_direct, repeats + 1)
    return {
        "stage_engine_overhead_seconds": max(0.0, engine - direct),
        "engine_seconds": engine,
        "direct_seconds": direct,
    }


def _stage_seconds(snapshot: dict) -> dict[str, float]:
    """Total wall time per traced stage from an obs snapshot dict."""
    stages = {}
    for name, data in snapshot.get("histograms", {}).items():
        if name.startswith("stage.") and name.endswith(".seconds"):
            stages[name] = float(data["sum"])
    return stages


def run_benchmark(args: argparse.Namespace) -> dict:
    """One full measurement pass; returns the result document."""
    from repro.core.pipeline import MaliciousDomainDetector, PipelineConfig
    from repro.embedding.line import LineConfig
    from repro.labels import (
        IntelligenceFeed,
        SimulatedVirusTotal,
        build_labeled_dataset,
    )
    from repro.obs import default_registry
    from repro.obs.export import snapshot_to_dict
    from repro.parallel import ParallelConfig
    from repro.parallel.train import train_views
    from repro.simulation import SimulationConfig, TraceGenerator

    metrics: dict[str, float] = {}
    info: dict[str, float] = {}

    metrics.update(_bench_alias(args.seed, args.repeats))

    trace = TraceGenerator(SimulationConfig.tiny(seed=args.seed)).generate()
    metrics.update(_bench_graph_stages(trace, args.repeats))
    metrics.update(_bench_ingest_rss(trace))

    registry = default_registry()
    registry.reset()

    line_config = LineConfig(dimension=args.dimension, seed=args.seed)
    detector = MaliciousDomainDetector(PipelineConfig(embedding=line_config))
    detector.build_graphs(trace.queries, trace.responses, trace.dhcp)
    detector.build_similarity_graphs()
    detector.learn_embeddings()
    feed = IntelligenceFeed(trace.ground_truth)
    virustotal = SimulatedVirusTotal(trace.ground_truth)
    dataset = build_labeled_dataset(feed, virustotal, detector.domains)
    detector.fit(dataset)

    metrics.update(_bench_serve_scorer(detector, args.repeats))

    load_metrics, load_info = _bench_serve_load(detector, args.repeats)
    metrics.update(load_metrics)
    info.update(load_info)

    svm_metrics, svm_info = _bench_svm_solver(args.seed, args.repeats)
    metrics.update(svm_metrics)
    info.update(svm_info)
    cv_metrics, cv_info = _bench_parallel_cv(args)
    metrics.update(cv_metrics)
    info.update(cv_info)

    snapshot = snapshot_to_dict(registry)
    for name, seconds in _stage_seconds(snapshot).items():
        if name in TRACKED_METRICS:
            metrics[name] = seconds
        else:
            info[name] = seconds
    gauge = snapshot.get("gauges", {}).get("line.edges_per_sec")
    if gauge is not None:
        info["line.edges_per_sec.last_view"] = float(gauge["value"])

    # Engine abstraction tax: the stage-graph refactor must stay free.
    # Gate at 2% of the end-to-end traced stage time (with the usual
    # absolute noise floor) so the typed engine can never quietly turn
    # into a per-run cost.
    overhead = _bench_engine_overhead(trace, args.repeats)
    metrics["stage_engine_overhead_seconds"] = overhead[
        "stage_engine_overhead_seconds"
    ]
    info["engine.run_seconds"] = overhead["engine_seconds"]
    info["engine.direct_seconds"] = overhead["direct_seconds"]
    end_to_end = sum(
        seconds
        for name, seconds in _stage_seconds(snapshot).items()
        if name.startswith("stage.pipeline.")
    )
    overhead_limit = max(0.02 * end_to_end, 0.05)
    info["engine.overhead_limit_seconds"] = overhead_limit
    if metrics["stage_engine_overhead_seconds"] > overhead_limit:
        print(
            "FATAL: stage-graph engine overhead "
            f"{metrics['stage_engine_overhead_seconds']:.4f}s exceeds "
            f"{overhead_limit:.4f}s (2% of end-to-end stage time)",
            file=sys.stderr,
        )
        raise SystemExit(1)

    # Serial vs parallel embedding on the *same* similarity graphs: the
    # tentpole claim this file exists to track. Best-of-N timings; the
    # last run of each mode is kept for the equality assertion.
    views = [
        (view.value, graph, detector._line_config_for(view))
        for view, graph in detector.similarity_graphs.items()
    ]
    serial_config = ParallelConfig(workers=0)
    results: dict[str, dict] = {}

    def _serial_run():
        results["serial"] = train_views(views, serial_config)

    metrics["embedding.serial_seconds"] = _timed(_serial_run, args.repeats)
    # The detector's stage measurement above is the same serial work;
    # fold it into the best-of pool so one noisy run can't fail CI.
    if "stage.pipeline.embed.seconds" in metrics:
        metrics["stage.pipeline.embed.seconds"] = min(
            metrics["stage.pipeline.embed.seconds"],
            metrics["embedding.serial_seconds"],
        )

    parallel_config = ParallelConfig(
        workers=args.workers, backend=args.backend, min_parallel_weight=0
    )

    def _parallel_run():
        results["parallel"] = train_views(views, parallel_config)

    metrics["embedding.parallel_seconds"] = _timed(_parallel_run, args.repeats)
    serial_result = results["serial"]
    parallel_result = results["parallel"]

    # Throughput derived from the best serial run (stabler than the
    # last-write-wins gauge the training loop records).
    total_samples = sum(
        config.resolved_samples(graph.edge_count)
        for __, graph, config in views
        if graph.edge_count > 0
    )
    metrics["line.edges_per_sec"] = total_samples / max(
        metrics["embedding.serial_seconds"], 1e-9
    )

    # Per-kernel throughput: the serial run above exercises the default
    # fused "segment" kernel; one extra serial pass times the "add_at"
    # reference loop so the kernel speedup stays visible (and gated) in
    # every bench point.
    metrics["line.edges_per_sec.segment"] = metrics["line.edges_per_sec"]
    add_at_views = [
        (key, graph, replace(config, kernel="add_at"))
        for key, graph, config in views
    ]

    def _add_at_run():
        train_views(add_at_views, serial_config)

    add_at_seconds = _timed(_add_at_run, args.repeats)
    metrics["line.edges_per_sec.add_at"] = total_samples / max(
        add_at_seconds, 1e-9
    )
    info["embedding.add_at_serial_seconds"] = add_at_seconds
    info["line.kernel_speedup"] = metrics["line.edges_per_sec.segment"] / max(
        metrics["line.edges_per_sec.add_at"], 1e-9
    )

    identical = all(
        np.array_equal(serial_result[key].vectors, parallel_result[key].vectors)
        for key, __, __ in views
    )
    if not identical:
        print("FATAL: parallel embeddings diverge from serial", file=sys.stderr)
        raise SystemExit(1)
    info["embedding.parallel_speedup"] = (
        metrics["embedding.serial_seconds"]
        / max(metrics["embedding.parallel_seconds"], 1e-9)
    )
    info["embedding.parallel_identical"] = 1.0

    metrics["peak_rss_mb"] = _peak_rss_mb()
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "seed": args.seed,
            "dimension": args.dimension,
            "workers": args.workers,
            "backend": args.backend,
        },
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "metrics": metrics,
        "info": info,
    }


def compare_to_baseline(
    result: dict,
    baseline: dict,
    tolerance: float,
    min_seconds: float = 0.05,
) -> list[str]:
    """Regression messages (empty when everything is within tolerance).

    Time metrics additionally get an absolute ``min_seconds`` noise
    floor: a stage that went from 0.7ms to 1.0ms is scheduler jitter,
    not a 43% regression, and must not fail the build.
    """
    failures = []
    base_metrics = baseline.get("metrics", {})
    for name, direction in TRACKED_METRICS.items():
        current = result["metrics"].get(name)
        reference = base_metrics.get(name)
        if current is None or reference is None or reference <= 0:
            continue
        slack = min_seconds if name.endswith(".seconds") else 0.0
        ratio = current / reference
        if direction == "lower" and current > reference * (1.0 + tolerance) + slack:
            failures.append(
                f"{name}: {current:.4g} vs baseline {reference:.4g} "
                f"({ratio:.2f}x, limit {1.0 + tolerance:.2f}x)"
            )
        elif direction == "higher" and ratio < 1.0 - tolerance:
            failures.append(
                f"{name}: {current:.4g} vs baseline {reference:.4g} "
                f"({ratio:.2f}x, limit {1.0 - tolerance:.2f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the result JSON to PATH")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="compare against a committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="absolute noise floor for time metrics "
                        "(default 0.05s)")
    parser.add_argument("--update-baseline", metavar="PATH", default=None,
                        help="write the result as the new baseline")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of repeats for the heavy timings "
                        "(default 2)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--dimension", type=int, default=16)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--backend", default="process",
                        choices=["process", "thread"])
    args = parser.parse_args(argv)

    result = run_benchmark(args)

    print("benchmark point:")
    for name in sorted(result["metrics"]):
        print(f"  {name:32s} {result['metrics'][name]:12.4f}")
    for name in sorted(result["info"]):
        print(f"  {name:32s} {result['info'][name]:12.4f}  (info)")

    for path in (args.out, args.update_baseline):
        if path:
            with open(path, "w", encoding="utf-8") as stream:
                json.dump(result, stream, indent=2, sort_keys=True)
                stream.write("\n")
            print(f"wrote {path}")

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as stream:
            baseline = json.load(stream)
        failures = compare_to_baseline(
            result, baseline, args.tolerance, args.min_seconds
        )
        if failures:
            print(
                f"\nREGRESSION vs {args.baseline} "
                f"(tolerance {args.tolerance:.0%}):",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nno regression vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
