"""Ablation — LINE proximity order (section 5).

LINE can preserve first-order proximity (observed edges), second-order
proximity (shared neighborhoods), or both (concatenated halves — the
pipeline default). This bench compares the three on the query-behavior
view.
"""

from __future__ import annotations

from repro.analysis.reporting import format_series_table
from repro.core.detector import MaliciousDomainClassifier
from repro.core.features import FeatureView
from repro.embedding.line import LineConfig, train_line
from repro.ml import cross_validated_scores, roc_auc_score

ORDERS = ("first", "second", "both")


def test_ablation_line_order(benchmark, bench_detector, bench_dataset):
    graph = bench_detector.similarity_graphs[FeatureView.QUERY]
    labels = bench_dataset.labels

    def sweep():
        results = {}
        for order in ORDERS:
            embedding = train_line(
                graph,
                LineConfig(
                    dimension=32,
                    order=order,
                    total_samples=3_000_000,
                    seed=19,
                ),
            )
            features = embedding.matrix(bench_dataset.domains)
            scores, __ = cross_validated_scores(
                features, labels, MaliciousDomainClassifier, n_splits=5
            )
            results[order] = roc_auc_score(labels, scores)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Ablation — query-view AUC vs LINE proximity order")
    print(
        format_series_table(
            ["order", "AUC"], [[o, results[o]] for o in ORDERS]
        )
    )

    # Every order is informative, and combining both stays in the same
    # band as the better single order (LINE's original claim; at a fixed
    # total dimension the concatenation halves each order's capacity, so
    # a modest gap to the best single order is expected).
    for order in ORDERS:
        assert results[order] > 0.6
    assert results["both"] >= max(results["first"], results["second"]) - 0.09
