"""Table 2 — a discovered cluster of DGA-generated domains.

Paper: one cluster holds 131 domains, most reported as Conficker DGA
domains by ThreatBook; they share IP addresses and are queried by the
same campus hosts. Table 2 lists 18 of them (random 11-letter .ws names
like ``oorfapjflmp.ws``).

Reproduction: find the DGA-dominated cluster, print its members, and
verify the paper's two structural observations — shared resolved IPs and
a shared querying host set.
"""

from __future__ import annotations

from repro.analysis.reporting import format_domain_table


def test_table2_dga_cluster(
    benchmark, bench_trace, bench_detector, bench_threatbook, malicious_clusters
):
    clusterer, __ = malicious_clusters

    def annotate():
        return clusterer.annotate(bench_threatbook)

    reports = benchmark.pedantic(annotate, rounds=1, iterations=1)
    dga_reports = [
        r
        for r in reports
        if r.dominant_category == "dga"
        and len(r.cluster) >= 15
        and r.category_share >= 0.5
    ]
    assert dga_reports, "no DGA-dominated cluster discovered"

    def ip_sharing_rate(report):
        """Fraction of resolved member pairs sharing an address."""
        ip_sets = [
            bench_detector.domain_ip.neighbors(d)
            for d in report.cluster.domains
            if bench_detector.domain_ip.degree(d) > 0
        ]
        pairs = [
            (a, b)
            for i, a in enumerate(ip_sets)
            for b in ip_sets[i + 1 :]
        ]
        if not pairs:
            return 0.0
        return sum(1 for a, b in pairs if a & b) / len(pairs)

    # Table 2 is specifically the classic infrastructure-sharing DGA
    # cluster ("these domains share the same IP addresses"); IP-agile
    # dictionary-DGA clusters exist too but are not this table.
    best = max(dga_reports, key=ip_sharing_rate)
    members = sorted(best.cluster.domains)

    print()
    print(
        f"Table 2 — DGA cluster: {len(members)} domains, "
        f"{best.category_share:.0%} vendor-reported as DGA"
    )
    print(format_domain_table(members[:18], columns=3, width=20))

    # Ground truth: one DGA family dominates.
    truth = bench_trace.ground_truth
    families = [
        truth.record(d).family for d in members if truth.get(d) is not None
    ]
    dominant_family = max(set(families), key=families.count)
    assert dominant_family.startswith("dga")
    assert families.count(dominant_family) / len(families) > 0.7

    # Paper: "these domains share the same IP addresses and are queried
    # by the same end hosts".
    domain_ip = bench_detector.domain_ip
    host_domain = bench_detector.host_domain
    resolved = [d for d in members if domain_ip.degree(d) > 0]
    if len(resolved) >= 2:
        ip_sets = [domain_ip.neighbors(d) for d in resolved]
        shared_ips = set.union(*ip_sets)
        pairs_sharing = sum(
            1
            for i, a in enumerate(ip_sets)
            for b in ip_sets[i + 1 :]
            if a & b
        )
        total_pairs = len(ip_sets) * (len(ip_sets) - 1) // 2
        assert pairs_sharing / total_pairs > 0.3
        assert len(shared_ips) < len(resolved)  # far fewer IPs than domains
    # "queried by the same end hosts": some infected host appears in the
    # querying set of most members (backup domains are touched by fewer
    # bots, so exact intersection over all members is too strict).
    host_sets = [host_domain.neighbors(d) for d in members[:30]]
    frequency: dict[object, int] = {}
    for hosts in host_sets:
        for host in hosts:
            frequency[host] = frequency.get(host, 0) + 1
    assert frequency, "cluster members have no querying hosts"
    assert max(frequency.values()) >= 0.5 * len(host_sets), (
        "no shared querying host across the cluster sample"
    )
