"""Table 1 — a discovered cluster of spam domains.

Paper: "most of 61 domains in one cluster are reported as spam or
phishing domains by ThreatBook"; Table 1 lists 16 of them (keyword-
mashup .bid names such as ``fattylivercur.bid``).

Reproduction: find the cluster with the strongest spam/phishing
vendor-report concentration, check that its campaign members come from
few ground-truth campaigns, and print a Table-1-style grid.
"""

from __future__ import annotations

from repro.analysis.reporting import format_domain_table

CAMPAIGN_CATEGORIES = ("spam", "phishing")


def test_table1_spam_cluster(
    benchmark, bench_trace, bench_threatbook, malicious_clusters
):
    clusterer, __ = malicious_clusters

    def annotate():
        return clusterer.annotate(bench_threatbook)

    reports = benchmark.pedantic(annotate, rounds=1, iterations=1)

    def campaign_share(report):
        """Fraction of members vendor-reported as spam/phishing."""
        hits = sum(
            1
            for domain in report.cluster.domains
            if (vendor := bench_threatbook.report(domain)) is not None
            and vendor.category in CAMPAIGN_CATEGORIES
        )
        return hits / len(report.cluster)

    candidates = [
        (campaign_share(r), r) for r in reports if len(r.cluster) >= 10
    ]
    share, best = max(candidates, key=lambda pair: pair[0])
    assert share >= 0.25, (
        f"no spam/phishing-concentrated cluster (best share {share:.2f})"
    )

    members = sorted(
        d
        for d in best.cluster.domains
        if (vendor := bench_threatbook.report(d)) is not None
        and vendor.category in CAMPAIGN_CATEGORIES
    )
    print()
    print(
        f"Table 1 — campaign cluster: {len(best.cluster)} domains, "
        f"{share:.0%} vendor-reported spam/phishing "
        f"({len(members)} reported members)"
    )
    print(format_domain_table(members[:16], columns=2))

    # Vendor reports agree with ground truth: the members really are
    # campaign domains, and at least one campaign contributes several
    # members (associated domains landing together, the table's point).
    truth = bench_trace.ground_truth
    assert all(truth.is_malicious(d) for d in members)
    family_sizes: dict[str, int] = {}
    for domain in members:
        family = truth.record(domain).family
        family_sizes[family] = family_sizes.get(family, 0) + 1
    assert max(family_sizes.values()) >= 5, (
        f"no campaign contributes a cohesive group: {family_sizes}"
    )
    # Campaign names look like the paper's examples: keyword mashups on
    # throwaway TLDs.
    throwaway = sum(
        d.endswith((".bid", ".loan", ".top", ".xyz", ".online", ".site"))
        for d in members
    )
    assert throwaway > len(members) / 2
