"""Ablation — LINE vs DeepWalk/node2vec as the embedder (section 5).

The paper justifies LINE as "one of the best performers in graph
embedding". This bench swaps in random-walk embeddings (DeepWalk; and a
node2vec variant with exploration biases) on the query-behavior
similarity graph and compares downstream detection AUC under the same
SVM.
"""

from __future__ import annotations

from repro.analysis.reporting import format_series_table
from repro.core.detector import MaliciousDomainClassifier
from repro.core.features import FeatureView
from repro.embedding.deepwalk import DeepWalkConfig, train_deepwalk
from repro.embedding.line import LineConfig, train_line
from repro.ml import cross_validated_scores, roc_auc_score


def _auc(embedding, dataset):
    features = embedding.matrix(dataset.domains)
    scores, __ = cross_validated_scores(
        features, dataset.labels, MaliciousDomainClassifier, n_splits=5
    )
    return roc_auc_score(dataset.labels, scores)


def test_ablation_embedder_choice(benchmark, bench_detector, bench_dataset):
    graph = bench_detector.similarity_graphs[FeatureView.QUERY]

    def run_all():
        line = train_line(
            graph, LineConfig(dimension=32, total_samples=3_000_000, seed=27)
        )
        deepwalk = train_deepwalk(
            graph,
            DeepWalkConfig(
                dimension=32, walks_per_node=6, walk_length=20, seed=27
            ),
        )
        node2vec = train_deepwalk(
            graph,
            DeepWalkConfig(
                dimension=32,
                walks_per_node=6,
                walk_length=20,
                return_parameter=2.0,
                inout_parameter=0.5,
                seed=27,
            ),
        )
        return {
            "LINE (paper)": _auc(line, bench_dataset),
            "DeepWalk": _auc(deepwalk, bench_dataset),
            "node2vec (p=2, q=0.5)": _auc(node2vec, bench_dataset),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("Ablation — embedder choice on the query-behavior view")
    print(
        format_series_table(
            ["embedder", "AUC"], [[k, v] for k, v in results.items()]
        )
    )

    # All embedders extract usable signal from the same graph; LINE is
    # competitive with the walk-based family (the paper's premise).
    for name, auc in results.items():
        assert auc > 0.6, f"{name} near chance"
    assert results["LINE (paper)"] >= max(results.values()) - 0.06
