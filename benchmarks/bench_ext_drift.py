"""Extension — feature stability over time (section 8.2's argument).

The paper argues behavioral features are "more robust and stable" than
DNS statistics, whose distributions "change over time". This bench
splits the capture into two week-long windows and quantifies the claim:

* behavioral signatures (host-domain neighborhoods) of the labeled
  malicious domains persist across windows;
* Exposure's statistical features drift: a J48 trained on window-1
  features loses AUC scoring window-2 features of the same domains,
  while rank stability of individual statistics is visibly imperfect.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.drift import (
    feature_stability,
    neighborhood_stability,
    transfer_auc_decay,
)
from repro.analysis.reporting import format_series_table
from repro.baselines import ExposureClassifier, ExposureFeatureExtractor
from repro.baselines.exposure import FEATURE_NAMES
from repro.dns.dhcp import HostIdentityResolver
from repro.graphs import build_host_domain_graph


def _split_records(records, cutoff):
    return (
        [r for r in records if r.timestamp < cutoff],
        [r for r in records if r.timestamp >= cutoff],
    )


def test_ext_feature_drift(benchmark, bench_trace, bench_dataset):
    cutoff = bench_trace.config.duration_seconds / 2.0
    queries_1, queries_2 = _split_records(bench_trace.queries, cutoff)
    responses_1, responses_2 = _split_records(bench_trace.responses, cutoff)
    identity = HostIdentityResolver(bench_trace.dhcp)

    def run_analysis():
        graph_1 = build_host_domain_graph(queries_1, identity)
        graph_2 = build_host_domain_graph(queries_2, identity)
        extractor_1 = ExposureFeatureExtractor()
        features_1 = extractor_1.extract(queries_1, responses_1)
        extractor_2 = ExposureFeatureExtractor()
        features_2 = extractor_2.extract(queries_2, responses_2)
        return graph_1, graph_2, features_1, features_2

    graph_1, graph_2, features_1, features_2 = benchmark.pedantic(
        run_analysis, rounds=1, iterations=1
    )

    # Domains measurable in both windows.
    malicious = [
        d
        for d in bench_dataset.malicious_domains
        if d in features_1.domains and d in features_2.domains
    ]
    labeled_both = [
        d
        for d in bench_dataset.domains
        if d in features_1.domains and d in features_2.domains
    ]
    labels_both = np.array(
        [
            bench_dataset.labels[bench_dataset.domains.index(d)]
            for d in labeled_both
        ]
    )

    # 1. Behavioral neighborhoods persist.
    hood_stability = neighborhood_stability(graph_1, graph_2, malicious)
    mean_hood = float(np.mean(list(hood_stability.values())))

    # 2. Statistical ranks drift.
    matrix_1 = features_1.rows_for(labeled_both)
    matrix_2 = features_2.rows_for(labeled_both)
    stat_stability = feature_stability(matrix_1, matrix_2, FEATURE_NAMES)
    mean_stat = float(np.mean(list(stat_stability.values())))

    # 3. Operational consequence: trained-once J48 decays.
    decay = transfer_auc_decay(
        ExposureClassifier, matrix_1, matrix_2, labels_both
    )

    rows = [
        ["malicious neighborhood overlap (mean Jaccard)", mean_hood],
        ["statistical rank stability (mean Spearman)", mean_stat],
        ["Exposure within-window AUC", decay.within_auc],
        ["Exposure cross-window AUC", decay.transfer_auc],
        ["Exposure AUC decay", decay.decay],
    ]
    print()
    print("Extension — two-window stability analysis")
    print(format_series_table(["quantity", "value"], rows))

    # The paper's claim, quantified: behavioral signatures persist
    # strongly across windows, while the statistics-based classifier
    # does not improve under drift (its within-window fit is its
    # ceiling) and individual statistics are visibly rank-unstable.
    assert mean_hood > 0.4
    assert decay.transfer_auc <= decay.within_auc + 0.005
    assert mean_stat < 0.95
