"""Figure 7 — marginal contribution of each feature view.

Paper: SVMs trained on each view alone score AUC 0.89 (query behavior),
0.83 (IP resolving), 0.65 (temporal); combining all three reaches 0.94.

Reproduction: same protocol per view. The bench asserts the paper's
*ordering* — query > IP > temporal, and combined above every single view —
which is the figure's actual claim.
"""

from __future__ import annotations

from repro.analysis.reporting import format_series_table
from repro.core.detector import MaliciousDomainClassifier
from repro.core.features import FeatureView
from repro.ml import cross_validated_scores, roc_auc_score

PAPER_VIEW_AUC = {
    FeatureView.QUERY: 0.89,
    FeatureView.IP: 0.83,
    FeatureView.TEMPORAL: 0.65,
}
PAPER_COMBINED = 0.94


def _view_auc(detector, dataset, views):
    features = detector.features_for(dataset.domains, views)
    scores, __ = cross_validated_scores(
        features, dataset.labels, MaliciousDomainClassifier, n_splits=10
    )
    return roc_auc_score(dataset.labels, scores)


def test_fig7_per_view_auc(benchmark, bench_detector, bench_dataset):
    def run_all_views():
        return {
            view: _view_auc(bench_detector, bench_dataset, [view])
            for view in FeatureView
        }

    view_auc = benchmark.pedantic(run_all_views, rounds=1, iterations=1)
    combined = _view_auc(bench_detector, bench_dataset, list(FeatureView))

    rows = [
        [view.value, PAPER_VIEW_AUC[view], view_auc[view]]
        for view in FeatureView
    ]
    rows.append(["combined", PAPER_COMBINED, combined])
    print()
    print("Figure 7 — per-view feature contributions (10-fold CV)")
    print(format_series_table(["view", "paper", "measured"], rows))

    # The figure's claims: ordering and combination gain.
    assert view_auc[FeatureView.QUERY] > view_auc[FeatureView.TEMPORAL]
    assert view_auc[FeatureView.IP] > view_auc[FeatureView.TEMPORAL]
    assert combined > max(view_auc.values()) - 0.02
    # Each view is individually informative (well above chance).
    for view, auc in view_auc.items():
        assert auc > 0.55, f"{view.value} view near chance: {auc:.3f}"
    # Rough agreement with the paper's per-view numbers.
    for view, auc in view_auc.items():
        assert abs(auc - PAPER_VIEW_AUC[view]) < 0.10
