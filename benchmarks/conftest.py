"""Shared fixtures for the benchmark suite.

Every bench in this directory reproduces one table or figure of the paper
(see DESIGN.md's per-experiment index). The expensive artifacts — the
simulated campus trace, the processed detector (graphs + projections +
LINE embeddings), and the labeled dataset — are built once per session
and shared read-only across benches.

The trace uses the default (medium) simulation scale: the paper's shape
results (relative AUCs, cluster structure) are stable at this size while
keeping the full suite's runtime reasonable. ``SimulationConfig.paper_scale()``
reproduces the 10k-domain scale when more fidelity is wanted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    IntelligenceFeed,
    MaliciousDomainDetector,
    SimulatedThreatBook,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
)

BENCH_SEED = 7


@pytest.fixture(scope="session")
def bench_trace():
    """The simulated campus capture all benches run against."""
    return TraceGenerator(SimulationConfig(seed=BENCH_SEED)).generate()


@pytest.fixture(scope="session")
def bench_detector(bench_trace):
    """Detector with graphs, projections and embeddings built."""
    detector = MaliciousDomainDetector()
    detector.process(
        bench_trace.queries, bench_trace.responses, bench_trace.dhcp
    )
    return detector


@pytest.fixture(scope="session")
def bench_feed(bench_trace):
    return IntelligenceFeed(bench_trace.ground_truth)


@pytest.fixture(scope="session")
def bench_virustotal(bench_trace):
    return SimulatedVirusTotal(bench_trace.ground_truth)


@pytest.fixture(scope="session")
def bench_threatbook(bench_trace):
    return SimulatedThreatBook(bench_trace.ground_truth)


@pytest.fixture(scope="session")
def bench_dataset(bench_detector, bench_feed, bench_virustotal):
    """Labeled set assembled with the paper's validation rule."""
    return build_labeled_dataset(
        bench_feed, bench_virustotal, bench_detector.domains
    )


@pytest.fixture(scope="session")
def bench_features(bench_detector, bench_dataset):
    """The combined 3k-dim feature matrix for the labeled domains."""
    return bench_detector.features_for(bench_dataset.domains)


@pytest.fixture(scope="session")
def malicious_clusters(bench_detector, bench_dataset):
    """X-Means clusters over the labeled domains' embeddings."""
    from repro.core.clustering import DomainClusterer

    clusterer = DomainClusterer(k_min=8, k_max=60, seed=3)
    clusters = clusterer.fit(
        bench_dataset.domains,
        bench_detector.features_for(bench_dataset.domains),
    )
    return clusterer, clusters


@pytest.fixture(scope="session")
def predicted_malicious_clusters(bench_detector, bench_dataset):
    """Clusters over the domains the trained classifier flags.

    Section 7.2.1 expands seeds through "the malicious domain clusters" —
    clusters formed on the *malicious side* of the classifier, which is
    how discoveries reach domains the labeled set never contained.
    """
    from repro.core.clustering import DomainClusterer

    bench_detector.fit(bench_dataset)
    scores = bench_detector.decision_scores(bench_detector.domains)
    cutoff = bench_detector.classifier.threshold_
    flagged = [
        domain
        for domain, score in zip(bench_detector.domains, scores)
        if score >= cutoff
    ]
    clusterer = DomainClusterer(k_min=8, k_max=60, seed=5)
    clusters = clusterer.fit(flagged, bench_detector.features_for(flagged))
    return clusters
