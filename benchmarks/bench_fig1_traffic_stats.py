"""Figure 1 — DNS query volumes and unique FQDN/e2LD counts over time.

Paper: one month of campus traffic shows a strong diurnal cycle in query
volume and in the number of distinct names observed per time bin.

Reproduction: the same three series over the simulated capture. Absolute
volumes differ (our campus is smaller); the *shape* — diurnal cycling,
e2LD counts below FQDN counts, both tracking volume — must hold.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series_table
from repro.analysis.stats import compute_traffic_statistics


def test_fig1_traffic_statistics(benchmark, bench_trace):
    stats = benchmark.pedantic(
        lambda: compute_traffic_statistics(bench_trace.queries, 3600.0),
        rounds=1,
        iterations=1,
    )

    profile = stats.daily_profile()
    rows = [
        ["total queries", stats.total_queries],
        ["unique FQDNs", stats.total_unique_fqdns],
        ["unique e2LDs", stats.total_unique_e2lds],
        ["peak hourly volume", int(stats.query_volume.max())],
        ["day/night volume ratio", float(profile[10:17].mean() / max(profile[2:5].mean(), 1e-9))],
    ]
    print()
    print("Figure 1 — traffic series over the capture")
    print(format_series_table(["metric", "value"], rows))

    # Shape assertions mirroring the paper's Figure 1.
    assert stats.total_queries > 50_000
    # Diurnal cycle: daytime volume well above night volume.
    assert profile[10:17].mean() > 2.0 * profile[2:5].mean()
    # e2LD aggregation strictly reduces the name space.
    assert stats.total_unique_e2lds < stats.total_unique_fqdns
    # Per-bin unique-name counts track volume (rank correlation > 0).
    volume_ranks = np.argsort(np.argsort(stats.query_volume))
    fqdn_ranks = np.argsort(np.argsort(stats.unique_fqdns))
    correlation = np.corrcoef(volume_ranks, fqdn_ranks)[0, 1]
    assert correlation > 0.5
