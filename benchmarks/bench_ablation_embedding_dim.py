"""Ablation — embedding dimension k.

The paper fixes one embedding size per view (k, giving 3k combined
features) without reporting a sweep. This bench sweeps k over
{8, 16, 32} on the query-behavior view to show where returns diminish.
"""

from __future__ import annotations

from repro.analysis.reporting import format_series_table
from repro.core.detector import MaliciousDomainClassifier
from repro.core.features import FeatureView
from repro.embedding.line import LineConfig, train_line
from repro.ml import cross_validated_scores, roc_auc_score

DIMENSIONS = (8, 16, 32)


def test_ablation_embedding_dimension(benchmark, bench_detector, bench_dataset):
    graph = bench_detector.similarity_graphs[FeatureView.QUERY]
    labels = bench_dataset.labels

    def sweep():
        results = {}
        for dimension in DIMENSIONS:
            embedding = train_line(
                graph,
                LineConfig(
                    dimension=dimension,
                    total_samples=3_000_000,
                    seed=17,
                ),
            )
            features = embedding.matrix(bench_dataset.domains)
            scores, __ = cross_validated_scores(
                features, labels, MaliciousDomainClassifier, n_splits=5
            )
            results[dimension] = roc_auc_score(labels, scores)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Ablation — query-view AUC vs embedding dimension")
    print(
        format_series_table(
            ["k", "AUC"], [[k, results[k]] for k in DIMENSIONS]
        )
    )

    # All dimensions carry real signal; quality does not collapse at
    # higher k (no overfitting cliff).
    for dimension in DIMENSIONS:
        assert results[dimension] > 0.6
    assert max(results.values()) - results[8] >= -0.02
