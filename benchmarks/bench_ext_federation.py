"""Extension — multi-campus campaign correlation (paper section 10).

The paper's future work proposes deploying the detector across several
networks and correlating verdicts to surface large-scale campaigns. This
bench simulates two campuses hit by overlapping malware families (the
same botnets infect hosts at both), runs a detector per campus, and
verifies that federation (a) boosts domains flagged at both sites and
(b) links the sites' clusters into cross-campus campaigns.
"""

from __future__ import annotations

import numpy as np

from repro import (
    IntelligenceFeed,
    MaliciousDomainDetector,
    PipelineConfig,
    SimulatedVirusTotal,
    SimulationConfig,
    TraceGenerator,
    build_labeled_dataset,
)
from repro.analysis.federation import (
    SiteVerdicts,
    correlate_verdicts,
    match_campaigns,
)
from repro.analysis.reporting import format_series_table
from repro.core.clustering import DomainClusterer
from repro.embedding.line import LineConfig


def _run_site(site_name, seed, malware_seed):
    """One campus: simulate, detect, cluster, emit shareable verdicts."""
    config = SimulationConfig.tiny(seed=seed)
    config.malware_seed = malware_seed
    config.duration_days = 2.0
    trace = TraceGenerator(config).generate()
    detector = MaliciousDomainDetector(
        PipelineConfig(
            embedding=LineConfig(dimension=16, total_samples=250_000, seed=seed)
        )
    )
    detector.process(trace.queries, trace.responses, trace.dhcp)
    feed = IntelligenceFeed(trace.ground_truth)
    virustotal = SimulatedVirusTotal(trace.ground_truth)
    dataset = build_labeled_dataset(feed, virustotal, detector.domains)
    detector.fit(dataset)
    # Share threshold-centered scores: >0 means "this site flags it".
    scores = (
        detector.decision_scores(detector.domains)
        - detector.classifier.threshold_
    )
    clusterer = DomainClusterer(k_min=4, k_max=30, seed=seed)
    clusters = clusterer.fit(
        detector.domains, detector.features_for(detector.domains)
    )
    domain_ips = {
        d: detector.domain_ip.neighbors(d) for d in detector.domains
    }
    verdicts = SiteVerdicts(
        site=site_name,
        scores=dict(zip(detector.domains, scores)),
        clusters=clusters,
        domain_ips=domain_ips,
    )
    return verdicts, trace.ground_truth


def test_ext_multi_campus_federation(benchmark):
    # Shared malware_seed -> the same campaigns hit both campuses; the
    # base seeds differ, so hosts and benign traffic are local. This
    # mirrors real federations: campaigns span networks.
    def run_federation():
        site_a, truth = _run_site("campus-a", seed=51, malware_seed=88)
        site_b, __ = _run_site("campus-b", seed=52, malware_seed=88)
        return site_a, site_b, truth

    site_a, site_b, truth = benchmark.pedantic(
        run_federation, rounds=1, iterations=1
    )

    verdicts = correlate_verdicts([site_a, site_b])
    matches = match_campaigns([site_a, site_b], min_shared_domains=2)

    multi_site = [v for v in verdicts if v.sites_flagged >= 2][:10]
    rows = [
        [v.domain, v.sites_flagged, v.consensus_score] for v in multi_site
    ]
    print()
    print("Extension — federated verdicts (top multi-site detections)")
    print(format_series_table(["domain", "sites", "consensus"], rows))
    print(f"{len(matches)} cross-campus campaign matches")

    # Multi-site flagged domains are overwhelmingly truly malicious.
    if multi_site:
        truly = sum(truth.is_malicious(v.domain) for v in multi_site)
        assert truly / len(multi_site) > 0.7
    # Shared malware families produce cross-campus cluster matches.
    assert matches, "expected cross-campus campaign matches"
    best = matches[0]
    shared_malicious = sum(
        truth.is_malicious(d) for d in best.shared_domains
    )
    assert shared_malicious / max(len(best.shared_domains), 1) > 0.7
