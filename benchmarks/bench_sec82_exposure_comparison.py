"""Section 8.2 — comparison against the Exposure baseline.

Paper: Exposure (J48 over time/answer/TTL/lexical statistics of passive
DNS) reaches AUC 0.88 on the same labeled data, versus 0.94 for the
embedding-based SVM — a 6.8% relative improvement. The paper attributes
the gap to statistical features drifting over time and across networks
(TTL trends, non-English lexical patterns).

Reproduction: identical training data and protocol for both systems; the
bench asserts the ordering (embeddings beat Exposure) and reports the
relative improvement.
"""

from __future__ import annotations

from repro.analysis.reporting import format_series_table
from repro.baselines import ExposureClassifier, ExposureFeatureExtractor
from repro.core.detector import MaliciousDomainClassifier
from repro.ml import cross_validated_scores, roc_auc_score

PAPER_OURS = 0.94
PAPER_EXPOSURE = 0.88


def test_sec82_exposure_comparison(
    benchmark, bench_trace, bench_dataset, bench_features
):
    labels = bench_dataset.labels

    def run_exposure():
        extractor = ExposureFeatureExtractor()
        features = extractor.extract(
            bench_trace.queries, bench_trace.responses
        )
        matrix = features.rows_for(bench_dataset.domains)
        scores, __ = cross_validated_scores(
            matrix, labels, ExposureClassifier, n_splits=10
        )
        return scores

    exposure_scores = benchmark.pedantic(run_exposure, rounds=1, iterations=1)
    exposure_auc = roc_auc_score(labels, exposure_scores)

    ours_scores, __ = cross_validated_scores(
        bench_features, labels, MaliciousDomainClassifier, n_splits=10
    )
    ours_auc = roc_auc_score(labels, ours_scores)
    improvement = (ours_auc - exposure_auc) / exposure_auc * 100.0

    print()
    print("Section 8.2 — Exposure baseline comparison (10-fold CV)")
    print(
        format_series_table(
            ["system", "paper AUC", "measured AUC"],
            [
                ["graph embedding + SVM (ours)", PAPER_OURS, ours_auc],
                ["Exposure (J48 on statistics)", PAPER_EXPOSURE, exposure_auc],
                ["relative improvement (%)", 6.8, improvement],
            ],
        )
    )

    # The comparison's claim: behavioral embeddings beat statistical
    # features on the same data.
    assert ours_auc > exposure_auc, (
        f"embeddings ({ours_auc:.3f}) should beat Exposure ({exposure_auc:.3f})"
    )
    # Exposure is a strong baseline, not a strawman.
    assert exposure_auc > 0.75
