"""Performance — per-stage cost of the pipeline.

Not a paper figure: these benches time the individual stages (graph
construction, pruning, projection, LINE, SVM training) with proper
repetition so regressions in the hot paths show up in
``--benchmark-only`` output. The paper's section 4.1 motivates pruning
with running time; the projection and embedding stages are where that
time actually goes.

The pipeline itself now records the same stage timings through
``repro.obs`` (``stage.*.seconds`` histograms) — the benches here remain
the controlled-repetition view, while the obs spans are the always-on
production view. ``test_perf_tracing_overhead`` /
``test_perf_counter_overhead`` pin the cost of that instrumentation so
"observability is cheap enough to leave on" stays a measured claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import MaliciousDomainClassifier
from repro.dns.dhcp import HostIdentityResolver
from repro.graphs import (
    build_domain_time_graph,
    build_host_domain_graph,
    project_to_similarity,
    prune_graphs,
)
from repro.graphs.bipartite import build_domain_ip_graph
from repro.obs import MetricsRegistry, trace


def test_perf_host_domain_graph_construction(benchmark, bench_trace):
    identity = HostIdentityResolver(bench_trace.dhcp)
    queries = bench_trace.queries

    result = benchmark.pedantic(
        lambda: build_host_domain_graph(queries, identity),
        rounds=3,
        iterations=1,
    )
    assert result.domain_count > 500


def test_perf_projection(benchmark, bench_detector):
    host_domain = bench_detector.host_domain
    order = bench_detector.domains

    result = benchmark.pedantic(
        lambda: project_to_similarity(host_domain, order),
        rounds=3,
        iterations=1,
    )
    assert result.edge_count > 0


def test_perf_pruning(benchmark, bench_trace):
    identity = HostIdentityResolver(bench_trace.dhcp)
    host_domain = build_host_domain_graph(bench_trace.queries, identity)
    domain_ip = build_domain_ip_graph(bench_trace.responses)
    domain_time = build_domain_time_graph(bench_trace.queries)

    __, __, __, report = benchmark.pedantic(
        lambda: prune_graphs(host_domain, domain_ip, domain_time),
        rounds=3,
        iterations=1,
    )
    assert report.domains_after > 0


def test_perf_svm_training(benchmark, bench_dataset, bench_features):
    labels = bench_dataset.labels
    # Train on a fixed 1000-sample slice for stable timing.
    size = min(1000, len(labels))
    features = bench_features[:size]
    y = labels[:size]
    if len(np.unique(y)) < 2:
        pytest.skip("slice lacks both classes")

    model = benchmark.pedantic(
        lambda: MaliciousDomainClassifier().fit(features, y),
        rounds=3,
        iterations=1,
    )
    assert model.support_vector_count > 0


def test_perf_svm_scoring(benchmark, bench_dataset, bench_features):
    labels = bench_dataset.labels
    model = MaliciousDomainClassifier().fit(bench_features, labels)

    scores = benchmark.pedantic(
        lambda: model.decision_function(bench_features),
        rounds=5,
        iterations=1,
    )
    assert scores.shape[0] == len(labels)


def test_perf_tracing_overhead(benchmark):
    """1000 spans; per-span cost must stay in the low microseconds."""
    registry = MetricsRegistry()

    def thousand_spans():
        for __ in range(1000):
            with trace("bench_overhead", registry):
                pass
        return registry

    result = benchmark(thousand_spans)
    assert result.histogram("stage.bench_overhead.seconds").count >= 1000


def test_perf_counter_overhead(benchmark):
    """1000 counter increments (the per-batch streaming metric cost)."""
    registry = MetricsRegistry()
    counter = registry.counter("bench.records")

    def thousand_incs():
        for __ in range(1000):
            counter.inc(64)
        return counter

    result = benchmark(thousand_incs)
    assert result.value >= 64_000
