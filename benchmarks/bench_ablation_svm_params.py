"""Ablation — the paper's SVM hyperparameters (section 6.2).

The paper sets C = 0.09 and gamma = 0.06 without showing the search.
This bench grid-searches around those values on the embedding features
and checks that the paper's operating point lies in the high-AUC
plateau (i.e. the chosen values are reasonable, not magic).
"""

from __future__ import annotations

from repro.analysis.reporting import format_series_table
from repro.core.detector import MaliciousDomainClassifier
from repro.ml.grid_search import grid_search

C_GRID = (0.03, 0.09, 0.3, 1.0)
GAMMA_GRID = (0.02, 0.06, 0.2)


def test_ablation_svm_hyperparameters(benchmark, bench_dataset, bench_features):
    labels = bench_dataset.labels

    def run_grid():
        return grid_search(
            bench_features,
            labels,
            lambda c, gamma: MaliciousDomainClassifier(c=c, gamma=gamma),
            {"c": list(C_GRID), "gamma": list(GAMMA_GRID)},
            n_splits=3,
        )

    result = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = [
        [p["c"], p["gamma"], score] for p, score in result.evaluations
    ]
    print()
    print("Ablation — SVM (C, gamma) grid on the 3k-dim features")
    print(format_series_table(["C", "gamma", "AUC"], rows))
    print(f"best: {result.best_params} AUC {result.best_score:.3f}")

    paper_cell = next(
        score
        for params, score in result.evaluations
        if params["c"] == 0.09 and params["gamma"] == 0.06
    )
    # The paper's operating point sits in the plateau: within 0.05 AUC
    # of the grid optimum. (The grid's best cell uses a larger C; the
    # paper's heavier regularization trades a little in-sample AUC for
    # the margin robustness argued in section 6.2.)
    assert result.best_score - paper_cell < 0.05
    assert paper_cell > 0.85
