"""Figure 6 — detection accuracy of the combined feature vector.

Paper: RBF SVM (C=0.09, gamma=0.06) on the concatenated 3k-dim embedding
features, 10-fold cross-validation, AUC = 0.94.

Reproduction: identical protocol on the simulated labeled set. The
absolute value depends on the substrate; the bench asserts the paper's
qualitative claims — AUC well above 0.85 and a usable ROC shape.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_roc_ascii, format_series_table
from repro.core.detector import MaliciousDomainClassifier
from repro.ml import cross_validated_scores, roc_auc_score, roc_curve

PAPER_AUC = 0.94


def test_fig6_combined_feature_auc(benchmark, bench_dataset, bench_features):
    labels = bench_dataset.labels

    def run_cv():
        scores, __ = cross_validated_scores(
            bench_features, labels, MaliciousDomainClassifier, n_splits=10
        )
        return scores

    scores = benchmark.pedantic(run_cv, rounds=1, iterations=1)
    auc = roc_auc_score(labels, scores)
    fpr, tpr, __ = roc_curve(labels, scores)

    print()
    print("Figure 6 — combined 3k-dim features, 10-fold CV")
    print(
        format_series_table(
            ["quantity", "paper", "measured"],
            [
                ["AUC", PAPER_AUC, auc],
                ["labeled domains", "10,000+", len(bench_dataset)],
                ["malicious fraction", 0.30, bench_dataset.malicious_fraction],
            ],
        )
    )
    print(format_roc_ascii(fpr, tpr))

    assert auc > 0.85, f"combined AUC {auc:.3f} far below the paper's 0.94"
    assert abs(auc - PAPER_AUC) < 0.06, (
        f"combined AUC {auc:.3f} not within 0.06 of the paper's {PAPER_AUC}"
    )
    # 30/70 labeled composition (paper section 6.1).
    assert 0.25 <= bench_dataset.malicious_fraction <= 0.40
