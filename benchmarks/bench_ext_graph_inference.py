"""Extension — three detection paradigms side by side (section 9).

The paper's related work sorts detectors into classification-based
(Exposure), clustering-based, and graph-based (belief propagation on
host-domain graphs, Manadhata et al.). Having all three implemented, this
bench compares them on one capture:

* ours — embeddings + SVM (supervised, relational);
* Exposure — J48 on per-domain statistics (supervised, statistical);
* graph inference — loopy BP seeded with 20% of the labeled set
  (semi-supervised, relational).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series_table
from repro.baselines import (
    ExposureClassifier,
    ExposureFeatureExtractor,
    GraphInferenceDetector,
)
from repro.core.detector import MaliciousDomainClassifier
from repro.ml import cross_validated_scores, roc_auc_score


def test_ext_three_paradigms(
    benchmark, bench_trace, bench_detector, bench_dataset, bench_features
):
    labels = bench_dataset.labels
    domains = bench_dataset.domains

    # Seed BP with 20% of the labeled set; evaluate on the rest.
    rng = np.random.default_rng(5)
    seed_mask = rng.uniform(size=len(domains)) < 0.2
    evaluate_mask = ~seed_mask
    seed_malicious = {
        d for d, is_seed, y in zip(domains, seed_mask, labels)
        if is_seed and y == 1
    }
    seed_benign = {
        d for d, is_seed, y in zip(domains, seed_mask, labels)
        if is_seed and y == 0
    }

    def run_bp():
        detector = GraphInferenceDetector()
        detector.fit(bench_detector.host_domain, seed_malicious, seed_benign)
        return detector

    bp = benchmark.pedantic(run_bp, rounds=1, iterations=1)
    held_domains = [d for d, keep in zip(domains, evaluate_mask) if keep]
    held_labels = labels[evaluate_mask]
    bp_auc = roc_auc_score(held_labels, bp.scores(held_domains))

    ours_scores, __ = cross_validated_scores(
        bench_features, labels, MaliciousDomainClassifier, n_splits=5
    )
    ours_auc = roc_auc_score(labels, ours_scores)
    exposure_matrix = ExposureFeatureExtractor().extract(
        bench_trace.queries, bench_trace.responses
    ).rows_for(domains)
    exposure_scores, __ = cross_validated_scores(
        exposure_matrix, labels, ExposureClassifier, n_splits=5
    )
    exposure_auc = roc_auc_score(labels, exposure_scores)

    print()
    print("Extension — three detection paradigms (section 9 taxonomy)")
    print(
        format_series_table(
            ["paradigm", "AUC"],
            [
                ["embeddings + SVM (ours)", ours_auc],
                ["statistics + J48 (Exposure)", exposure_auc],
                ["belief propagation (graph inference)", bp_auc],
            ],
        )
    )

    # All three detect real signal; ours leads.
    assert bp_auc > 0.6
    assert exposure_auc > 0.6
    assert ours_auc >= max(bp_auc, exposure_auc) - 0.03
    assert bp.iterations_ >= 1
