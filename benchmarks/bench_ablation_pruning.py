"""Ablation — how much do the pruning rules (section 4.1) matter?

The paper prunes (1) domains queried by >50% of hosts, (2) single-host
domains, and (3) aggregates to e2LDs, claiming no loss of detection
coverage. This bench quantifies rule 1 and rule 2: graph sizes and
projection cost with and without pruning, and the share of *malicious*
domains each rule removes (the paper's coverage concern).
"""

from __future__ import annotations

from repro.analysis.reporting import format_series_table
from repro.dns.dhcp import HostIdentityResolver
from repro.graphs import (
    PruningRules,
    build_domain_ip_graph,
    build_domain_time_graph,
    build_host_domain_graph,
    prune_graphs,
)


def test_ablation_pruning_rules(benchmark, bench_trace):
    identity = HostIdentityResolver(bench_trace.dhcp)
    host_domain = build_host_domain_graph(bench_trace.queries, identity)
    domain_ip = build_domain_ip_graph(bench_trace.responses)
    domain_time = build_domain_time_graph(bench_trace.queries)
    truth = bench_trace.ground_truth

    def run_pruning():
        return prune_graphs(host_domain, domain_ip, domain_time)

    __, __, __, report = benchmark.pedantic(run_pruning, rounds=1, iterations=1)

    # No-pruning and rule-variants for comparison.
    __, __, __, no_rule1 = prune_graphs(
        host_domain, domain_ip, domain_time,
        PruningRules(popular_host_fraction=1.0, min_hosts=2),
    )
    __, __, __, no_rule2 = prune_graphs(
        host_domain, domain_ip, domain_time,
        PruningRules(popular_host_fraction=0.5, min_hosts=1),
    )

    def malicious_share(domains):
        domains = list(domains)
        if not domains:
            return 0.0
        return sum(truth.is_malicious(d) for d in domains) / len(domains)

    rows = [
        ["before pruning", host_domain.domain_count, ""],
        ["paper rules", report.domains_after, ""],
        ["rule 1 drops", len(report.dropped_popular),
         f"{malicious_share(report.dropped_popular):.3f}"],
        ["rule 2 drops", len(report.dropped_single_host),
         f"{malicious_share(report.dropped_single_host):.3f}"],
    ]
    print()
    print("Ablation — pruning rules")
    print(format_series_table(["configuration", "domains", "malicious share"], rows))

    # Rule 1 must not throw away malicious domains: hub domains are the
    # google.com class.
    assert malicious_share(report.dropped_popular) == 0.0
    # Rule 2 does drop some malicious domains — rarely-used campaign
    # backups seen by one victim so far. The paper accepts exactly this
    # early-stage risk (§4.1); what the coverage claim requires is that
    # the *fraction of the malicious population* lost stays small.
    dropped_malicious = sum(
        truth.is_malicious(d) for d in report.dropped_single_host
    )
    total_malicious_observed = sum(
        truth.is_malicious(d) for d in host_domain.domains
    )
    assert dropped_malicious / max(total_malicious_observed, 1) < 0.25
    # Pruning keeps the bulk of the malicious population.
    surviving_malicious = sum(
        truth.is_malicious(d) for d in report.surviving_domains
    )
    assert surviving_malicious / max(total_malicious_observed, 1) > 0.75
    # Rule variants really change the graph.
    assert no_rule1.domains_after > report.domains_after
    assert no_rule2.domains_after > report.domains_after
