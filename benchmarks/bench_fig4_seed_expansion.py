"""Figure 4 — discovering new malicious domains from a small seed set.

Paper: growing the seed set of known malicious domains from 0 to 200 and
expanding through the discovered clusters yields ~2,000 VirusTotal-
confirmed ("true") domains plus ~500 unconfirmed ("suspicious") ones.

Reproduction: the same expansion — clusters containing a seed donate
their other members; the VirusTotal oracle splits them into true vs
suspicious. Our trace holds ~1,000 malicious e2LDs (vs the paper's
several thousand), so absolute counts scale down; the shape — counts
growing with seed size, then saturating; true discoveries well above
suspicious — must hold.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series_table
from repro.core.clustering import expand_from_seeds

SEED_SIZES = (0, 25, 50, 100, 150, 200)


def test_fig4_seed_expansion(
    benchmark, bench_trace, bench_virustotal, predicted_malicious_clusters,
    bench_dataset,
):
    # Clusters cover the classifier's malicious side (section 7.2.1), so
    # discoveries are mostly domains the labeled set never contained.
    clusters = predicted_malicious_clusters
    # Seeds are sampled from the *labeled malicious* pool, like the
    # paper's confirmed seed domains.
    rng = np.random.default_rng(11)
    pool = bench_dataset.malicious_domains
    seed_order = [pool[int(i)] for i in rng.permutation(len(pool))]

    def run_expansion():
        results = []
        for size in SEED_SIZES:
            outcome = expand_from_seeds(
                clusters, seed_order[:size], bench_virustotal
            )
            results.append(outcome)
        return results

    results = benchmark.pedantic(run_expansion, rounds=1, iterations=1)

    rows = [
        [r.seed_size, r.discovered_true, r.discovered_suspicious]
        for r in results
    ]
    print()
    print("Figure 4 — newly discovered malicious domains vs seed size")
    print(format_series_table(["seeds", "true", "suspicious"], rows))

    by_size = {r.seed_size: r for r in results}
    # Zero seeds discover nothing (the curve starts at the origin).
    assert by_size[0].discovered_true == 0
    assert by_size[0].discovered_suspicious == 0
    # Discoveries grow with seed size, then saturate once every malicious
    # cluster holds a seed (mild dips at large seed counts are expected:
    # seeds themselves are excluded from the discovery counts).
    truths = [r.discovered_true for r in results]
    assert truths[1] > 0
    assert max(truths) > 200  # a large multiple of the seed set
    for previous, current in zip(truths[1:], truths[2:]):
        assert current >= 0.8 * previous, "expansion curve collapsed"
    final = by_size[SEED_SIZES[-1]]
    # Both buckets populated, true dominating (paper: ~2000 vs ~500).
    assert final.discovered_suspicious > 0
    assert final.discovered_true > final.discovered_suspicious
    # Expansion precision: the majority of discoveries are genuinely
    # malicious. (The paper cannot measure this — its "suspicious"
    # bucket is by definition unconfirmed; ground truth lets us. The
    # flagged-domain clusters inherit the classifier's false positives,
    # so precision is bounded by the SVM's, not 1.0.)
    truth = bench_trace.ground_truth
    discovered = final.true_domains + final.suspicious_domains
    genuinely_malicious = sum(truth.is_malicious(d) for d in discovered)
    assert genuinely_malicious / len(discovered) > 0.6
