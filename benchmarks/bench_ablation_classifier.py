"""Ablation — classifier choice on the embedding features.

The paper picks an RBF SVM (section 6.2) for the 3k-dim embedding
features. This bench swaps in the J48 tree (Exposure's model class) on
the *same* features, separating "which features" from "which model":
the embedding features should remain strong under either classifier,
with the SVM having the edge on the dense high-dimensional vectors.
"""

from __future__ import annotations

from repro.analysis.reporting import format_series_table
from repro.baselines import ExposureClassifier
from repro.core.detector import MaliciousDomainClassifier
from repro.ml import cross_validated_scores, roc_auc_score


def test_ablation_classifier_choice(benchmark, bench_dataset, bench_features):
    labels = bench_dataset.labels

    def run_both():
        svm_scores, __ = cross_validated_scores(
            bench_features, labels, MaliciousDomainClassifier, n_splits=5
        )
        tree_scores, __ = cross_validated_scores(
            bench_features, labels, ExposureClassifier, n_splits=5
        )
        return (
            roc_auc_score(labels, svm_scores),
            roc_auc_score(labels, tree_scores),
        )

    svm_auc, tree_auc = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print("Ablation — classifier on the same 3k-dim embedding features")
    print(
        format_series_table(
            ["classifier", "AUC"],
            [["RBF SVM (paper)", svm_auc], ["J48 tree", tree_auc]],
        )
    )

    # The features carry the signal: both models do well.
    assert svm_auc > 0.85
    assert tree_auc > 0.70
    # The paper's SVM choice is justified on dense embeddings.
    assert svm_auc >= tree_auc - 0.02
