"""Section 7.2.2 — traffic patterns of malicious clusters via netflow.

Paper: joining flow records onto discovered clusters reveals shared
infrastructure — e.g. a spam cluster whose 12 domains share one IP and
talk to 518 campus hosts on ports 80/1337/2710, and a C&C cluster whose
32 domains share 3 IPs and talk to 8 hosts on port 80.

Reproduction: simulate edge-router flows from the DNS responses, join
them onto the discovered clusters, and assert the structural claims —
malicious clusters concentrate on few server IPs and characteristic
port sets, with spam clusters reaching far more campus hosts than C&C
clusters.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series_table
from repro.netflow import NetflowSimulator, mine_cluster_patterns


def test_sec722_cluster_traffic_patterns(
    benchmark, bench_trace, bench_threatbook, malicious_clusters
):
    clusterer, clusters = malicious_clusters
    reports = clusterer.annotate(bench_threatbook)
    malicious_reports = [
        r
        for r in reports
        if r.dominant_category in ("spam", "c2", "dga", "phishing")
        and r.category_share >= 0.5
        and len(r.cluster) >= 8
    ]
    assert malicious_reports, "no malicious clusters to profile"

    simulator = NetflowSimulator(bench_trace.ground_truth, seed=5)

    def run_mining():
        flows = list(simulator.flows_from(bench_trace.responses))
        return flows, mine_cluster_patterns(
            [r.cluster for r in malicious_reports], flows
        )

    flows, patterns = benchmark.pedantic(run_mining, rounds=1, iterations=1)

    rows = []
    for report, pattern in zip(malicious_reports, patterns):
        rows.append(
            [
                report.dominant_category,
                pattern.domain_count,
                len(pattern.server_ips),
                len(pattern.campus_hosts),
                ",".join(str(p) for p in sorted(pattern.destination_ports)),
            ]
        )
    print()
    print("Section 7.2.2 — per-cluster traffic patterns")
    print(
        format_series_table(
            ["category", "domains", "server IPs", "campus hosts", "ports"],
            rows,
        )
    )

    by_category: dict[str, list] = {}
    for report, pattern in zip(malicious_reports, patterns):
        by_category.setdefault(report.dominant_category, []).append(pattern)

    # Spam clusters use the paper's characteristic ports.
    for pattern in by_category.get("spam", []):
        if pattern.flow_count:
            assert pattern.destination_ports <= {80, 1337, 2710}
    # Classic campaign hosting concentrates many domains on few servers
    # (the paper's 12-domains/1-IP and 32-domains/3-IPs examples). Not
    # every cluster must: fast-flux rotates through large pools, and
    # IP-agile "stealth" families use one server per domain by design.
    concentrated = [
        pattern
        for report, pattern in zip(malicious_reports, patterns)
        if pattern.flow_count
        and pattern.domain_count >= 10
        and len(pattern.server_ips) < 0.5 * pattern.domain_count
    ]
    assert concentrated, "no cluster shows campaign-style IP concentration"
    # Spam reaches a much wider campus audience than C&C beaconing
    # (the paper's 518 hosts vs 8 hosts contrast).
    spam_hosts = [
        len(p.campus_hosts) for p in by_category.get("spam", []) if p.flow_count
    ]
    cnc_hosts = [
        len(p.campus_hosts) for p in by_category.get("c2", []) if p.flow_count
    ]
    if spam_hosts and cnc_hosts:
        assert max(spam_hosts) > 2 * min(cnc_hosts)
