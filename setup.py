"""Setup shim for environments without PEP 517 wheel support.

Metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on offline machines.
"""

from setuptools import setup

setup()
