"""DHCP lease log and host-identity resolution.

The paper collects DHCP logs in parallel with DNS traffic so that DNS
queries can be attributed to the *physical device* (MAC address) even when
the device's IP changes due to campus mobility or lease timeout
(section 2). :class:`HostIdentityResolver` performs that attribution.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.dns.types import DhcpLease
from repro.errors import DnsLogFormatError


class DhcpLog:
    """An append-only collection of DHCP leases with text (de)serialization.

    Line format: ``<mac>\t<ip>\t<start>\t<end>``.
    """

    def __init__(self, leases: Iterable[DhcpLease] = ()) -> None:
        self._leases: list[DhcpLease] = list(leases)

    def add(self, lease: DhcpLease) -> None:
        self._leases.append(lease)

    def __len__(self) -> int:
        return len(self._leases)

    def __iter__(self) -> Iterator[DhcpLease]:
        return iter(self._leases)

    @property
    def macs(self) -> set[str]:
        """All device MAC addresses appearing in the log."""
        return {lease.mac for lease in self._leases}

    def save(self, destination: str | Path | TextIO) -> None:
        """Write the log in text form."""
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as stream:
                self._write(stream)
        else:
            self._write(destination)

    def _write(self, stream: TextIO) -> None:
        for lease in self._leases:
            stream.write(
                f"{lease.mac}\t{lease.ip}\t{lease.start:.3f}\t{lease.end:.3f}\n"
            )

    @classmethod
    def load(cls, source: str | Path | TextIO) -> "DhcpLog":
        """Parse a text-form DHCP log."""
        if isinstance(source, (str, Path)):
            with open(source, "r", encoding="utf-8") as stream:
                return cls._read(stream)
        return cls._read(source)

    @classmethod
    def _read(cls, stream: TextIO) -> "DhcpLog":
        log = cls()
        for line_number, raw in enumerate(stream, start=1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            fields = line.split("\t")
            if len(fields) != 4:
                raise DnsLogFormatError(line_number, line, "lease needs 4 fields")
            try:
                log.add(
                    DhcpLease(
                        mac=fields[0],
                        ip=fields[1],
                        start=float(fields[2]),
                        end=float(fields[3]),
                    )
                )
            except ValueError as exc:
                raise DnsLogFormatError(line_number, line, str(exc)) from exc
        return log


class HostIdentityResolver:
    """Map (ip, timestamp) observations back to stable device identities.

    Leases for each IP are indexed by start time; lookup is a binary search
    over the lease intervals, so resolving a full trace is
    O(records * log leases).
    """

    def __init__(self, log: DhcpLog) -> None:
        by_ip: dict[str, list[DhcpLease]] = defaultdict(list)
        for lease in log:
            by_ip[lease.ip].append(lease)
        self._starts: dict[str, list[float]] = {}
        self._leases: dict[str, list[DhcpLease]] = {}
        for ip, leases in by_ip.items():
            leases.sort(key=lambda lease: lease.start)
            self._leases[ip] = leases
            self._starts[ip] = [lease.start for lease in leases]

    def resolve(self, ip: str, timestamp: float) -> str | None:
        """Return the MAC holding ``ip`` at ``timestamp``, or None.

        If no lease covers the timestamp the observation cannot be
        attributed (e.g. a statically addressed server); callers typically
        fall back to using the IP itself as the host identity.
        """
        leases = self._leases.get(ip)
        if not leases:
            return None
        index = bisect.bisect_right(self._starts[ip], timestamp) - 1
        if index < 0:
            return None
        lease = leases[index]
        return lease.mac if lease.active_at(timestamp) else None

    def resolve_or_ip(self, ip: str, timestamp: float) -> str:
        """Resolve to a MAC, falling back to the IP string itself."""
        mac = self.resolve(ip, timestamp)
        return mac if mac is not None else ip
