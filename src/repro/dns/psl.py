"""Public suffix list (PSL) and e2LD extraction.

The paper aggregates all hostnames to effective second-level domains
(e2LDs), "since e2LDs often tell the domain ownerships" (section 4.1). An
e2LD is one label below the *public suffix* — the portion of the name under
which Internet users can directly register names (``com``, ``co.uk``, ...).

This module implements the standard PSL matching algorithm — longest
matching rule wins; ``*`` wildcard rules; ``!`` exception rules; unlisted
TLDs are treated as public suffixes — over an embedded snapshot of the
ICANN section covering the TLDs that appear in real campus traffic and in
our simulator. Custom rule sets can be supplied for tests.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

from repro.dns.names import normalize_domain, split_labels
from repro.errors import DomainNameError

# A compact snapshot of ICANN-section rules. This intentionally covers the
# suffixes used by the simulator plus the common multi-label suffixes that
# exercise wildcard/exception semantics.
_EMBEDDED_RULES: tuple[str, ...] = (
    # Generic TLDs.
    "com", "org", "net", "edu", "gov", "mil", "int", "info", "biz",
    "name", "pro", "mobi", "asia", "tel", "xxx", "xyz", "top", "site",
    "online", "club", "shop", "vip", "work", "tech", "store", "fun",
    "icu", "bid", "loan", "win", "download", "stream", "racing", "date",
    "faith", "review", "trade", "accountant", "science", "party", "cricket",
    "space", "website", "live", "app", "dev", "page", "cloud", "email",
    "link", "news", "media", "agency", "digital", "network", "systems",
    "solutions", "services", "support", "world", "today", "life", "guru",
    # Country codes (single-label rules).
    "cn", "us", "ws", "ru", "de", "fr", "nl", "eu", "ca", "ch", "se",
    "no", "fi", "dk", "it", "es", "pt", "pl", "cz", "at", "be", "ie",
    "in", "sg", "hk", "tw", "kr", "my", "th", "vn", "id", "ph", "br",
    "mx", "ar", "cl", "co", "tv", "cc", "me", "io", "ai", "ly", "to",
    "su", "kz", "ua", "by", "tk", "ml", "ga", "cf", "gq", "pw", "gd",
    # Multi-label country suffixes.
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk", "ltd.uk",
    "plc.uk", "sch.uk", "uk",
    "com.cn", "net.cn", "org.cn", "gov.cn", "edu.cn", "ac.cn",
    "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp", "jp",
    "com.au", "net.au", "org.au", "edu.au", "gov.au", "au",
    "co.nz", "net.nz", "org.nz", "nz",
    "com.br", "net.br", "org.br",
    "co.in", "net.in", "org.in", "firm.in", "gen.in", "ind.in",
    "com.tw", "org.tw", "idv.tw",
    "com.hk", "org.hk", "edu.hk",
    "com.sg", "org.sg", "edu.sg",
    "co.kr", "or.kr", "kr",
    "com.mx", "org.mx",
    "com.ar", "com.ru", "org.ru", "net.ru", "msk.ru", "spb.ru",
    # Wildcard and exception rules (exercise full PSL semantics; modeled on
    # the historical *.ck rule set).
    "*.ck", "!www.ck",
    "*.bn", "*.kw",
    # Private-section style suffixes common in DNS traffic.
    "blogspot.com", "github.io", "herokuapp.com", "cloudfront.net",
    "appspot.com", "azurewebsites.net", "amazonaws.com",
    "compute.amazonaws.com", "s3.amazonaws.com", "fastly.net",
    "akamaized.net", "akamaiedge.net", "edgekey.net", "edgesuite.net",
    "cloudflare.net", "duckdns.org", "dynv6.net", "no-ip.org", "ddns.net",
)


class PublicSuffixList:
    """Matcher over a set of PSL rules.

    Args:
        rules: Iterable of rule strings. ``*`` as the left-most label makes
            a wildcard rule; a leading ``!`` makes an exception rule.
    """

    def __init__(self, rules: Iterable[str]) -> None:
        self._exact: set[str] = set()
        self._wildcard: set[str] = set()  # stores the parent suffix of "*."
        self._exception: set[str] = set()
        for rule in rules:
            rule = rule.strip().lower()
            if not rule:
                continue
            if rule.startswith("!"):
                self._exception.add(rule[1:])
            elif rule.startswith("*."):
                self._wildcard.add(rule[2:])
            else:
                self._exact.add(rule)

    @property
    def rule_count(self) -> int:
        """Total number of loaded rules (exact + wildcard + exception)."""
        return len(self._exact) + len(self._wildcard) + len(self._exception)

    def public_suffix(self, name: str) -> str:
        """Return the public suffix of ``name``.

        Implements the canonical PSL algorithm: among all matching rules
        the longest wins; exception rules beat wildcard rules; if no rule
        matches, the suffix is the rightmost label ("unlisted TLD" rule).
        """
        labels = split_labels(name)
        best_length = 0
        for start in range(len(labels)):
            candidate = ".".join(labels[start:])
            length = len(labels) - start
            if candidate in self._exception:
                # Exception rule: the suffix is the rule minus its left label.
                return ".".join(labels[start + 1 :])
            if candidate in self._exact and length > best_length:
                best_length = length
            parent = ".".join(labels[start + 1 :])
            if start + 1 <= len(labels) and parent in self._wildcard:
                if length > best_length:
                    best_length = length
        if best_length == 0:
            best_length = 1  # Unlisted TLD: rightmost label is the suffix.
        return ".".join(labels[-best_length:])

    def registered_domain(self, name: str) -> str:
        """Return the e2LD (public suffix plus one label) of ``name``.

        Raises:
            DomainNameError: if ``name`` is itself a public suffix.
        """
        normalized = normalize_domain(name)
        suffix = self.public_suffix(normalized)
        if normalized == suffix:
            raise DomainNameError(
                f"{name!r} is a public suffix and has no registrable part"
            )
        labels = normalized.split(".")
        suffix_size = len(suffix.split("."))
        return ".".join(labels[-(suffix_size + 1) :])

    def is_public_suffix(self, name: str) -> bool:
        """Whether ``name`` is exactly a public suffix."""
        normalized = normalize_domain(name)
        return self.public_suffix(normalized) == normalized


@lru_cache(maxsize=1)
def default_psl() -> PublicSuffixList:
    """The embedded PSL snapshot (cached singleton)."""
    return PublicSuffixList(_EMBEDDED_RULES)
