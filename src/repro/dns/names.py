"""Domain-name syntax helpers.

Validation and normalization follow RFC 1035 preferred-name syntax with the
common operational relaxations (digits allowed anywhere, underscore allowed
in service labels). The paper aggregates hostnames to effective second-level
domains (e2LDs); :func:`registered_domain` performs that aggregation using
the public suffix list in :mod:`repro.dns.psl`.
"""

from __future__ import annotations

import string

from repro.errors import DomainNameError

_LABEL_CHARS = frozenset(string.ascii_lowercase + string.digits + "-_")
MAX_NAME_LENGTH = 253
MAX_LABEL_LENGTH = 63


def normalize_domain(name: str) -> str:
    """Lower-case a domain name and strip the trailing root dot.

    Raises:
        DomainNameError: if the result is empty.
    """
    normalized = name.strip().lower().rstrip(".")
    if not normalized:
        raise DomainNameError(f"empty domain name: {name!r}")
    return normalized


def split_labels(name: str) -> list[str]:
    """Split a normalized domain name into its labels, left to right."""
    return normalize_domain(name).split(".")


def is_valid_domain_name(name: str) -> bool:
    """Check RFC 1035-style syntax (with operational relaxations).

    Rules enforced: total length <= 253; 1..63 chars per label; labels use
    [a-z0-9-_] only and do not begin or end with a hyphen; at least one
    label.
    """
    try:
        normalized = normalize_domain(name)
    except DomainNameError:
        return False
    if len(normalized) > MAX_NAME_LENGTH:
        return False
    for label in normalized.split("."):
        if not 1 <= len(label) <= MAX_LABEL_LENGTH:
            return False
        if not set(label) <= _LABEL_CHARS:
            return False
        if label.startswith("-") or label.endswith("-"):
            return False
    return True


def registered_domain(name: str, psl=None) -> str:
    """Return the effective second-level domain (e2LD) of ``name``.

    The e2LD is the public suffix plus one label, e.g. ``maps.google.com``
    -> ``google.com`` and ``www.bbc.co.uk`` -> ``bbc.co.uk``. This is the
    aggregation unit used throughout the paper (pruning rule 3).

    Args:
        name: Any fully qualified domain name.
        psl: Optional :class:`~repro.dns.psl.PublicSuffixList`; defaults to
            the embedded snapshot.

    Raises:
        DomainNameError: if ``name`` is itself a bare public suffix (it has
            no registrable part).
    """
    from repro.dns.psl import default_psl

    if psl is None:
        psl = default_psl()
    return psl.registered_domain(name)
