"""DNS substrate: record types, traffic log model, public-suffix handling.

This package models the slice of the DNS that the paper's measurement
pipeline touches: query/response records captured at campus edge routers,
DHCP leases for host identity, TTL semantics, and effective-second-level
domain (e2LD) extraction via the public suffix list.
"""

from repro.dns.types import (
    DhcpLease,
    DnsQuery,
    DnsResponse,
    QueryType,
    ResourceRecord,
)
from repro.dns.names import (
    is_valid_domain_name,
    normalize_domain,
    registered_domain,
    split_labels,
)
from repro.dns.psl import PublicSuffixList, default_psl
from repro.dns.logfmt import (
    DnsTraceReader,
    DnsTraceWriter,
    format_query,
    format_response,
    parse_query,
    parse_response,
)
from repro.dns.dhcp import DhcpLog, HostIdentityResolver

__all__ = [
    "DhcpLease",
    "DhcpLog",
    "DnsQuery",
    "DnsResponse",
    "DnsTraceReader",
    "DnsTraceWriter",
    "HostIdentityResolver",
    "PublicSuffixList",
    "QueryType",
    "ResourceRecord",
    "default_psl",
    "format_query",
    "format_response",
    "is_valid_domain_name",
    "normalize_domain",
    "parse_query",
    "parse_response",
    "registered_domain",
    "split_labels",
]
