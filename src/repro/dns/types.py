"""Core DNS and DHCP record types.

These dataclasses mirror the fields the paper collects from campus edge
routers (section 2): for queries — timestamp, identification number, source
IP, queried name, query type; for responses — timestamp, identification
number, destination IP, and the response values; for DHCP — MAC address,
assigned IP, and lease window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class QueryType(enum.Enum):
    """DNS query/record types observed in the campus traces."""

    A = "A"
    AAAA = "AAAA"
    NS = "NS"
    CNAME = "CNAME"
    MX = "MX"
    TXT = "TXT"
    PTR = "PTR"
    SOA = "SOA"

    @classmethod
    def from_wire(cls, token: str) -> "QueryType":
        """Parse a type mnemonic as it appears in a trace log."""
        try:
            return cls(token.upper())
        except ValueError as exc:
            raise ValueError(f"unknown DNS query type {token!r}") from exc


@dataclass(frozen=True, slots=True)
class DnsQuery:
    """One DNS query packet captured at the edge router.

    Attributes:
        timestamp: Seconds since the trace epoch (float, sub-second capable).
        txid: DNS transaction identification number (0..65535).
        source_ip: Querying host's IP address at the time of the query.
        qname: Fully qualified domain name being queried (no trailing dot).
        qtype: Query type (A, AAAA, NS, CNAME, MX, ...).
    """

    timestamp: float
    txid: int
    source_ip: str
    qname: str
    qtype: QueryType = QueryType.A

    def __post_init__(self) -> None:
        if not 0 <= self.txid <= 0xFFFF:
            raise ValueError(f"txid {self.txid} outside 0..65535")
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """A single record in a DNS response's answer section."""

    rtype: QueryType
    value: str
    ttl: int

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ValueError("TTL must be non-negative")


@dataclass(frozen=True, slots=True)
class DnsResponse:
    """One DNS response packet captured at the edge router.

    Attributes:
        timestamp: Seconds since the trace epoch.
        txid: Transaction id matching the triggering query.
        destination_ip: IP of the host the response is delivered to.
        qname: Queried name this response answers.
        answers: Answer-section records (empty for NXDOMAIN).
        nxdomain: True when the name does not exist.
    """

    timestamp: float
    txid: int
    destination_ip: str
    qname: str
    answers: tuple[ResourceRecord, ...] = ()
    nxdomain: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.txid <= 0xFFFF:
            raise ValueError(f"txid {self.txid} outside 0..65535")
        if self.nxdomain and self.answers:
            raise ValueError("an NXDOMAIN response cannot carry answers")

    @property
    def resolved_ips(self) -> tuple[str, ...]:
        """IPv4/IPv6 addresses in the answer section (A/AAAA records only)."""
        return tuple(
            rr.value
            for rr in self.answers
            if rr.rtype in (QueryType.A, QueryType.AAAA)
        )

    @property
    def min_ttl(self) -> int | None:
        """Minimum TTL across answers, or None for an empty answer section."""
        if not self.answers:
            return None
        return min(rr.ttl for rr in self.answers)


@dataclass(frozen=True, slots=True)
class DhcpLease:
    """One DHCP lease binding a MAC address to an IP for a time window.

    The paper collects DHCP logs in parallel with DNS logs so that queries
    can be attributed to physical devices even when their IP changes due to
    mobility or lease timeout.
    """

    mac: str
    ip: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"lease end ({self.end}) must be after start ({self.start})"
            )

    def active_at(self, timestamp: float) -> bool:
        """Whether this lease covers ``timestamp`` (start-inclusive)."""
        return self.start <= timestamp < self.end


@dataclass(slots=True)
class TraceMetadata:
    """Descriptive metadata attached to a generated or captured trace."""

    start_time: float
    duration: float
    host_count: int
    description: str = ""
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration
