"""Text format for DNS traffic logs.

The campus collection pipeline in the paper stores one record per line.
We use a tab-separated format with an explicit record kind so that queries
and responses can be interleaved in capture order:

``Q\t<timestamp>\t<txid>\t<source_ip>\t<qname>\t<qtype>``

``R\t<timestamp>\t<txid>\t<dest_ip>\t<qname>\tNXDOMAIN``

``R\t<timestamp>\t<txid>\t<dest_ip>\t<qname>\t<type>:<value>:<ttl>[,...]``

Readers are streaming (constant memory) and raise
:class:`~repro.errors.DnsLogFormatError` with line numbers on malformed
input.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.dns.types import DnsQuery, DnsResponse, QueryType, ResourceRecord
from repro.errors import DnsLogFormatError

_QUERY_KIND = "Q"
_RESPONSE_KIND = "R"
_NXDOMAIN_TOKEN = "NXDOMAIN"


def format_query(query: DnsQuery) -> str:
    """Serialize one query to its log-line form (no trailing newline)."""
    return "\t".join(
        (
            _QUERY_KIND,
            f"{query.timestamp:.3f}",
            str(query.txid),
            query.source_ip,
            query.qname,
            query.qtype.value,
        )
    )


def format_response(response: DnsResponse) -> str:
    """Serialize one response to its log-line form (no trailing newline)."""
    if response.nxdomain:
        payload = _NXDOMAIN_TOKEN
    else:
        payload = ",".join(
            f"{rr.rtype.value}:{rr.value}:{rr.ttl}" for rr in response.answers
        )
    return "\t".join(
        (
            _RESPONSE_KIND,
            f"{response.timestamp:.3f}",
            str(response.txid),
            response.destination_ip,
            response.qname,
            payload,
        )
    )


def parse_query(fields: list[str], line_number: int, line: str) -> DnsQuery:
    """Parse the fields of a ``Q`` record."""
    if len(fields) != 6:
        raise DnsLogFormatError(line_number, line, "query needs 6 fields")
    try:
        return DnsQuery(
            timestamp=float(fields[1]),
            txid=int(fields[2]),
            source_ip=fields[3],
            qname=fields[4],
            qtype=QueryType.from_wire(fields[5]),
        )
    except ValueError as exc:
        raise DnsLogFormatError(line_number, line, str(exc)) from exc


def parse_response(fields: list[str], line_number: int, line: str) -> DnsResponse:
    """Parse the fields of an ``R`` record."""
    if len(fields) != 6:
        raise DnsLogFormatError(line_number, line, "response needs 6 fields")
    try:
        timestamp = float(fields[1])
        txid = int(fields[2])
    except ValueError as exc:
        raise DnsLogFormatError(line_number, line, str(exc)) from exc
    payload = fields[5]
    if payload == _NXDOMAIN_TOKEN:
        answers: tuple[ResourceRecord, ...] = ()
        nxdomain = True
    else:
        nxdomain = False
        records = []
        if payload:
            for chunk in payload.split(","):
                parts = chunk.split(":")
                if len(parts) != 3:
                    raise DnsLogFormatError(
                        line_number, line, f"malformed answer record {chunk!r}"
                    )
                try:
                    records.append(
                        ResourceRecord(
                            rtype=QueryType.from_wire(parts[0]),
                            value=parts[1],
                            ttl=int(parts[2]),
                        )
                    )
                except ValueError as exc:
                    raise DnsLogFormatError(line_number, line, str(exc)) from exc
        answers = tuple(records)
    try:
        return DnsResponse(
            timestamp=timestamp,
            txid=txid,
            destination_ip=fields[3],
            qname=fields[4],
            answers=answers,
            nxdomain=nxdomain,
        )
    except ValueError as exc:
        raise DnsLogFormatError(line_number, line, str(exc)) from exc


class DnsTraceWriter:
    """Streaming writer for interleaved DNS trace logs.

    Usable as a context manager. Accepts any mix of
    :class:`~repro.dns.types.DnsQuery` and
    :class:`~repro.dns.types.DnsResponse` records.
    """

    def __init__(self, destination: str | Path | TextIO) -> None:
        if isinstance(destination, (str, Path)):
            self._stream: TextIO = open(destination, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False
        self.records_written = 0

    def write(self, record: DnsQuery | DnsResponse) -> None:
        """Append one record."""
        if isinstance(record, DnsQuery):
            line = format_query(record)
        elif isinstance(record, DnsResponse):
            line = format_response(record)
        else:
            raise TypeError(f"cannot serialize {type(record).__name__}")
        self._stream.write(line + "\n")
        self.records_written += 1

    def write_all(self, records: Iterable[DnsQuery | DnsResponse]) -> int:
        """Append many records; returns how many were written."""
        count = 0
        for record in records:
            self.write(record)
            count += 1
        return count

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "DnsTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TraceRecordIterator:
    """Iterator over one pass of a trace, owning its file handle.

    Usable as a context manager (the chunked-ingestion path holds one of
    these across many batch yields and must be able to release the
    underlying file deterministically — relying on garbage collection to
    run a generator's ``finally`` leaks handles on abandonment):

    * :meth:`close` (or ``with``-exit) closes the stream when this
      iterator opened it; externally supplied streams are left alone;
    * :meth:`skip_records` discards records by counting raw lines
      without constructing :class:`DnsQuery`/:class:`DnsResponse`
      objects — the cheap half of cursor-based resume.
    """

    def __init__(self, stream: TextIO, owns_stream: bool) -> None:
        self._stream = stream
        self._owns_stream = owns_stream
        self._line_number = 0
        self._closed = False
        self.records_read = 0

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (or the stream is gone)."""
        return self._closed

    def close(self) -> None:
        """Release the underlying stream (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "TraceRecordIterator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> "TraceRecordIterator":
        return self

    def __next__(self) -> DnsQuery | DnsResponse:
        if self._closed:
            raise StopIteration
        for raw in self._stream:
            self._line_number += 1
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            fields = line.split("\t")
            kind = fields[0]
            self.records_read += 1
            try:
                if kind == _QUERY_KIND:
                    return parse_query(fields, self._line_number, line)
                if kind == _RESPONSE_KIND:
                    return parse_response(fields, self._line_number, line)
                raise DnsLogFormatError(
                    self._line_number, line, f"unknown record kind {kind!r}"
                )
            except DnsLogFormatError:
                # Match the old generator semantics: a parse error ends
                # the pass, releasing the handle before propagating.
                self.close()
                raise
        self.close()
        raise StopIteration

    def skip_records(self, count: int) -> int:
        """Discard up to ``count`` records without parsing them.

        Comment and blank lines are passed over for free; record lines
        are counted but never turned into objects. Returns how many
        records were actually skipped (fewer than ``count`` only when
        the trace is exhausted first).
        """
        skipped = 0
        if count <= 0 or self._closed:
            return 0
        for raw in self._stream:
            self._line_number += 1
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            self.records_read += 1
            skipped += 1
            if skipped >= count:
                break
        return skipped


class DnsTraceReader:
    """Streaming reader yielding records in file order.

    Blank lines and ``#`` comment lines are skipped. Iterating the reader
    yields :class:`DnsQuery` / :class:`DnsResponse` objects. Each
    iteration opens its own pass over the source; use :meth:`records`
    when the pass should be context-managed (closes the file even when
    iteration is abandoned early)::

        with DnsTraceReader(path).records() as records:
            first = next(records)
    """

    def __init__(self, source: str | Path | TextIO) -> None:
        self._source = source

    def _open(self) -> tuple[TextIO, bool]:
        if isinstance(self._source, (str, Path)):
            return open(self._source, "r", encoding="utf-8"), True
        if isinstance(self._source, io.TextIOBase):
            return self._source, False
        return self._source, False

    def records(self) -> TraceRecordIterator:
        """One context-managed pass over the trace, in file order."""
        stream, owns = self._open()
        return TraceRecordIterator(stream, owns)

    def __iter__(self) -> Iterator[DnsQuery | DnsResponse]:
        return self.records()

    def queries(self) -> Iterator[DnsQuery]:
        """Yield only the query records."""
        for record in self:
            if isinstance(record, DnsQuery):
                yield record

    def responses(self) -> Iterator[DnsResponse]:
        """Yield only the response records."""
        for record in self:
            if isinstance(record, DnsResponse):
                yield record
