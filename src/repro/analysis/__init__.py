"""Trace analysis and reporting utilities."""

from repro.analysis.stats import TrafficStatistics, compute_traffic_statistics
from repro.analysis.drift import (
    TransferDecay,
    feature_stability,
    neighborhood_stability,
    transfer_auc_decay,
)
from repro.analysis.federation import (
    CampaignMatch,
    ConsensusVerdict,
    SiteVerdicts,
    correlate_verdicts,
    match_campaigns,
)
from repro.analysis.reporting import (
    format_domain_table,
    format_roc_ascii,
    format_series_table,
)

__all__ = [
    "CampaignMatch",
    "ConsensusVerdict",
    "SiteVerdicts",
    "TrafficStatistics",
    "TransferDecay",
    "compute_traffic_statistics",
    "correlate_verdicts",
    "feature_stability",
    "neighborhood_stability",
    "transfer_auc_decay",
    "format_domain_table",
    "format_roc_ascii",
    "format_series_table",
    "match_campaigns",
]
