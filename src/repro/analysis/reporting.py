"""Plain-text reporting helpers used by examples and benchmarks.

Everything here renders to monospace text (the environment has no
plotting stack): simple aligned tables and an ASCII ROC plot.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def format_domain_table(
    domains: Sequence[str], columns: int = 3, width: int = 24
) -> str:
    """Lay out domain names in a grid, like the paper's Tables 1-2."""
    if columns < 1:
        raise ValueError("columns must be at least 1")
    lines = []
    for start in range(0, len(domains), columns):
        row = domains[start : start + columns]
        lines.append("  ".join(name.ljust(width) for name in row).rstrip())
    return "\n".join(lines)


def format_series_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
) -> str:
    """Aligned table with numeric formatting."""

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    rendered = [[render(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(row[i].ljust(widths[i]) for i in range(len(headers)))
        for row in rendered
    ]
    return "\n".join([header_line, separator, *body])


def format_roc_ascii(
    fpr: np.ndarray, tpr: np.ndarray, width: int = 61, height: int = 21
) -> str:
    """Render an ROC curve as an ASCII plot (TPR vs FPR)."""
    grid = [[" "] * width for _ in range(height)]
    # Diagonal (chance line).
    for i in range(min(width, height * 3)):
        x = int(i / max(width - 1, 1) * (width - 1))
        y = int(i / max(width - 1, 1) * (height - 1))
        if 0 <= y < height:
            grid[height - 1 - y][x] = "."
    xs = np.linspace(0.0, 1.0, width)
    curve = np.interp(xs, fpr, tpr)
    for column, value in enumerate(curve):
        row = height - 1 - int(round(value * (height - 1)))
        row = min(max(row, 0), height - 1)
        grid[row][column] = "*"
    lines = ["TPR"]
    for row_index, row in enumerate(grid):
        prefix = "1.0|" if row_index == 0 else ("0.0|" if row_index == height - 1 else "   |")
        lines.append(prefix + "".join(row))
    lines.append("   +" + "-" * width)
    lines.append("    0.0" + " " * (width - 10) + "FPR 1.0")
    return "\n".join(lines)
