"""Trace-level traffic statistics (paper Figure 1).

Figure 1 plots, over the one-month capture: (a) DNS query volumes per
time bin and (b) the number of unique FQDNs and e2LDs per bin. This
module computes those series from any iterable of queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.dns.names import is_valid_domain_name
from repro.dns.psl import PublicSuffixList, default_psl
from repro.dns.types import DnsQuery
from repro.errors import DomainNameError

SECONDS_PER_HOUR = 3600.0


@dataclass(slots=True)
class TrafficStatistics:
    """Per-bin query volumes and unique-name counts."""

    bin_seconds: float
    query_volume: np.ndarray
    unique_fqdns: np.ndarray
    unique_e2lds: np.ndarray
    total_queries: int = 0
    total_unique_fqdns: int = 0
    total_unique_e2lds: int = 0

    @property
    def bin_count(self) -> int:
        return int(self.query_volume.size)

    def peak_bin(self) -> int:
        """Index of the busiest bin."""
        return int(np.argmax(self.query_volume))

    def daily_profile(self) -> np.ndarray:
        """Mean query volume per hour-of-day (needs hourly bins)."""
        bins_per_day = int(round(86_400.0 / self.bin_seconds))
        usable = (self.bin_count // bins_per_day) * bins_per_day
        if usable == 0:
            return self.query_volume.astype(float)
        return (
            self.query_volume[:usable]
            .reshape(-1, bins_per_day)
            .mean(axis=0)
        )


def compute_traffic_statistics(
    queries: Iterable[DnsQuery],
    bin_seconds: float = SECONDS_PER_HOUR,
    psl: PublicSuffixList | None = None,
) -> TrafficStatistics:
    """Compute Figure-1-style series from a query stream."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if psl is None:
        psl = default_psl()

    volumes: dict[int, int] = {}
    fqdns_per_bin: dict[int, set[str]] = {}
    e2lds_per_bin: dict[int, set[str]] = {}
    all_fqdns: set[str] = set()
    all_e2lds: set[str] = set()
    e2ld_cache: dict[str, str | None] = {}
    total = 0

    for query in queries:
        total += 1
        bin_index = int(query.timestamp // bin_seconds)
        volumes[bin_index] = volumes.get(bin_index, 0) + 1
        fqdns_per_bin.setdefault(bin_index, set()).add(query.qname)
        all_fqdns.add(query.qname)
        e2ld = e2ld_cache.get(query.qname, "")
        if e2ld == "":
            e2ld = None
            if is_valid_domain_name(query.qname):
                try:
                    e2ld = psl.registered_domain(query.qname)
                except DomainNameError:
                    e2ld = None
            e2ld_cache[query.qname] = e2ld
        if e2ld is not None:
            e2lds_per_bin.setdefault(bin_index, set()).add(e2ld)
            all_e2lds.add(e2ld)

    if volumes:
        size = max(volumes) + 1
    else:
        size = 0
    volume_series = np.zeros(size, dtype=np.int64)
    fqdn_series = np.zeros(size, dtype=np.int64)
    e2ld_series = np.zeros(size, dtype=np.int64)
    for bin_index, count in volumes.items():
        volume_series[bin_index] = count
    for bin_index, names in fqdns_per_bin.items():
        fqdn_series[bin_index] = len(names)
    for bin_index, names in e2lds_per_bin.items():
        e2ld_series[bin_index] = len(names)

    return TrafficStatistics(
        bin_seconds=bin_seconds,
        query_volume=volume_series,
        unique_fqdns=fqdn_series,
        unique_e2lds=e2ld_series,
        total_queries=total,
        total_unique_fqdns=len(all_fqdns),
        total_unique_e2lds=len(all_e2lds),
    )
