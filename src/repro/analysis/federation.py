"""Cross-network correlation of malicious domains (paper section 10).

The paper's stated future work: "deploy our proposed system in
distributed campus networks ... and analyze the correlations of malicious
domains for mining large-scale attack campaigns and detecting new and
evolving botnets". This module implements that correlation layer:

* each participating network runs its own detector and shares only
  *verdicts* (domain, score) and cluster membership — never raw traffic,
  which matches how real federations share indicators;
* :func:`correlate_verdicts` merges per-site scores into a consensus
  ranking, rewarding domains flagged independently at several sites;
* :func:`match_campaigns` links clusters across sites through shared
  domains and shared resolved infrastructure, surfacing campaigns too
  small to stand out at any single site.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.clustering import DomainCluster


@dataclass(slots=True)
class SiteVerdicts:
    """One network's shareable output."""

    site: str
    scores: dict[str, float]  # domain -> decision score d(x)
    clusters: list[DomainCluster] = field(default_factory=list)
    # Optional: resolved IPs per domain, for infrastructure matching.
    domain_ips: dict[str, set[str]] = field(default_factory=dict)


@dataclass(slots=True)
class ConsensusVerdict:
    """A domain's federated assessment."""

    domain: str
    sites_observed: int
    sites_flagged: int
    mean_score: float
    max_score: float

    @property
    def consensus_score(self) -> float:
        """Cross-site score: mean evidence boosted by breadth.

        A domain flagged independently at k sites is far more suspicious
        than a single-site detection of the same strength; the boost is
        logarithmic so one noisy site cannot dominate.
        """
        breadth = 1.0 + np.log1p(self.sites_flagged)
        return self.mean_score * breadth if self.sites_flagged else self.mean_score


@dataclass(slots=True)
class CampaignMatch:
    """Two site-local clusters that appear to be one campaign."""

    site_a: str
    cluster_a: int
    site_b: str
    cluster_b: int
    shared_domains: set[str]
    shared_ips: set[str]

    @property
    def evidence(self) -> int:
        return len(self.shared_domains) + len(self.shared_ips)


def correlate_verdicts(
    sites: Sequence[SiteVerdicts],
    flag_threshold: float = 0.0,
) -> list[ConsensusVerdict]:
    """Merge per-site scores into consensus verdicts, strongest first."""
    per_domain: dict[str, list[float]] = defaultdict(list)
    for site in sites:
        for domain, score in site.scores.items():
            per_domain[domain].append(score)
    verdicts = []
    for domain, scores in per_domain.items():
        array = np.asarray(scores)
        verdicts.append(
            ConsensusVerdict(
                domain=domain,
                sites_observed=array.size,
                sites_flagged=int(np.sum(array > flag_threshold)),
                mean_score=float(array.mean()),
                max_score=float(array.max()),
            )
        )
    verdicts.sort(key=lambda v: v.consensus_score, reverse=True)
    return verdicts


def match_campaigns(
    sites: Sequence[SiteVerdicts],
    min_shared_domains: int = 2,
    min_shared_ips: int = 1,
) -> list[CampaignMatch]:
    """Link clusters across sites through shared domains/infrastructure.

    A pair of clusters from different sites matches when they share at
    least ``min_shared_domains`` domains, or at least one domain *and*
    ``min_shared_ips`` resolved addresses.
    """
    matches: list[CampaignMatch] = []
    for a_index, site_a in enumerate(sites):
        for site_b in sites[a_index + 1 :]:
            for cluster_a in site_a.clusters:
                domains_a = set(cluster_a.domains)
                ips_a = set().union(
                    *(site_a.domain_ips.get(d, set()) for d in domains_a)
                ) if site_a.domain_ips else set()
                for cluster_b in site_b.clusters:
                    domains_b = set(cluster_b.domains)
                    shared_domains = domains_a & domains_b
                    ips_b = set().union(
                        *(site_b.domain_ips.get(d, set()) for d in domains_b)
                    ) if site_b.domain_ips else set()
                    shared_ips = ips_a & ips_b
                    qualifies = len(shared_domains) >= min_shared_domains or (
                        shared_domains and len(shared_ips) >= min_shared_ips
                    )
                    if qualifies:
                        matches.append(
                            CampaignMatch(
                                site_a=site_a.site,
                                cluster_a=cluster_a.cluster_id,
                                site_b=site_b.site,
                                cluster_b=cluster_b.cluster_id,
                                shared_domains=shared_domains,
                                shared_ips=shared_ips,
                            )
                        )
    matches.sort(key=lambda m: m.evidence, reverse=True)
    return matches
