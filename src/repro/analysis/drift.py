"""Temporal stability of features (the paper's section 8.2 argument).

The paper claims behavioral features are "more robust and stable" than
hand-crafted statistics, whose distributions "change over time and cross
different networks". This module quantifies both halves of that claim
over two capture windows:

* :func:`neighborhood_stability` — how much a domain's bipartite-graph
  neighborhood (its behavioral signature) persists across windows,
  measured as per-domain Jaccard overlap;
* :func:`feature_stability` — how strongly each statistical feature's
  per-domain values correlate across windows (Spearman rank
  correlation, since detectors threshold on order, not raw values);
* :func:`transfer_auc_decay` — the operational consequence: a classifier
  trained on window-1 features loses AUC when applied to window-2
  features of the same domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.ml.metrics import roc_auc_score


def neighborhood_stability(
    window_a: BipartiteGraph,
    window_b: BipartiteGraph,
    domains: Sequence[str],
) -> dict[str, float]:
    """Per-domain Jaccard overlap of neighborhoods across two windows.

    Domains absent from either window are skipped (no basis for
    comparison).
    """
    stability: dict[str, float] = {}
    for domain in domains:
        hood_a = window_a.adjacency.get(domain)
        hood_b = window_b.adjacency.get(domain)
        if not hood_a or not hood_b:
            continue
        stability[domain] = len(hood_a & hood_b) / len(hood_a | hood_b)
    return stability


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (constant inputs give 0.0)."""
    if a.size < 3 or np.all(a == a[0]) or np.all(b == b[0]):
        return 0.0
    rank_a = np.argsort(np.argsort(a)).astype(float)
    rank_b = np.argsort(np.argsort(b)).astype(float)
    sd_a = rank_a.std()
    sd_b = rank_b.std()
    if sd_a == 0 or sd_b == 0:
        return 0.0
    return float(
        np.mean((rank_a - rank_a.mean()) * (rank_b - rank_b.mean()))
        / (sd_a * sd_b)
    )


def feature_stability(
    features_a: np.ndarray,
    features_b: np.ndarray,
    feature_names: Sequence[str] | None = None,
) -> dict[str, float]:
    """Per-feature Spearman correlation of values across two windows.

    Rows must be aligned (same domain per row in both matrices).
    """
    features_a = np.asarray(features_a, dtype=float)
    features_b = np.asarray(features_b, dtype=float)
    if features_a.shape != features_b.shape:
        raise ValueError("windows disagree on feature matrix shape")
    columns = features_a.shape[1]
    if feature_names is None:
        feature_names = [f"f{i}" for i in range(columns)]
    if len(feature_names) != columns:
        raise ValueError("feature_names length mismatch")
    return {
        name: _spearman(features_a[:, i], features_b[:, i])
        for i, name in enumerate(feature_names)
    }


@dataclass(slots=True)
class TransferDecay:
    """Within-window vs cross-window classifier quality."""

    within_auc: float
    transfer_auc: float

    @property
    def decay(self) -> float:
        """AUC lost when features drift under a fixed model."""
        return self.within_auc - self.transfer_auc


def transfer_auc_decay(
    model_factory: Callable[[], object],
    features_train: np.ndarray,
    features_shifted: np.ndarray,
    labels: np.ndarray,
) -> TransferDecay:
    """Train on window-1 features; score window-1 and window-2 features.

    ``features_train`` and ``features_shifted`` describe the *same
    domains* (aligned rows, identical labels) measured in two windows, so
    any AUC drop isolates feature drift from label shift.
    """
    labels = np.asarray(labels)
    model = model_factory()
    model.fit(features_train, labels)
    if hasattr(model, "decision_function"):
        scores_within = model.decision_function(features_train)
        scores_shifted = model.decision_function(features_shifted)
    else:
        scores_within = model.predict_proba(features_train)[:, 1]
        scores_shifted = model.predict_proba(features_shifted)[:, 1]
    return TransferDecay(
        within_auc=roc_auc_score(labels, scores_within),
        transfer_auc=roc_auc_score(labels, scores_shifted),
    )
