"""Cost-model task splitting for multi-view LINE training.

The pipeline trains three behavioral views (paper §4.2/§5), and each
view with ``order="both"`` trains two independent half-dimension orders
(first- and second-order proximity share nothing but the input graph).
That yields up to ``views x orders`` completely independent training
tasks; this module enumerates them with:

* a **cost weight** per task — ``LineConfig.resolved_samples`` over the
  view's edge count, split across orders — so the scheduler can hand
  out heavy tasks first (longest-processing-time order) and the
  executor can decide whether the whole batch is even worth a pool;
* a **deterministic seed** per task, spawned from the view config's
  seed in a fixed order (first-order child 0, second-order child 1), so
  every backend trains from identical generator streams;
* **assembly coordinates** (``column`` slot + epoch offsets) so results
  coming back in any order reassemble into exactly the matrix — and the
  progress-report sequence — serial training produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import EmbeddingError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.embedding.line import LineConfig
    from repro.graphs.projection import SimilarityGraph

__all__ = [
    "EmbeddingTask",
    "plan_line_tasks",
    "plan_view_tasks",
    "schedule_order",
]


@dataclass(slots=True)
class EmbeddingTask:
    """One independent single-order training unit.

    Picklable and self-contained apart from the (potentially huge) edge
    arrays, which travel separately through :mod:`repro.parallel.shm`.
    """

    task_id: int
    view: str
    order: str  # "first" | "second"
    use_context: bool
    dimension: int  # columns this task trains (half of config for "both")
    column: int  # 0-based column offset in the assembled view matrix
    total_samples: int
    seed: np.random.SeedSequence
    weight: float
    epoch_offset: int
    epoch_total: int
    config: "LineConfig"


def plan_line_tasks(
    view: str,
    edge_count: int,
    config: "LineConfig",
    *,
    first_task_id: int = 0,
) -> list[EmbeddingTask]:
    """Tasks for one ``train_line`` call (1 for single order, 2 for both).

    The sample budget, half-dimension split, and per-order seed children
    here *define* the training decomposition: the serial path runs these
    same tasks in ``task_id`` order, which is what makes parallel output
    byte-identical to serial output.
    """
    # Late import: partition is imported by embedding.line for planning.
    from repro.embedding.line import _REPORTS_PER_ORDER

    if edge_count < 1:
        raise EmbeddingError("cannot plan training tasks for an edgeless graph")
    total = config.resolved_samples(edge_count)
    orders: list[tuple[str, bool, int, int, int]]
    if config.order == "both":
        half = config.dimension // 2
        orders = [
            ("first", False, half, 0, total // 2),
            ("second", True, half, half, total - total // 2),
        ]
    elif config.order == "first":
        orders = [("first", False, config.dimension, 0, total)]
    else:
        orders = [("second", True, config.dimension, 0, total)]

    seeds = np.random.SeedSequence(config.seed).spawn(len(orders))
    epoch_total = len(orders) * _REPORTS_PER_ORDER
    tasks: list[EmbeddingTask] = []
    for position, (order, use_context, dim, column, samples) in enumerate(
        orders
    ):
        tasks.append(
            EmbeddingTask(
                task_id=first_task_id + position,
                view=view,
                order=order,
                use_context=use_context,
                dimension=dim,
                column=column,
                total_samples=samples,
                seed=seeds[position],
                weight=float(samples),
                epoch_offset=position * _REPORTS_PER_ORDER,
                epoch_total=epoch_total,
                config=config,
            )
        )
    return tasks


def plan_view_tasks(
    views: Sequence[tuple[str, "SimilarityGraph", "LineConfig"]],
) -> list[EmbeddingTask]:
    """Tasks for a multi-view embedding stage, ``task_id`` globally unique.

    Views with no edges are skipped (they embed as zero matrices without
    training); callers detect them by absence from the plan.
    """
    tasks: list[EmbeddingTask] = []
    for view, graph, config in views:
        if graph.edge_count == 0:
            continue
        tasks.extend(
            plan_line_tasks(
                view,
                graph.edge_count,
                config,
                first_task_id=len(tasks),
            )
        )
    return tasks


def schedule_order(tasks: Sequence[EmbeddingTask]) -> list[EmbeddingTask]:
    """Submission order: heaviest first (longest-processing-time rule).

    With a handful of unequal tasks over few workers, LPT keeps the
    makespan near the heaviest task instead of the heaviest tail.
    """
    return sorted(tasks, key=lambda task: (-task.weight, task.task_id))
