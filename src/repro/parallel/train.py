"""Parallel multi-view LINE training orchestration.

:func:`train_views` is the single entry point the pipeline (all three
behavioral views at once) and :func:`~repro.embedding.line.train_line`
(one view) drive. It:

1. plans the independent single-order tasks (:mod:`.partition`);
2. resolves the backend (:class:`~repro.parallel.executor.ParallelConfig`
   fallback rules) — the serial path simply runs ``train_line`` per view
   under the usual ``trace()`` spans, so a degraded run is *exactly* the
   sequential pipeline;
3. for pool backends, builds the alias tables once in the caller, ships
   them (and the edge arrays) through shared memory (:mod:`.shm`),
   multiplexes worker progress through a queue (:mod:`.progress`), and
   reassembles per-view matrices from whichever order results land in.

Determinism contract: a task's generator stream depends only on the
view config's seed and the task's position in the plan — never on the
backend, worker count, or completion order — so serial, thread, and
process runs produce byte-identical embeddings for the same seed.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.embedding.alias import AliasSampler
from repro.embedding.kernels import prepare_edge_arrays
from repro.embedding.line import (
    LineConfig,
    LineEmbedding,
    _finalize_vectors,
    _record_training_metrics,
    _train_single_order,
    train_line,
)
from repro.errors import EmbeddingError
from repro.graphs.projection import SimilarityGraph
from repro.obs.logging import get_logger
from repro.obs.tracing import trace
from repro.parallel.executor import ParallelConfig, run_tasks
from repro.parallel.partition import (
    EmbeddingTask,
    plan_view_tasks,
    schedule_order,
)
from repro.parallel.progress import (
    LockedProgress,
    ProgressDrain,
    QueueProgress,
    record_stage_observation,
)
from repro.parallel.shm import ArrayPack, ArrayPackSpec, open_pack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.progress import ProgressCallback
    from repro.parallel.progress import ReportQueue

__all__ = ["train_views"]

_log = get_logger(__name__)

# Set by the pool initializer in process workers; holds the progress
# report queue (None when the caller passed no progress callback).
_WORKER_QUEUE: "ReportQueue | None" = None


def _init_worker(report_queue: "ReportQueue") -> None:
    """Pool initializer: stash the progress queue in the worker."""
    global _WORKER_QUEUE
    _WORKER_QUEUE = report_queue


def _run_embedding_task(
    task: EmbeddingTask,
    spec: ArrayPackSpec,
    node_count: int,
    progress: "ProgressCallback | None" = None,
) -> tuple[int, np.ndarray, float]:
    """Worker entry: train one order, return (task_id, vectors, seconds).

    Picklable top-level function. ``progress`` is the in-process shim
    for thread/serial backends; process workers build a queue shim from
    the initializer-provided queue instead.
    """
    if progress is None and _WORKER_QUEUE is not None:
        progress = QueueProgress(_WORKER_QUEUE, task.view)
    with open_pack(spec) as arrays:
        edge_sampler = AliasSampler.from_tables(
            arrays["edge_prob"], arrays["edge_alias"]
        )
        noise_sampler = AliasSampler.from_tables(
            arrays["noise_prob"], arrays["noise_alias"]
        )
        rng = np.random.default_rng(task.seed)
        started = time.perf_counter()
        vectors = _train_single_order(
            arrays["sources"],
            arrays["targets"],
            edge_sampler,
            noise_sampler,
            node_count,
            task.dimension,
            task.use_context,
            task.config,
            rng,
            task.total_samples,
            progress,
            task.epoch_offset,
            task.epoch_total,
        )
        elapsed = time.perf_counter() - started
    return task.task_id, vectors, elapsed


def _view_arrays(
    graph: SimilarityGraph, config: LineConfig
) -> dict[str, np.ndarray]:
    """The read-only arrays one view's tasks share (tables prebuilt).

    The edge arrays and the edge alias table are laid out for
    ``config.kernel`` (:func:`repro.embedding.kernels.prepare_edge_arrays`
    — e.g. pre-doubled orientation for ``"segment"``) in the caller, so
    workers train on exactly the bytes the serial path would use.
    """
    sources, targets, sample_weights = prepare_edge_arrays(
        graph.rows, graph.cols, graph.weights, config.kernel
    )
    edge_sampler = AliasSampler(sample_weights)
    degrees = graph.degree_array()
    noise_sampler = AliasSampler(np.power(np.maximum(degrees, 1e-12), 0.75))
    return {
        "sources": np.ascontiguousarray(sources),
        "targets": np.ascontiguousarray(targets),
        "edge_prob": edge_sampler.probabilities,
        "edge_alias": edge_sampler.aliases,
        "noise_prob": noise_sampler.probabilities,
        "noise_alias": noise_sampler.aliases,
    }


def train_views(
    views: Sequence[tuple[str, SimilarityGraph, LineConfig]],
    parallel: ParallelConfig,
    progress: "ProgressCallback | None" = None,
) -> dict[str, LineEmbedding]:
    """Train LINE over several views under one parallel policy.

    Args:
        views: ``(key, graph, config)`` triples; keys name the views in
            the returned dict and in progress/metric labels.
        parallel: Worker/backend policy; its fallback rules may resolve
            the whole run to serial execution.
        progress: Optional :class:`repro.obs.ProgressCallback`; receives
            the union of all views' reports (interleaved across views
            when they train concurrently).

    Returns:
        ``{key: LineEmbedding}`` — byte-identical to sequential
        ``train_line`` calls with the same configs.
    """
    for __, graph, config in views:
        config.validate()
        if graph.node_count == 0:
            raise EmbeddingError(
                f"cannot embed empty graph (kind={graph.kind!r})"
            )

    tasks = plan_view_tasks(views)
    backend = parallel.resolved_backend(sum(t.weight for t in tasks))
    if backend == "serial" or not tasks:
        embeddings: dict[str, LineEmbedding] = {}
        for key, graph, config in views:
            with trace(f"embedding.{key}") as span:
                embeddings[key] = train_line(graph, config, progress=progress)
            _log.debug(
                "view_embedded",
                view=key,
                nodes=graph.node_count,
                edges=graph.edge_count,
                seconds=span.elapsed,
                backend="serial",
            )
        return embeddings
    return _train_views_pooled(views, tasks, parallel, backend, progress)


def _train_views_pooled(
    views: Sequence[tuple[str, SimilarityGraph, LineConfig]],
    tasks: list[EmbeddingTask],
    parallel: ParallelConfig,
    backend: str,
    progress: "ProgressCallback | None",
) -> dict[str, LineEmbedding]:
    graphs = {key: graph for key, graph, __ in views}
    packs: dict[str, ArrayPack] = {}
    report_queue = None
    initializer = None
    initargs: tuple = ()
    thread_shim = None
    if progress is not None:
        if backend == "process":
            report_queue = multiprocessing.get_context("fork").Queue()
            initializer = _init_worker
            initargs = (report_queue,)
        else:
            thread_shim = LockedProgress(progress)

    try:
        for key, graph, config in views:
            if graph.edge_count > 0:
                packs[key] = ArrayPack(
                    _view_arrays(graph, config), use_shm=backend == "process"
                )
        ordered = schedule_order(tasks)
        payloads = [
            (
                task,
                packs[task.view].spec,
                graphs[task.view].node_count,
                thread_shim,
            )
            for task in ordered
        ]
        started = time.perf_counter()
        if report_queue is not None:
            with ProgressDrain(report_queue, progress):
                outcomes = run_tasks(
                    _run_embedding_task,
                    payloads,
                    parallel,
                    backend=backend,
                    initializer=initializer,
                    initargs=initargs,
                    label="embedding",
                )
        else:
            outcomes = run_tasks(
                _run_embedding_task,
                payloads,
                parallel,
                backend=backend,
                label="embedding",
            )
        wall = time.perf_counter() - started
    finally:
        for pack in packs.values():
            pack.close()
        if report_queue is not None:
            report_queue.close()
            report_queue.join_thread()

    by_id = {task_id: (vectors, elapsed) for task_id, vectors, elapsed in outcomes}
    embeddings: dict[str, LineEmbedding] = {}
    for key, graph, config in views:
        view_tasks = [t for t in tasks if t.view == key]
        if not view_tasks:  # edgeless: zero embedding, no training
            embeddings[key] = LineEmbedding(
                kind=graph.kind,
                domains=list(graph.domains),
                vectors=np.zeros((graph.node_count, config.dimension)),
                config=config,
            )
            continue
        vectors = np.empty((graph.node_count, config.dimension))
        view_seconds = 0.0
        view_samples = 0
        for task in view_tasks:
            part, elapsed = by_id[task.task_id]
            vectors[:, task.column : task.column + task.dimension] = part
            view_seconds += elapsed
            view_samples += task.total_samples
        _record_training_metrics(view_samples, view_seconds, config.kernel)
        record_stage_observation(f"embedding.{key}", view_seconds)
        _log.debug(
            "view_embedded",
            view=key,
            nodes=graph.node_count,
            edges=graph.edge_count,
            seconds=view_seconds,
            backend=backend,
        )
        embeddings[key] = LineEmbedding(
            kind=graph.kind,
            domains=list(graph.domains),
            vectors=_finalize_vectors(vectors, config),
            config=config,
        )
    _log.info(
        "views_trained",
        views=len(views),
        tasks=len(tasks),
        backend=backend,
        workers=parallel.resolved_workers(),
        seconds=wall,
    )
    return embeddings
