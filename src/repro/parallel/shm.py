"""Zero-copy handoff of read-only arrays to process workers.

Training tasks need the edge arrays and prebuilt alias tables — tens to
hundreds of megabytes at paper scale — but only ever *read* them.
Pickling them into every worker duplicates the memory per worker and
burns time in serialization; an :class:`ArrayPack` instead copies each
array once into a single ``multiprocessing.shared_memory`` segment and
ships only a tiny :class:`ArrayPackSpec` (segment name + dtype/shape
offsets). Workers map the segment and reconstruct numpy views in place.

When shared memory is unavailable (or the backend is threads/serial,
where the caller's arrays are already addressable) the spec simply
carries the arrays inline — same API, pickle semantics.

Lifecycle: the creating side owns the segment and must call
:meth:`ArrayPack.close` (which unlinks) after the run; workers call
:func:`open_pack` per task and close their mapping when done.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from types import TracebackType
from typing import Iterator

import numpy as np

__all__ = ["ArrayPack", "ArrayPackSpec", "open_pack"]


@dataclass(slots=True)
class ArrayPackSpec:
    """Picklable description of a pack: shm layout or inline arrays."""

    shm_name: str | None
    # name -> (dtype string, shape, byte offset into the segment)
    layout: dict[str, tuple[str, tuple[int, ...], int]]
    inline: dict[str, np.ndarray] | None = None


class ArrayPack:
    """Owner side of a shared-memory array bundle."""

    def __init__(
        self, arrays: dict[str, np.ndarray], *, use_shm: bool
    ) -> None:
        self._shm: shared_memory.SharedMemory | None = None
        if not use_shm:
            self.spec = ArrayPackSpec(
                shm_name=None, layout={}, inline=dict(arrays)
            )
            return
        layout: dict[str, tuple[str, tuple[int, ...], int]] = {}
        offset = 0
        prepared: dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            prepared[name] = array
            layout[name] = (array.dtype.str, array.shape, offset)
            offset += array.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for name, array in prepared.items():
            __, shape, start = layout[name]
            view = np.ndarray(
                shape, dtype=array.dtype, buffer=self._shm.buf[start:]
            )
            view[...] = array
        self.spec = ArrayPackSpec(shm_name=self._shm.name, layout=layout)

    def close(self) -> None:
        """Release and unlink the segment (no-op for inline packs)."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None

    def __enter__(self) -> "ArrayPack":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class _OpenedPack:
    """Worker-side view of a pack; keeps the mapping alive while used."""

    def __init__(self, spec: ArrayPackSpec) -> None:
        self._shm: shared_memory.SharedMemory | None = None
        if spec.shm_name is None:
            self.arrays = dict(spec.inline or {})
            return
        # NOTE: attaching registers the segment with the resource
        # tracker a second time (CPython bpo-39959), which would be a
        # problem for spawn-started workers (their own tracker would
        # unlink the parent's segment at exit). The executor only ever
        # starts process pools with the fork context, where parent and
        # workers share one tracker process and the duplicate
        # registration dedupes — so no counter-fix is needed here.
        self._shm = shared_memory.SharedMemory(name=spec.shm_name)
        self.arrays = {
            name: np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf[offset:]
            )
            for name, (dtype, shape, offset) in spec.layout.items()
        }

    def __enter__(self) -> dict[str, np.ndarray]:
        return self.arrays

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        # Drop our numpy views before closing the mapping; if the caller
        # still holds views (samplers built over the tables), the close
        # raises BufferError — leave the mapping to die with the worker
        # process instead (the owner side has unlinked the name, so the
        # memory is freed as soon as the last mapping goes away).
        self.arrays = {}
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - caller kept views
                pass
            self._shm = None


def open_pack(spec: ArrayPackSpec) -> _OpenedPack:
    """Context manager yielding ``{name: array}`` views of a pack."""
    return _OpenedPack(spec)


def iter_total_bytes(spec: ArrayPackSpec) -> Iterator[int]:
    """Sizes of the packed arrays (for logging/metrics)."""
    if spec.inline is not None:
        for array in spec.inline.values():
            yield array.nbytes
    else:
        for dtype, shape, __ in spec.layout.values():
            yield int(np.dtype(dtype).itemsize * int(np.prod(shape or (1,))))
