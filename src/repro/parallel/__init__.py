"""Parallel execution layer for embedding training.

The three behavioral views (and the two proximity orders of
``order="both"``) are independent by construction, so LINE training —
the pipeline's hottest stage — fans out across workers:

* :mod:`~repro.parallel.executor` — :class:`ParallelConfig` policy,
  deterministic seed spawning, and the generic :func:`run_tasks` loop;
* :mod:`~repro.parallel.partition` — cost-model task splitting
  (views x orders, weighted by resolved sample counts);
* :mod:`~repro.parallel.shm` — zero-copy shared-memory handoff of the
  read-only edge arrays and alias tables to process workers;
* :mod:`~repro.parallel.progress` — queue multiplexing of worker
  ``on_epoch`` reports into the caller's ``repro.obs`` sinks;
* :mod:`~repro.parallel.train` — the :func:`train_views` orchestrator
  the pipeline and ``train_line`` drive.

See ``docs/parallelism.md`` for backend guidance and the determinism
contract (serial, thread, and process backends produce byte-identical
embeddings for the same seed).
"""

from repro.parallel.executor import (
    BACKENDS,
    ParallelConfig,
    fork_available,
    run_tasks,
    spawn_seeds,
)
from repro.parallel.partition import (
    EmbeddingTask,
    plan_line_tasks,
    plan_view_tasks,
    schedule_order,
)
from repro.parallel.shm import ArrayPack, ArrayPackSpec, open_pack
from repro.parallel.train import train_views

__all__ = [
    "BACKENDS",
    "ArrayPack",
    "ArrayPackSpec",
    "EmbeddingTask",
    "ParallelConfig",
    "fork_available",
    "open_pack",
    "plan_line_tasks",
    "plan_view_tasks",
    "run_tasks",
    "schedule_order",
    "spawn_seeds",
    "train_views",
]
