"""Progress multiplexing: worker ``on_epoch`` reports back to the caller.

Worker processes can't call the caller's
:class:`~repro.obs.progress.ProgressCallback` directly, so each task
gets a :class:`QueueProgress` shim that pushes ``(view, epoch, total,
loss)`` tuples onto a multiprocessing queue; a :class:`ProgressDrain`
thread on the caller side pops them and forwards to the real callback.
The thread backend shares an address space, so there the same shim pair
degenerates to a lock around the callback (reports from concurrent
tasks must not interleave inside a non-reentrant sink).

Stage accounting: a worker can't contribute to the caller's span stack
either, so tasks *measure* their wall time and the caller records it
via :func:`record_stage_observation` under the same
``stage.embedding.<view>.*`` metric names ``trace()`` would have used —
the timing table and snapshots keep one schema across serial and
parallel runs, and the per-view entries still sit under the enclosing
``embedding`` span the pipeline opens.
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import TYPE_CHECKING, Callable

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    default_registry,
)
from repro.obs.tracing import STAGE_METRIC_PREFIX

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.queues import Queue

    from repro.obs.progress import ProgressCallback

    ReportQueue = Queue[tuple[str, int, int, float]]

__all__ = [
    "QueueProgress",
    "LockedProgress",
    "ProgressDrain",
    "record_stage_observation",
]

_SENTINEL = ("__drain_stop__", 0, 0, 0.0)


class QueueProgress:
    """Worker-side shim: forwards reports into a queue as plain tuples."""

    __slots__ = ("_queue", "_view")

    def __init__(self, report_queue: "ReportQueue", view: str) -> None:
        self._queue = report_queue
        self._view = view

    def on_epoch(self, epoch: int, total: int, loss: float) -> None:
        """Enqueue one report (never raises into the training loop)."""
        try:
            self._queue.put((self._view, epoch, total, loss))
        except Exception:  # pragma: no cover - queue torn down mid-run
            pass


class LockedProgress:
    """Thread-backend shim: serializes calls into a shared callback."""

    __slots__ = ("_callback", "_lock")

    def __init__(self, callback: "ProgressCallback") -> None:
        self._callback = callback
        self._lock = threading.Lock()

    def on_epoch(self, epoch: int, total: int, loss: float) -> None:
        """Forward one report under the lock."""
        with self._lock:
            self._callback.on_epoch(epoch, total, loss)


class ProgressDrain:
    """Caller-side thread that pumps queued reports into a callback.

    Use as a context manager around the parallel run::

        with ProgressDrain(mp_queue, progress):
            ... submit tasks, wait for results ...

    Exit stops the pump after the queue empties, so reports sent before
    the last task finished are never dropped.
    """

    def __init__(
        self,
        report_queue: "ReportQueue",
        callback: "ProgressCallback | None",
        *,
        on_report: Callable[[str, int, int, float], None] | None = None,
    ) -> None:
        self._queue = report_queue
        self._callback = callback
        self._on_report = on_report
        self._thread = threading.Thread(
            target=self._pump, name="repro-progress-drain", daemon=True
        )

    def _pump(self) -> None:
        while True:
            try:
                view, epoch, total, loss = self._queue.get()
            except (EOFError, OSError):  # pragma: no cover - queue closed
                return
            if (view, epoch, total, loss) == _SENTINEL:
                return
            if self._on_report is not None:
                self._on_report(view, epoch, total, loss)
            if self._callback is not None:
                try:
                    self._callback.on_epoch(epoch, total, loss)
                except Exception:  # pragma: no cover - sink must not kill run
                    pass

    def __enter__(self) -> "ProgressDrain":
        self._thread.start()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        try:
            self._queue.put(_SENTINEL)
        except Exception:  # pragma: no cover - queue torn down
            return
        self._thread.join(timeout=10.0)


def record_stage_observation(
    name: str,
    seconds: float,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record a stage timing measured elsewhere (a worker process).

    Writes the same ``stage.<name>.seconds`` histogram and
    ``stage.<name>.calls`` counter a ``trace(name)`` block would have,
    so downstream consumers (timing table, snapshots, the bench
    harness) see one schema regardless of where the stage ran.
    """
    registry = registry if registry is not None else default_registry()
    registry.histogram(
        f"{STAGE_METRIC_PREFIX}{name}.seconds", DEFAULT_TIME_BUCKETS
    ).observe(seconds)
    registry.counter(f"{STAGE_METRIC_PREFIX}{name}.calls").inc()
