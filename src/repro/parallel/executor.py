"""Task execution over ``concurrent.futures`` with deterministic seeding.

The parallel layer treats embedding work as a list of independent,
picklable *tasks*. :class:`ParallelConfig` decides how they run — in
process workers (the default for numpy-heavy training, which is mostly
GIL-bound Python bytecode between vectorized kernels), in threads, or
serially in the caller — and :func:`run_tasks` executes them with:

* **ordered collection** — results come back in submission order no
  matter which worker finished first;
* **failure surfacing** — a worker exception, pool crash, or timeout is
  re-raised in the caller as :class:`~repro.errors.EmbeddingError` with
  the original error chained;
* **automatic serial fallback** — ``workers=0``, a single resolved
  worker, a task set below ``min_parallel_weight``, or a platform
  without ``fork`` all degrade to the plain in-process loop.

Determinism is anchored here too: :func:`spawn_seeds` derives one
:class:`numpy.random.SeedSequence` child per task from the root seed, so
every backend hands workers *identical* generator streams and the
serial/parallel outputs are byte-identical.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import EmbeddingError

__all__ = [
    "BACKENDS",
    "ParallelConfig",
    "run_tasks",
    "spawn_seeds",
    "fork_available",
]

BACKENDS = ("process", "thread", "serial")

# Below this total task weight (weights are LINE sample counts) the pool
# setup + pickling overhead exceeds the training time it hides.
_DEFAULT_MIN_PARALLEL_WEIGHT = 1_000_000


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(slots=True)
class ParallelConfig:
    """How (and whether) to parallelize embedding training.

    Attributes:
        workers: ``0`` — serial execution (the default and the always-
            safe choice); ``"auto"`` — one worker per CPU; any positive
            int — that many workers.
        backend: ``"process"`` (default), ``"thread"``, or ``"serial"``.
            Process workers sidestep the GIL and are right for the
            numpy-heavy LINE loop; threads avoid pickling/shared-memory
            setup and suit debugging; ``"serial"`` forces the in-caller
            loop regardless of ``workers``.
        timeout_seconds: Per-run ceiling for the whole task batch;
            ``None`` waits forever. Exceeding it raises
            :class:`EmbeddingError`.
        min_parallel_weight: Task batches whose total weight (LINE edge
            samples) falls below this run serially — the work is too
            small to amortize worker startup. Set ``0`` to force
            parallel execution for any size.
    """

    workers: int | str = 0
    backend: str = "process"
    timeout_seconds: float | None = None
    min_parallel_weight: int = _DEFAULT_MIN_PARALLEL_WEIGHT

    def validate(self) -> None:
        if isinstance(self.workers, str):
            if self.workers != "auto":
                raise EmbeddingError(
                    f"workers must be 'auto' or an integer, got {self.workers!r}"
                )
        elif isinstance(self.workers, bool) or not isinstance(self.workers, int):
            raise EmbeddingError(
                f"workers must be 'auto' or an integer, got {self.workers!r}"
            )
        elif self.workers < 0:
            raise EmbeddingError("workers must be non-negative")
        if self.backend not in BACKENDS:
            raise EmbeddingError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise EmbeddingError("timeout_seconds must be positive")
        if self.min_parallel_weight < 0:
            raise EmbeddingError("min_parallel_weight must be non-negative")

    def resolved_workers(self) -> int:
        """The concrete worker count (``"auto"`` -> CPU count)."""
        if self.workers == "auto":
            return max(1, os.cpu_count() or 1)
        return int(self.workers)

    def resolved_backend(self, total_weight: float | None = None) -> str:
        """The backend a run with this config actually uses.

        Falls back to ``"serial"`` when parallelism cannot help (0 or 1
        workers, tiny task batches) or cannot run safely (``"process"``
        without ``fork`` — spawn re-imports the world per worker, which
        costs more than it saves for our task sizes).
        """
        self.validate()
        if self.backend == "serial" or self.resolved_workers() <= 1:
            return "serial"
        if (
            total_weight is not None
            and total_weight < self.min_parallel_weight
        ):
            return "serial"
        if self.backend == "process" and not fork_available():
            return "serial"
        return self.backend


def spawn_seeds(seed: int, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent SeedSequence children derived from ``seed``.

    Children are statistically independent streams (the SeedSequence
    spawn tree), and the derivation is a pure function of ``seed`` and
    position — the anchor of the serial/parallel determinism contract.
    """
    return list(np.random.SeedSequence(seed).spawn(count))


def _make_pool(
    backend: str,
    workers: int,
    initializer: Callable[..., None] | None,
    initargs: tuple,
) -> Executor:
    if backend == "thread":
        return ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="repro-parallel",
            initializer=initializer,
            initargs=initargs,
        )
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=multiprocessing.get_context("fork"),
        initializer=initializer,
        initargs=initargs,
    )


def run_tasks(
    fn: Callable[..., Any],
    payloads: Sequence[tuple],
    config: ParallelConfig,
    *,
    backend: str | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    label: str = "tasks",
) -> list[Any]:
    """Run ``fn(*payload)`` for every payload; results in payload order.

    Args:
        fn: Top-level (picklable) task function.
        payloads: One argument tuple per task.
        config: Worker/backend/timeout policy.
        backend: Override the backend resolution (callers that already
            called :meth:`ParallelConfig.resolved_backend` pass it here
            so the decision is made exactly once).
        initializer / initargs: Forwarded to the pool — used to hand
            worker processes their progress queue.
        label: Human-readable batch name for error messages.

    Raises:
        EmbeddingError: A task raised, a worker died, or the batch
            timed out. The original failure is chained as ``__cause__``.
    """
    resolved = backend if backend is not None else config.resolved_backend()
    if resolved == "serial":
        if initializer is not None:
            initializer(*initargs)
        return [fn(*payload) for payload in payloads]

    workers = min(config.resolved_workers(), max(1, len(payloads)))
    pool = _make_pool(resolved, workers, initializer, initargs)
    try:
        futures: list[Future] = [
            pool.submit(fn, *payload) for payload in payloads
        ]
        results: list[Any] = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result(timeout=config.timeout_seconds))
            except EmbeddingError:
                raise
            except (TimeoutError, FuturesTimeoutError) as exc:
                raise EmbeddingError(
                    f"{label}: task {index} timed out after "
                    f"{config.timeout_seconds}s"
                ) from exc
            except BaseException as exc:
                raise EmbeddingError(
                    f"{label}: task {index} failed in {resolved} worker: "
                    f"{exc}"
                ) from exc
        return results
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
