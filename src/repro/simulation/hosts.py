"""Host population and DHCP lease churn.

Each simulated device has a stable MAC address (its true identity) and a
sequence of DHCP leases binding it to campus IPs over time. Phones roam
and re-lease more often than desktops; servers/IoT keep near-static
bindings. The generated :class:`~repro.dns.dhcp.DhcpLog` lets the pipeline
recover device identity from (ip, timestamp) exactly as the paper does.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.dns.dhcp import DhcpLog
from repro.dns.types import DhcpLease
from repro.simulation.config import HostPopulationConfig

_DEVICE_CLASSES = ("desktop", "laptop", "phone", "iot")
# Relative lease churn per class (multiplier on the configured mean).
_CHURN = {"desktop": 4.0, "laptop": 1.5, "phone": 0.6, "iot": 8.0}


@dataclass(slots=True)
class Host:
    """One campus device."""

    index: int
    mac: str
    device_class: str
    # Leases as (ip, start, end), in time order.
    leases: list[tuple[str, float, float]] = field(default_factory=list)

    def ip_at(self, timestamp: float) -> str | None:
        """The host's campus IP at ``timestamp`` (None if between leases)."""
        for ip, start, end in self.leases:
            if start <= timestamp < end:
                return ip
        return None

    @property
    def is_interactive(self) -> bool:
        """Whether the device browses the web (IoT devices do not)."""
        return self.device_class != "iot"


def _mac_for(index: int) -> str:
    return "02:00:%02x:%02x:%02x:%02x" % (
        (index >> 24) & 0xFF,
        (index >> 16) & 0xFF,
        (index >> 8) & 0xFF,
        index & 0xFF,
    )


class HostPopulation:
    """Builds hosts, assigns device classes, and simulates DHCP churn.

    The campus address pool is larger than the host count so re-leases
    usually land on a fresh IP, forcing the pipeline to use DHCP for
    identity (as in the paper).
    """

    def __init__(
        self,
        config: HostPopulationConfig,
        duration: float,
        rng: np.random.Generator,
    ) -> None:
        self._config = config
        self._duration = duration
        self._rng = rng
        self.hosts: list[Host] = []
        self._build_hosts()
        self._simulate_leases()

    def _build_hosts(self) -> None:
        fractions = np.array(
            [
                self._config.desktop_fraction,
                self._config.laptop_fraction,
                self._config.phone_fraction,
                self._config.iot_fraction,
            ]
        )
        counts = np.floor(fractions * self._config.host_count).astype(int)
        # Distribute rounding remainder to the largest classes.
        while counts.sum() < self._config.host_count:
            counts[int(np.argmax(fractions))] += 1
            fractions[int(np.argmax(fractions))] *= 0.999
        index = 0
        for class_index, device_class in enumerate(_DEVICE_CLASSES):
            for _ in range(int(counts[class_index])):
                self.hosts.append(
                    Host(index=index, mac=_mac_for(index), device_class=device_class)
                )
                index += 1

    def _simulate_leases(self) -> None:
        # Time-aware free list: an IP may be re-leased to another device,
        # but never while a previous lease on it is still active (otherwise
        # DHCP-based identity resolution would be ambiguous).
        available: list[tuple[float, int, str]] = []  # (free_at, tiebreak, ip)
        allocated = 0
        tiebreak = 0

        def fresh_ip() -> str:
            nonlocal allocated
            ip = f"10.20.{allocated // 254}.{allocated % 254 + 1}"
            allocated += 1
            return ip

        def take_ip(start: float, end: float) -> str:
            nonlocal tiebreak
            if available and available[0][0] <= start:
                __, __, ip = heapq.heappop(available)
            else:
                ip = fresh_ip()
            tiebreak += 1
            heapq.heappush(available, (end, tiebreak, ip))
            return ip

        mean_lease = self._config.lease_hours * 3600.0
        for host in self.hosts:
            churn = _CHURN[host.device_class]
            clock = 0.0
            while clock < self._duration:
                length = float(
                    self._rng.exponential(mean_lease * churn)
                )
                length = max(900.0, length)  # DHCP minimum lease
                end = min(clock + length, self._duration)
                host.leases.append((take_ip(clock, end), clock, end))
                clock = end

    def dhcp_log(self) -> DhcpLog:
        """All leases as a :class:`DhcpLog`."""
        log = DhcpLog()
        for host in self.hosts:
            for ip, start, end in host.leases:
                log.add(DhcpLease(mac=host.mac, ip=ip, start=start, end=end))
        return log

    @property
    def interactive_hosts(self) -> list[Host]:
        return [h for h in self.hosts if h.is_interactive]

    @property
    def iot_hosts(self) -> list[Host]:
        return [h for h in self.hosts if not h.is_interactive]

    def sample_hosts(
        self, count: int, rng: np.random.Generator, interactive_only: bool = True
    ) -> list[Host]:
        """Sample ``count`` distinct hosts (for malware infections)."""
        pool = self.interactive_hosts if interactive_only else self.hosts
        count = min(count, len(pool))
        picks = rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in picks]
