"""Simulation configuration.

All knobs controlling the synthetic campus trace live here, grouped into
sub-configs per subsystem. Construction validates ranges eagerly so a bad
experiment fails before minutes of generation work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationConfigError

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_MINUTE = 60.0


@dataclass(slots=True)
class HostPopulationConfig:
    """Size and composition of the campus host population.

    The device-class mix loosely follows a campus network: interactive
    devices (desktops/laptops/phones) browse the web; servers and IoT
    devices query a small fixed set of service domains.
    """

    host_count: int = 250
    desktop_fraction: float = 0.35
    laptop_fraction: float = 0.30
    phone_fraction: float = 0.25
    iot_fraction: float = 0.10
    # Mean number of web sessions per interactive host per active day.
    sessions_per_day: float = 30.0
    # Mean DHCP lease duration in hours; mobility re-assigns phone IPs.
    lease_hours: float = 12.0

    def validate(self) -> None:
        if self.host_count < 4:
            raise SimulationConfigError("host_count must be at least 4")
        mix = (
            self.desktop_fraction
            + self.laptop_fraction
            + self.phone_fraction
            + self.iot_fraction
        )
        if abs(mix - 1.0) > 1e-6:
            raise SimulationConfigError(
                f"device-class fractions must sum to 1 (got {mix:.4f})"
            )
        if self.sessions_per_day <= 0:
            raise SimulationConfigError("sessions_per_day must be positive")
        if self.lease_hours <= 0:
            raise SimulationConfigError("lease_hours must be positive")


@dataclass(slots=True)
class BenignCatalogConfig:
    """Composition of the benign domain catalog.

    ``popular_site_count`` sites form the head of a Zipf popularity
    distribution and embed third-party domains (ads, CDNs, analytics) the
    way real pages do; ``longtail_site_count`` sites form the tail. Shared
    hosting packs many small sites onto few IPs, which is the main benign
    confounder for the IP-resolving similarity view.
    """

    popular_site_count: int = 120
    longtail_site_count: int = 1_600
    third_party_count: int = 160
    cdn_provider_count: int = 8
    shared_hosting_provider_count: int = 36
    # Fraction of long-tail sites placed on shared hosting.
    shared_hosting_fraction: float = 0.55
    # Mean embedded third-party domains per popular page.
    embedded_per_page: float = 6.0
    zipf_exponent: float = 1.1
    # Benign background services (update checks, mail sync, telemetry):
    # domains polled periodically by subscribed hosts — behaviorally the
    # benign twin of C&C beaconing, and the reason time-based statistics
    # alone cannot separate the classes.
    background_service_count: int = 90
    services_per_host: int = 6

    def validate(self) -> None:
        if self.popular_site_count < 10:
            raise SimulationConfigError("popular_site_count must be >= 10")
        if self.longtail_site_count < 0:
            raise SimulationConfigError("longtail_site_count must be >= 0")
        if self.third_party_count < 5:
            raise SimulationConfigError("third_party_count must be >= 5")
        if not 0.0 <= self.shared_hosting_fraction <= 1.0:
            raise SimulationConfigError(
                "shared_hosting_fraction must lie in [0, 1]"
            )
        if self.zipf_exponent <= 1.0:
            raise SimulationConfigError("zipf_exponent must exceed 1.0")
        if self.background_service_count < 0:
            raise SimulationConfigError("background_service_count must be >= 0")
        if self.services_per_host < 0:
            raise SimulationConfigError("services_per_host must be >= 0")


@dataclass(slots=True)
class MalwareConfig:
    """Malware landscape: families, infections, and campaign sizes.

    Family counts are chosen so the default trace yields on the order of a
    thousand malicious e2LDs — matching the paper's labeled set, which is
    ~30% malicious out of 10k+ domains (section 6.1) at full scale.
    """

    dga_botnet_count: int = 4
    domains_per_dga_family: int = 130
    hosts_per_dga_family: int = 9
    cnc_family_count: int = 5
    domains_per_cnc_family: int = 28
    hosts_per_cnc_family: int = 7
    spam_campaign_count: int = 4
    domains_per_spam_campaign: int = 55
    hosts_per_spam_campaign: int = 30
    phishing_campaign_count: int = 3
    domains_per_phishing_campaign: int = 35
    hosts_per_phishing_campaign: int = 22
    fastflux_family_count: int = 2
    domains_per_fastflux_family: int = 40
    hosts_per_fastflux_family: int = 8
    # Beaconing interval for C&C check-ins, in minutes (mean of exponential).
    beacon_interval_minutes: float = 45.0
    # Probability that a clean host stumbles onto a malicious domain
    # (e.g. a phishing link in email) during any one of its sessions.
    accidental_contact_rate: float = 0.006
    # Fraction of malicious infrastructure that parks on shared hosting
    # alongside benign sites (weakens the IP view, a realistic confounder).
    shared_hosting_overlap: float = 0.08

    def validate(self) -> None:
        for name in (
            "dga_botnet_count",
            "cnc_family_count",
            "spam_campaign_count",
            "phishing_campaign_count",
            "fastflux_family_count",
        ):
            if getattr(self, name) < 0:
                raise SimulationConfigError(f"{name} must be >= 0")
        if self.beacon_interval_minutes <= 0:
            raise SimulationConfigError("beacon_interval_minutes must be positive")
        if not 0.0 <= self.accidental_contact_rate <= 1.0:
            raise SimulationConfigError(
                "accidental_contact_rate must lie in [0, 1]"
            )
        if not 0.0 <= self.shared_hosting_overlap <= 1.0:
            raise SimulationConfigError(
                "shared_hosting_overlap must lie in [0, 1]"
            )

    @property
    def total_malicious_domains(self) -> int:
        """Total malicious e2LDs the configured landscape will create."""
        return (
            self.dga_botnet_count * self.domains_per_dga_family
            + self.cnc_family_count * self.domains_per_cnc_family
            + self.spam_campaign_count * self.domains_per_spam_campaign
            + self.phishing_campaign_count * self.domains_per_phishing_campaign
            + self.fastflux_family_count * self.domains_per_fastflux_family
        )


@dataclass(slots=True)
class SimulationConfig:
    """Top-level simulation parameters.

    Attributes:
        duration_days: Length of the simulated capture (the paper uses one
            month; benches default to a shorter window for tractability —
            the relational structure is scale-stable).
        seed: Master RNG seed; every run with the same config and seed is
            bit-for-bit reproducible.
    """

    duration_days: float = 14.0
    seed: int = 7
    # When set, the malware landscape draws from its own RNG stream, so
    # two captures with different ``seed`` but equal ``malware_seed``
    # share the same global threat infrastructure (campaign domains and
    # addresses) while local benign traffic differs — the multi-campus
    # scenario of the paper's future work (section 10).
    malware_seed: int | None = None
    hosts: HostPopulationConfig = field(default_factory=HostPopulationConfig)
    benign: BenignCatalogConfig = field(default_factory=BenignCatalogConfig)
    malware: MalwareConfig = field(default_factory=MalwareConfig)

    def validate(self) -> None:
        """Validate all sub-configs; raises SimulationConfigError."""
        if self.duration_days <= 0:
            raise SimulationConfigError("duration_days must be positive")
        self.hosts.validate()
        self.benign.validate()
        self.malware.validate()

    @property
    def duration_seconds(self) -> float:
        return self.duration_days * SECONDS_PER_DAY

    @classmethod
    def tiny(cls, seed: int = 7) -> "SimulationConfig":
        """A minutes-long configuration for unit tests."""
        return cls(
            duration_days=1.0,
            seed=seed,
            hosts=HostPopulationConfig(host_count=40, sessions_per_day=12.0),
            benign=BenignCatalogConfig(
                popular_site_count=20,
                longtail_site_count=120,
                third_party_count=25,
                cdn_provider_count=3,
                shared_hosting_provider_count=4,
            ),
            malware=MalwareConfig(
                dga_botnet_count=1,
                domains_per_dga_family=30,
                hosts_per_dga_family=4,
                cnc_family_count=1,
                domains_per_cnc_family=10,
                hosts_per_cnc_family=3,
                spam_campaign_count=1,
                domains_per_spam_campaign=12,
                hosts_per_spam_campaign=8,
                phishing_campaign_count=1,
                domains_per_phishing_campaign=8,
                hosts_per_phishing_campaign=6,
                fastflux_family_count=1,
                domains_per_fastflux_family=8,
                hosts_per_fastflux_family=3,
            ),
        )

    @classmethod
    def paper_scale(cls, seed: int = 7) -> "SimulationConfig":
        """A configuration sized like the paper's labeled set (10k+ e2LDs).

        Generation takes minutes; benches use the default (medium) scale
        unless full scale is explicitly requested.
        """
        return cls(
            duration_days=28.0,
            seed=seed,
            hosts=HostPopulationConfig(host_count=600),
            benign=BenignCatalogConfig(
                popular_site_count=300,
                longtail_site_count=7_000,
                third_party_count=400,
                cdn_provider_count=12,
                shared_hosting_provider_count=25,
            ),
            malware=MalwareConfig(
                dga_botnet_count=8,
                cnc_family_count=12,
                spam_campaign_count=10,
                phishing_campaign_count=8,
                fastflux_family_count=5,
            ),
        )
