"""Diurnal activity model.

Campus traffic has a strong day/night cycle (visible in the paper's
Figure 1). Hosts draw their session times from an inhomogeneous Poisson
process whose rate follows a per-device-class daily profile; sampling uses
the standard thinning algorithm.
"""

from __future__ import annotations

import math

import numpy as np

from repro.simulation.config import SECONDS_PER_DAY

# Hourly relative activity per device class (24 values each, peak ~ 1.0).
_PROFILES: dict[str, tuple[float, ...]] = {
    "desktop": (
        0.02, 0.01, 0.01, 0.01, 0.02, 0.05, 0.15, 0.40, 0.75, 0.95,
        1.00, 0.90, 0.70, 0.85, 0.95, 1.00, 0.95, 0.80, 0.55, 0.40,
        0.35, 0.25, 0.12, 0.05,
    ),
    "laptop": (
        0.05, 0.03, 0.02, 0.02, 0.02, 0.05, 0.12, 0.30, 0.60, 0.85,
        0.95, 0.90, 0.75, 0.85, 0.95, 1.00, 0.95, 0.90, 0.85, 0.90,
        0.95, 0.80, 0.45, 0.15,
    ),
    "phone": (
        0.10, 0.05, 0.03, 0.02, 0.03, 0.08, 0.25, 0.55, 0.75, 0.80,
        0.85, 0.90, 0.95, 0.90, 0.85, 0.85, 0.90, 0.95, 1.00, 1.00,
        0.95, 0.85, 0.55, 0.25,
    ),
    # IoT devices poll around the clock.
    "iot": (1.0,) * 24,
}


class DiurnalModel:
    """Inhomogeneous Poisson event times with a daily rate profile."""

    def __init__(self, device_class: str) -> None:
        if device_class not in _PROFILES:
            raise ValueError(f"unknown device class {device_class!r}")
        self.device_class = device_class
        profile = np.asarray(_PROFILES[device_class], dtype=float)
        self._profile = profile
        self._mean_level = float(profile.mean())
        self._peak_level = float(profile.max())

    def relative_levels(self, timestamps: np.ndarray) -> np.ndarray:
        """Activity level in [0, 1] (relative to the daily peak) at each time."""
        hours = ((np.asarray(timestamps) % SECONDS_PER_DAY) / 3600.0).astype(int) % 24
        return self._profile[hours] / self._peak_level

    def rate_at(self, timestamp: float, events_per_day: float) -> float:
        """Instantaneous event rate (events/second) at ``timestamp``.

        ``events_per_day`` is the *average* daily event count; the hourly
        profile redistributes it across the day.
        """
        hour = (timestamp % SECONDS_PER_DAY) / 3600.0
        level = self._profile[int(hour) % 24]
        base_rate = events_per_day / SECONDS_PER_DAY
        return base_rate * level / self._mean_level

    def sample_times(
        self,
        duration: float,
        events_per_day: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Event timestamps over [0, duration) via Poisson thinning."""
        peak_rate = (
            events_per_day / SECONDS_PER_DAY * self._peak_level / self._mean_level
        )
        if peak_rate <= 0 or duration <= 0:
            return np.empty(0)
        expected = peak_rate * duration
        # Draw candidate count, then thin by the rate ratio at each time.
        candidate_count = rng.poisson(expected)
        if candidate_count == 0:
            return np.empty(0)
        candidates = np.sort(rng.uniform(0.0, duration, size=candidate_count))
        hours = ((candidates % SECONDS_PER_DAY) / 3600.0).astype(int) % 24
        levels = self._profile[hours]
        keep = rng.uniform(size=candidate_count) < levels / self._peak_level
        return candidates[keep]


def weekend_factor(timestamp: float, weekend_dampening: float = 0.6) -> float:
    """Scale factor for weekend days (days 5 and 6 of each week).

    The simulated trace starts on a Monday; campus weekday activity drops
    on weekends by ``weekend_dampening``.
    """
    day_index = int(timestamp // SECONDS_PER_DAY) % 7
    return weekend_dampening if day_index >= 5 else 1.0


def is_weekend(timestamp: float) -> bool:
    return int(timestamp // SECONDS_PER_DAY) % 7 >= 5


def sample_diurnal_times(
    device_class: str,
    duration: float,
    events_per_day: float,
    rng: np.random.Generator,
    weekend_dampening: float = 0.6,
) -> np.ndarray:
    """Convenience wrapper: diurnal sampling plus weekend thinning."""
    model = DiurnalModel(device_class)
    times = model.sample_times(duration, events_per_day, rng)
    if times.size == 0 or math.isclose(weekend_dampening, 1.0):
        return times
    keep = np.ones(times.size, dtype=bool)
    weekend_mask = np.array([is_weekend(t) for t in times])
    keep[weekend_mask] = rng.uniform(size=int(weekend_mask.sum())) < weekend_dampening
    return times[keep]
