"""IP address space allocation for the simulated Internet.

Three allocation regimes drive the domain-IP bipartite graph's structure:

* **dedicated** — one or a few addresses per domain, drawn from a
  provider block (typical for popular sites' origin servers);
* **shared hosting** — many domains packed onto a handful of addresses
  inside one provider block (the benign confounder for the IP view);
* **pool rotation** — a domain resolves to addresses drawn from a pool
  over time (CDNs for benign traffic; fast-flux for malicious traffic —
  structurally similar, which is exactly why the paper needs more than the
  IP view alone).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

import numpy as np


def _format_ipv4(value: int) -> str:
    return str(ipaddress.IPv4Address(value))


@dataclass(slots=True)
class ProviderBlock:
    """A contiguous IPv4 block owned by one (simulated) provider."""

    name: str
    base: int
    size: int
    _next_offset: int = field(default=0, repr=False)

    def allocate(self) -> str:
        """Hand out the next unused address in the block."""
        if self._next_offset >= self.size:
            raise RuntimeError(f"provider block {self.name} exhausted")
        address = _format_ipv4(self.base + self._next_offset)
        self._next_offset += 1
        return address

    def allocate_many(self, count: int) -> list[str]:
        return [self.allocate() for _ in range(count)]


class IpSpace:
    """Carves the simulated external IPv4 space into provider blocks.

    Blocks are carved from 93.0.0.0 upward in /16 strides so addresses
    from different providers never collide. The campus-internal subnet
    (10.20.0.0/16) is managed separately by the DHCP simulator.
    """

    CAMPUS_PREFIX = "10.20"
    _EXTERNAL_BASE = int(ipaddress.IPv4Address("93.0.0.0"))
    _BLOCK_STRIDE = 1 << 16

    def __init__(self) -> None:
        self._blocks: dict[str, ProviderBlock] = {}
        self._next_block_index = 0

    def new_block(self, name: str, size: int = 4096) -> ProviderBlock:
        """Create a fresh provider block with a unique address range."""
        if name in self._blocks:
            raise ValueError(f"provider block {name!r} already exists")
        base = self._EXTERNAL_BASE + self._next_block_index * self._BLOCK_STRIDE
        self._next_block_index += 1
        block = ProviderBlock(name=name, base=base, size=size)
        self._blocks[name] = block
        return block

    def block(self, name: str) -> ProviderBlock:
        return self._blocks[name]

    @property
    def block_names(self) -> list[str]:
        return list(self._blocks)

    def campus_ip(self, host_index: int) -> str:
        """A stable campus address for host ``host_index`` (pre-DHCP)."""
        low = host_index % 254 + 1
        high = host_index // 254
        return f"{self.CAMPUS_PREFIX}.{high}.{low}"


@dataclass(slots=True)
class RotatingPool:
    """An address pool a domain rotates through over time (CDN/fast-flux).

    ``addresses_at`` returns the subset of the pool active in a given
    rotation period, so repeated resolutions inside one period are stable
    while successive periods drift — matching both CDN map updates and
    fast-flux behavior (the knob that differs is the period length).
    """

    addresses: list[str]
    rotation_period: float
    active_size: int
    seed: int = 0
    _cache: dict[int, list[str]] = field(default_factory=dict, repr=False)

    def addresses_at(self, timestamp: float) -> list[str]:
        """The active addresses during the rotation period of ``timestamp``.

        Results are memoized per rotation period: resolutions are far more
        frequent than rotations, and the active set must be stable within
        a period anyway.
        """
        if not self.addresses:
            return []
        period_index = int(timestamp // self.rotation_period)
        cached = self._cache.get(period_index)
        if cached is not None:
            return cached
        rng = np.random.default_rng((self.seed, period_index))
        size = min(self.active_size, len(self.addresses))
        picks = rng.choice(len(self.addresses), size=size, replace=False)
        active = [self.addresses[int(i)] for i in picks]
        if len(self._cache) > 65536:
            self._cache.clear()
        self._cache[period_index] = active
        return active

    def resolve(self, timestamp: float, rng: np.random.Generator) -> str:
        """One address for a resolution happening at ``timestamp``."""
        active = self.addresses_at(timestamp)
        return active[int(rng.integers(len(active)))]
