"""Ground-truth bookkeeping for simulated traces.

Every e2LD the simulator creates gets a :class:`DomainRecord` describing
what it *really* is. Ground truth is the basis for the simulated label
feeds (:mod:`repro.labels`) and for scoring experiments, but the detection
pipeline itself never sees it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator


class DomainCategory(enum.Enum):
    """Fine-grained category of a simulated domain."""

    POPULAR_SITE = "popular_site"
    LONGTAIL_SITE = "longtail_site"
    THIRD_PARTY = "third_party"
    CDN = "cdn"
    INFRASTRUCTURE = "infrastructure"
    DGA = "dga"
    CNC = "cnc"
    SPAM = "spam"
    PHISHING = "phishing"
    FASTFLUX = "fastflux"

    @property
    def is_malicious(self) -> bool:
        return self in _MALICIOUS_CATEGORIES


_MALICIOUS_CATEGORIES = frozenset(
    {
        DomainCategory.DGA,
        DomainCategory.CNC,
        DomainCategory.SPAM,
        DomainCategory.PHISHING,
        DomainCategory.FASTFLUX,
    }
)


@dataclass(frozen=True, slots=True)
class DomainRecord:
    """Ground truth for one e2LD.

    Attributes:
        name: The e2LD.
        category: What the domain actually is.
        family: Malware family / campaign / provider identifier, used to
            score cluster purity and to annotate ThreatBook-style reports.
        registration_age_days: Simulated age at trace start; young ages are
            typical of DGA and campaign domains (feeds VirusTotal realism).
    """

    name: str
    category: DomainCategory
    family: str = ""
    registration_age_days: float = 365.0

    @property
    def is_malicious(self) -> bool:
        return self.category.is_malicious


class GroundTruth:
    """Mapping from e2LD to its :class:`DomainRecord`."""

    def __init__(self, records: Iterable[DomainRecord] = ()) -> None:
        self._records: dict[str, DomainRecord] = {}
        for record in records:
            self.add(record)

    def add(self, record: DomainRecord) -> None:
        if record.name in self._records:
            raise ValueError(f"duplicate ground-truth record for {record.name}")
        self._records[record.name] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __iter__(self) -> Iterator[DomainRecord]:
        return iter(self._records.values())

    def get(self, name: str) -> DomainRecord | None:
        return self._records.get(name)

    def record(self, name: str) -> DomainRecord:
        """Like :meth:`get` but raises KeyError for unknown domains."""
        return self._records[name]

    def is_malicious(self, name: str) -> bool:
        """Whether ``name`` is malicious; unknown names count as benign."""
        record = self._records.get(name)
        return record.is_malicious if record is not None else False

    @property
    def malicious_domains(self) -> list[str]:
        return [r.name for r in self._records.values() if r.is_malicious]

    @property
    def benign_domains(self) -> list[str]:
        return [r.name for r in self._records.values() if not r.is_malicious]

    def family_members(self, family: str) -> list[str]:
        """All domains belonging to one family/campaign."""
        return [r.name for r in self._records.values() if r.family == family]

    @property
    def families(self) -> set[str]:
        return {r.family for r in self._records.values() if r.family}

    def save(self, path: str | Path) -> None:
        """Persist as a tab-separated file."""
        with open(path, "w", encoding="utf-8") as stream:
            for record in self._records.values():
                stream.write(
                    f"{record.name}\t{record.category.value}\t"
                    f"{record.family}\t{record.registration_age_days:.1f}\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "GroundTruth":
        truth = cls()
        with open(path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.rstrip("\n")
                if not line:
                    continue
                name, category, family, age = line.split("\t")
                truth.add(
                    DomainRecord(
                        name=name,
                        category=DomainCategory(category),
                        family=family,
                        registration_age_days=float(age),
                    )
                )
        return truth
