"""End-to-end trace generation.

:class:`TraceGenerator` assembles the host population, benign catalog,
browsing model, and malware landscape, then renders every query intent
into interleaved :class:`~repro.dns.types.DnsQuery` /
:class:`~repro.dns.types.DnsResponse` records plus a DHCP log and ground
truth — the same artifacts the paper's collection pipeline produces
(section 2).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.dns.dhcp import DhcpLog
from repro.dns.logfmt import DnsTraceWriter
from repro.dns.types import (
    DnsQuery,
    DnsResponse,
    QueryType,
    ResourceRecord,
    TraceMetadata,
)
from repro.simulation.config import (
    SECONDS_PER_DAY,
    SECONDS_PER_MINUTE,
    SimulationConfig,
)
from repro.simulation.diurnal import DiurnalModel, sample_diurnal_times
from repro.simulation.domains import BenignCatalog, HostingAssignment
from repro.simulation.groundtruth import (
    DomainCategory,
    DomainRecord,
    GroundTruth,
)
from repro.simulation.hosts import Host, HostPopulation
from repro.simulation.ipspace import IpSpace
from repro.simulation.malware import MalwareLandscape, QueryEvent
from repro.simulation.web import BrowsingModel
from repro.obs.logging import get_logger
from repro.obs.metrics import default_registry

_log = get_logger(__name__)


@dataclass(slots=True)
class SimulatedTrace:
    """Everything one simulation run produces."""

    queries: list[DnsQuery]
    responses: list[DnsResponse]
    dhcp: DhcpLog
    ground_truth: GroundTruth
    metadata: TraceMetadata
    config: SimulationConfig
    # Malware families, exposed for experiment scoring (never used by the
    # detection pipeline itself).
    families: dict[str, list[str]] = field(default_factory=dict)

    def save(self, directory: str | Path) -> None:
        """Write dns.log / dhcp.log / groundtruth.tsv under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with DnsTraceWriter(directory / "dns.log") as writer:
            merged: list[DnsQuery | DnsResponse] = [*self.queries, *self.responses]
            merged.sort(key=lambda record: record.timestamp)
            writer.write_all(merged)
        self.dhcp.save(directory / "dhcp.log")
        self.ground_truth.save(directory / "groundtruth.tsv")

    @property
    def query_count(self) -> int:
        return len(self.queries)


class _LeaseIndex:
    """Bisect-backed (host, timestamp) -> campus IP lookup."""

    def __init__(self, hosts: list[Host]) -> None:
        self._starts: dict[int, list[float]] = {}
        self._leases: dict[int, list[tuple[str, float, float]]] = {}
        for host in hosts:
            leases = sorted(host.leases, key=lambda lease: lease[1])
            self._leases[host.index] = leases
            self._starts[host.index] = [lease[1] for lease in leases]

    def ip_at(self, host: Host, timestamp: float) -> str:
        starts = self._starts[host.index]
        position = bisect.bisect_right(starts, timestamp) - 1
        if position < 0:
            position = 0
        ip, __, __ = self._leases[host.index][position]
        return ip


# IoT vendor service domains polled around the clock.
_IOT_VENDORS = (
    ("sensorpulse.com", 3),
    ("thingrelay.net", 2),
    ("meterlink.io", 2),
)


class TraceGenerator:
    """Generates a full simulated campus DNS capture.

    Args:
        config: Simulation knobs; validated on construction.

    Usage::

        trace = TraceGenerator(SimulationConfig(seed=7)).generate()
    """

    def __init__(self, config: SimulationConfig) -> None:
        config.validate()
        self.config = config

    def generate(self) -> SimulatedTrace:
        """Run the simulation and return the complete trace."""
        rng = np.random.default_rng(self.config.seed)
        duration = self.config.duration_seconds

        ipspace = IpSpace()
        catalog = BenignCatalog(self.config.benign, ipspace, rng)
        population = HostPopulation(self.config.hosts, duration, rng)
        browsing = BrowsingModel(catalog, rng)
        malware_rng = (
            np.random.default_rng(self.config.malware_seed)
            if self.config.malware_seed is not None
            else rng
        )
        landscape = MalwareLandscape(
            config=self.config.malware,
            ipspace=ipspace,
            population=population,
            duration=duration,
            shared_hosting_ips=catalog.shared_hosting_ips,
            rng=malware_rng,
        )

        events: list[QueryEvent] = []
        session_times = self._browsing_events(
            population, browsing, duration, rng, events
        )
        self._flash_crowd_events(population, browsing, catalog, duration, rng, events)
        self._background_service_events(population, catalog, duration, rng, events)
        iot_records, iot_hosting = self._iot_events(
            population, ipspace, duration, rng, events
        )
        events.extend(landscape.all_events)
        events.extend(
            landscape.accidental_contact_events(session_times, population.hosts)
        )
        events.sort(key=lambda event: event.timestamp)

        hosting_map = self._merge_hosting(catalog, browsing, landscape, iot_hosting)
        ground_truth = self._merge_ground_truth(
            catalog, browsing, landscape, iot_records
        )

        queries, responses = self._render(events, hosting_map, population, rng)
        registry = default_registry()
        registry.counter("sim.queries_generated").inc(len(queries))
        registry.counter("sim.responses_generated").inc(len(responses))
        registry.counter("sim.traces_generated").inc()
        _log.info(
            "trace_generated",
            hosts=len(population.hosts),
            queries=len(queries),
            responses=len(responses),
            domains=len(ground_truth),
            malicious=len(ground_truth.malicious_domains),
        )
        metadata = TraceMetadata(
            start_time=0.0,
            duration=duration,
            host_count=len(population.hosts),
            description=(
                f"simulated campus capture: {len(population.hosts)} hosts, "
                f"{self.config.duration_days:g} days, "
                f"{len(ground_truth)} e2LDs "
                f"({len(ground_truth.malicious_domains)} malicious)"
            ),
        )
        return SimulatedTrace(
            queries=queries,
            responses=responses,
            dhcp=population.dhcp_log(),
            ground_truth=ground_truth,
            metadata=metadata,
            config=self.config,
            families={
                family.name: list(family.domains) for family in landscape.families
            },
        )

    # ------------------------------------------------------------------

    def _browsing_events(
        self,
        population: HostPopulation,
        browsing: BrowsingModel,
        duration: float,
        rng: np.random.Generator,
        events: list[QueryEvent],
    ) -> dict[int, np.ndarray]:
        """Append all benign browsing lookups; returns session times/host."""
        session_times: dict[int, np.ndarray] = {}
        for host in population.interactive_hosts:
            times = sample_diurnal_times(
                host.device_class,
                duration,
                self.config.hosts.sessions_per_day,
                rng,
            )
            session_times[host.index] = times
            sites = browsing.pick_sites(len(times))
            for start, site in zip(times, sites):
                for lookup in browsing.session_lookups(site):
                    events.append(
                        QueryEvent(
                            timestamp=float(start + lookup.delay),
                            host=host,
                            qname=lookup.qname,
                            e2ld=lookup.e2ld,
                        )
                    )
        return session_times

    def _flash_crowd_events(
        self,
        population: HostPopulation,
        browsing: BrowsingModel,
        catalog: BenignCatalog,
        duration: float,
        rng: np.random.Generator,
        events: list[QueryEvent],
    ) -> None:
        """Benign burst days: a long-tail site briefly goes viral.

        A link shared in a campus forum or group chat gives an obscure
        site a one-or-two-day burst of visits from many hosts. These
        bursts are the benign counterpart of campaign traffic: without
        them, "burstiness" and "active days" statistics separate classes
        far more cleanly than they do in real traffic.
        """
        if not catalog.longtail_sites:
            return
        interactive = population.interactive_hosts
        crowd_count = max(1, int(len(catalog.longtail_sites) * 0.08))
        site_picks = rng.choice(
            len(catalog.longtail_sites), size=crowd_count, replace=False
        )
        day_count = max(int(duration // SECONDS_PER_DAY), 1)
        for pick in site_picks:
            site = catalog.longtail_sites[int(pick)]
            burst_day = int(rng.integers(day_count))
            audience_fraction = float(rng.uniform(0.1, 0.4))
            audience_size = max(2, int(len(interactive) * audience_fraction))
            audience = rng.choice(
                len(interactive), size=audience_size, replace=False
            )
            for host_pick in audience:
                host = interactive[int(host_pick)]
                # Visits concentrate in waking hours of the burst day.
                visit = burst_day * SECONDS_PER_DAY + float(
                    rng.uniform(8, 23)
                ) * 3600.0
                if visit >= duration:
                    continue
                for lookup in browsing.session_lookups(site):
                    events.append(
                        QueryEvent(
                            timestamp=visit + lookup.delay,
                            host=host,
                            qname=lookup.qname,
                            e2ld=lookup.e2ld,
                        )
                    )

    def _background_service_events(
        self,
        population: HostPopulation,
        catalog: BenignCatalog,
        duration: float,
        rng: np.random.Generator,
        events: list[QueryEvent],
    ) -> None:
        """Periodic polls to subscribed benign services (while awake)."""
        services = catalog.background_services
        if not services or self.config.benign.services_per_host == 0:
            return
        models = {
            cls: DiurnalModel(cls) for cls in ("desktop", "laptop", "phone")
        }
        for host in population.interactive_hosts:
            count = min(
                len(services),
                max(1, int(rng.poisson(self.config.benign.services_per_host))),
            )
            picks = rng.choice(len(services), size=count, replace=False)
            for pick in picks:
                service = services[int(pick)]
                interval = float(rng.uniform(30, 240)) * SECONDS_PER_MINUTE
                times = np.arange(
                    float(rng.uniform(0, interval)), duration, interval
                )
                times = times + rng.uniform(-0.1, 0.1, size=times.size) * interval
                times = times[(times >= 0) & (times < duration)]
                levels = models[host.device_class].relative_levels(times)
                times = times[rng.uniform(size=times.size) < levels]
                qname = service.hostnames[0]
                for timestamp in times:
                    events.append(
                        QueryEvent(
                            timestamp=float(timestamp),
                            host=host,
                            qname=qname,
                            e2ld=service.domain,
                        )
                    )

    def _iot_events(
        self,
        population: HostPopulation,
        ipspace: IpSpace,
        duration: float,
        rng: np.random.Generator,
        events: list[QueryEvent],
    ) -> tuple[list[DomainRecord], dict[str, HostingAssignment]]:
        """IoT devices poll their vendor's service domains day and night."""
        block = ipspace.new_block("iot-vendors", size=256)
        records: list[DomainRecord] = []
        hosting: dict[str, HostingAssignment] = {}
        for vendor, ip_count in _IOT_VENDORS:
            hosting[vendor] = HostingAssignment(
                ttl=600, fixed_ips=block.allocate_many(ip_count)
            )
            records.append(
                DomainRecord(
                    name=vendor,
                    category=DomainCategory.INFRASTRUCTURE,
                    family="iot-vendor",
                    registration_age_days=2500.0,
                )
            )
        vendor_names = [vendor for vendor, __ in _IOT_VENDORS]
        for host in population.iot_hosts:
            vendor = vendor_names[host.index % len(vendor_names)]
            poll_interval = float(rng.uniform(5, 30)) * SECONDS_PER_MINUTE
            clock = float(rng.uniform(0, poll_interval))
            while clock < duration:
                events.append(
                    QueryEvent(
                        timestamp=clock,
                        host=host,
                        qname=f"api.{vendor}",
                        e2ld=vendor,
                    )
                )
                clock += poll_interval * float(rng.uniform(0.9, 1.1))
        return records, hosting

    @staticmethod
    def _merge_hosting(
        catalog: BenignCatalog,
        browsing: BrowsingModel,
        landscape: MalwareLandscape,
        iot_hosting: dict[str, HostingAssignment],
    ) -> dict[str, HostingAssignment | None]:
        merged: dict[str, HostingAssignment | None] = {}
        for profile in (
            catalog.all_sites + catalog.third_parties + catalog.background_services
        ):
            merged[profile.domain] = profile.hosting
        merged.update(browsing.redirector_hosting)
        merged.update(iot_hosting)
        merged.update(landscape.hosting_map())
        return merged

    @staticmethod
    def _merge_ground_truth(
        catalog: BenignCatalog,
        browsing: BrowsingModel,
        landscape: MalwareLandscape,
        iot_records: list[DomainRecord],
    ) -> GroundTruth:
        truth = GroundTruth()
        for record in (
            catalog.records
            + browsing.redirector_records
            + iot_records
            + landscape.all_records
        ):
            if record.name not in truth:
                truth.add(record)
        return truth

    def _render(
        self,
        events: list[QueryEvent],
        hosting_map: dict[str, HostingAssignment | None],
        population: HostPopulation,
        rng: np.random.Generator,
    ) -> tuple[list[DnsQuery], list[DnsResponse]]:
        """Turn query intents into interleaved query/response records."""
        lease_index = _LeaseIndex(population.hosts)
        count = len(events)
        txids = rng.integers(0, 1 << 16, size=count)
        delays = rng.uniform(0.002, 0.060, size=count)
        queries: list[DnsQuery] = []
        responses: list[DnsResponse] = []
        duration = self.config.duration_seconds
        for position, event in enumerate(events):
            timestamp = min(event.timestamp, duration - 0.001)
            source_ip = lease_index.ip_at(event.host, timestamp)
            txid = int(txids[position])
            queries.append(
                DnsQuery(
                    timestamp=timestamp,
                    txid=txid,
                    source_ip=source_ip,
                    qname=event.qname,
                    qtype=QueryType.A,
                )
            )
            hosting = hosting_map.get(event.e2ld)
            response_time = timestamp + float(delays[position])
            if hosting is None:
                responses.append(
                    DnsResponse(
                        timestamp=response_time,
                        txid=txid,
                        destination_ip=source_ip,
                        qname=event.qname,
                        nxdomain=True,
                    )
                )
                continue
            answers = self._answers_for(hosting, timestamp, rng)
            responses.append(
                DnsResponse(
                    timestamp=response_time,
                    txid=txid,
                    destination_ip=source_ip,
                    qname=event.qname,
                    answers=answers,
                )
            )
        return queries, responses

    @staticmethod
    def _answers_for(
        hosting: HostingAssignment,
        timestamp: float,
        rng: np.random.Generator,
    ) -> tuple[ResourceRecord, ...]:
        """Build the answer section for one resolution."""
        if hosting.pool is not None:
            active = hosting.pool.addresses_at(timestamp)
            size = min(len(active), int(rng.integers(1, 4)))
            picks = rng.choice(len(active), size=size, replace=False)
            ips = [active[int(i)] for i in picks]
        else:
            size = min(len(hosting.fixed_ips), int(rng.integers(1, 4)))
            picks = rng.choice(len(hosting.fixed_ips), size=size, replace=False)
            ips = [hosting.fixed_ips[int(i)] for i in picks]
        return tuple(
            ResourceRecord(rtype=QueryType.A, value=ip, ttl=hosting.ttl)
            for ip in ips
        )
