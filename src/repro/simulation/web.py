"""Web browsing model: sessions, page loads, and redirect chains.

A browsing session resolves the visited site's hostname, then — once the
page renders — the third-party domains embedded in it (ads, analytics,
CDNs), exactly the mechanism the paper cites as the source of benign
temporal correlation (section 4.2.3). A fraction of visits additionally
pass through a short redirect chain (URL shorteners / trackers), modeled
with a small pool of redirector domains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.domains import (
    BenignCatalog,
    HostingAssignment,
    SiteProfile,
)
from repro.simulation.groundtruth import DomainCategory, DomainRecord


@dataclass(frozen=True, slots=True)
class PageLookup:
    """One DNS lookup triggered by a page visit."""

    delay: float  # seconds after the session start
    qname: str
    e2ld: str


class BrowsingModel:
    """Expands a session start time into the DNS lookups it triggers."""

    REDIRECTOR_COUNT = 6

    def __init__(self, catalog: BenignCatalog, rng: np.random.Generator) -> None:
        self._catalog = catalog
        self._rng = rng
        self._sites = catalog.all_sites
        self._weights = catalog.site_weights()
        self._profile_index = catalog.profile_by_domain()
        self.redirector_records: list[DomainRecord] = []
        self.redirector_hosting: dict[str, HostingAssignment] = {}
        self._redirectors: list[str] = []
        self._build_redirectors()

    def _build_redirectors(self) -> None:
        """URL-shortener / tracker style domains used in redirect chains."""
        stems = ("lnk", "go", "clck", "jmp", "t", "short")
        tlds = ("ly", "gd", "to", "cc", "me", "io")
        for index in range(self.REDIRECTOR_COUNT):
            name = f"{stems[index % len(stems)]}{index}.{tlds[index % len(tlds)]}"
            self._redirectors.append(name)
            self.redirector_hosting[name] = HostingAssignment(
                ttl=300,
                fixed_ips=self._catalog._dedicated_block.allocate_many(2),
            )
            self.redirector_records.append(
                DomainRecord(
                    name=name,
                    category=DomainCategory.INFRASTRUCTURE,
                    family="redirector",
                    registration_age_days=3000.0,
                )
            )

    def pick_site(self) -> SiteProfile:
        """Sample a site by Zipf popularity."""
        return self.pick_sites(1)[0]

    def pick_sites(self, count: int) -> list[SiteProfile]:
        """Batch-sample ``count`` sites by Zipf popularity.

        Uses inverse-CDF sampling (cumsum + searchsorted) so the cost is
        O(count log sites) rather than numpy.choice's O(count * sites).
        """
        cumulative = np.cumsum(self._weights)
        draws = self._rng.uniform(0.0, cumulative[-1], size=count)
        indices = np.searchsorted(cumulative, draws, side="right")
        indices = np.minimum(indices, len(self._sites) - 1)
        return [self._sites[int(i)] for i in indices]

    def session_lookups(self, site: SiteProfile | None = None) -> list[PageLookup]:
        """All DNS lookups of one browsing session, with relative delays.

        The session orders: optional redirect chain, the site itself,
        then embedded third parties as the page renders, then possibly one
        or two follow-on pages on the same site.
        """
        if site is None:
            site = self.pick_site()
        lookups: list[PageLookup] = []
        delay = 0.0

        if self._redirectors and self._rng.random() < 0.12:
            chain_length = int(self._rng.integers(1, 4))
            picks = self._rng.choice(
                len(self._redirectors),
                size=min(chain_length, len(self._redirectors)),
                replace=False,
            )
            for pick in picks:
                redirector = self._redirectors[int(pick)]
                lookups.append(
                    PageLookup(delay=delay, qname=redirector, e2ld=redirector)
                )
                delay += float(self._rng.uniform(0.1, 0.8))

        hostname = site.hostnames[int(self._rng.integers(len(site.hostnames)))]
        lookups.append(PageLookup(delay=delay, qname=hostname, e2ld=site.domain))
        delay += float(self._rng.uniform(0.2, 1.5))

        profile_index = self._profile_index
        for embedded in site.embedded_domains:
            if self._rng.random() < 0.85:  # some resources are cached
                profile = profile_index.get(embedded)
                qname = embedded
                if profile is not None and profile.hostnames:
                    qname = profile.hostnames[
                        int(self._rng.integers(len(profile.hostnames)))
                    ]
                lookups.append(PageLookup(delay=delay, qname=qname, e2ld=embedded))
                delay += float(self._rng.uniform(0.05, 0.6))

        # Follow-on page views within the same session.
        followups = int(self._rng.integers(0, 3))
        for _ in range(followups):
            delay += float(self._rng.uniform(20.0, 180.0))
            hostname = site.hostnames[int(self._rng.integers(len(site.hostnames)))]
            lookups.append(PageLookup(delay=delay, qname=hostname, e2ld=site.domain))
        return lookups
