"""Campus-network DNS trace simulator.

The paper's evaluation runs on one month of DNS and DHCP logs from a large
campus network, plus proprietary label feeds. Those assets are not
available, so this package synthesizes a behaviorally equivalent trace:

* a host population (desktops, laptops, phones, IoT) with diurnal activity
  and DHCP lease churn;
* a benign domain catalog — popular sites with embedded third-party
  domains (ads, CDNs, analytics), shared hosting, and a long tail;
* malware infections — DGA botnets with C&C beaconing and NXDOMAIN
  fluxing, spam/phishing campaigns, and fast-flux hosting.

The detection signal the paper exploits is *relational* (which hosts query
which domains, which domains share IPs, which domains are active in the
same minutes); the simulator reproduces exactly those co-occurrence
structures together with realistic benign confounders.
"""

from repro.simulation.config import (
    BenignCatalogConfig,
    HostPopulationConfig,
    MalwareConfig,
    SimulationConfig,
)
from repro.simulation.generator import SimulatedTrace, TraceGenerator
from repro.simulation.groundtruth import DomainCategory, DomainRecord, GroundTruth

__all__ = [
    "BenignCatalogConfig",
    "DomainCategory",
    "DomainRecord",
    "GroundTruth",
    "HostPopulationConfig",
    "MalwareConfig",
    "SimulatedTrace",
    "SimulationConfig",
    "TraceGenerator",
]
