"""Domain generation algorithms (DGAs).

Botnets flux through algorithmically generated domains to evade blacklists
(paper section 2). Three generator styles are modeled on well-known
families:

* :class:`PseudoRandomDga` — uniform random letters, Conficker-style
  (the paper's Table 2 cluster: ``oorfapjflmp.ws`` etc.);
* :class:`HexDga` — hexadecimal strings, Bamital-style;
* :class:`WordlistDga` — concatenated dictionary words, Suppobox-style
  (these defeat simple lexical detectors, which is one reason the paper's
  behavioral features beat Exposure's lexical features).

All generators are deterministic in (seed, index) so a family's domain
stream is reproducible.
"""

from __future__ import annotations

import string
from abc import ABC, abstractmethod

import numpy as np

_LETTERS = np.array(list(string.ascii_lowercase))
_HEX = np.array(list("0123456789abcdef"))

# A compact pronounceable wordlist in the style of dictionary DGAs.
_WORDS = (
    "able", "acid", "aged", "also", "area", "army", "away", "baby", "back",
    "ball", "band", "bank", "base", "bath", "bear", "beat", "bell", "belt",
    "bird", "blow", "blue", "boat", "body", "bone", "book", "born", "both",
    "bowl", "bulk", "burn", "bush", "busy", "call", "calm", "came", "camp",
    "card", "care", "case", "cash", "cast", "cell", "chat", "chip", "city",
    "club", "coal", "coat", "code", "cold", "come", "cook", "cool", "cope",
    "copy", "core", "cost", "crew", "crop", "dark", "data", "date", "dawn",
    "days", "dead", "deal", "dean", "dear", "debt", "deep", "deny", "desk",
    "dial", "diet", "disc", "disk", "does", "done", "door", "dose", "down",
    "draw", "drew", "drop", "drug", "dual", "duke", "dust", "duty", "each",
    "earn", "ease", "east", "easy", "edge", "else", "even", "ever", "evil",
    "exit", "face", "fact", "fail", "fair", "fall", "farm", "fast", "fate",
    "fear", "feed", "feel", "feet", "fell", "felt", "file", "fill", "film",
    "find", "fine", "fire", "firm", "fish", "five", "flat", "flow", "food",
    "foot", "ford", "form", "fort", "four", "free", "from", "fuel", "full",
    "fund", "gain", "game", "gate", "gave", "gear", "gift", "girl", "give",
    "glad", "goal", "goes", "gold", "golf", "gone", "good", "gray", "grew",
    "grey", "grow", "gulf", "hair", "half", "hall", "hand", "hang", "hard",
    "harm", "hate", "have", "head", "hear", "heat", "held", "hell", "help",
)


class DgaGenerator(ABC):
    """Deterministic stream of generated domain names."""

    def __init__(self, seed: int, tld: str) -> None:
        self.seed = seed
        self.tld = tld.lstrip(".")

    @abstractmethod
    def _label(self, rng: np.random.Generator) -> str:
        """Generate the registrable label for one domain."""

    def domain(self, index: int) -> str:
        """The ``index``-th domain of the stream (stable across calls)."""
        rng = np.random.default_rng((self.seed, index))
        return f"{self._label(rng)}.{self.tld}"

    def domains(self, count: int, start: int = 0) -> list[str]:
        """The first ``count`` domains from offset ``start``, deduplicated.

        Collisions are vanishingly rare for the random styles but possible
        for the wordlist style; extra indices are consumed as needed so the
        result always contains ``count`` distinct names.
        """
        seen: dict[str, None] = {}
        index = start
        while len(seen) < count:
            seen.setdefault(self.domain(index), None)
            index += 1
            if index - start > 50 * count + 1000:
                raise RuntimeError(
                    f"{type(self).__name__} cannot produce {count} distinct names"
                )
        return list(seen)


class PseudoRandomDga(DgaGenerator):
    """Uniform random lowercase letters (Conficker-style)."""

    def __init__(self, seed: int, tld: str = "ws", length: int = 11) -> None:
        super().__init__(seed, tld)
        if length < 4:
            raise ValueError("DGA label length must be at least 4")
        self.length = length

    def _label(self, rng: np.random.Generator) -> str:
        return "".join(rng.choice(_LETTERS, size=self.length))


class HexDga(DgaGenerator):
    """Hexadecimal labels (Bamital-style hashes)."""

    def __init__(self, seed: int, tld: str = "info", length: int = 16) -> None:
        super().__init__(seed, tld)
        if length < 8:
            raise ValueError("hex DGA label length must be at least 8")
        self.length = length

    def _label(self, rng: np.random.Generator) -> str:
        return "".join(rng.choice(_HEX, size=self.length))


class WordlistDga(DgaGenerator):
    """Two or three dictionary words concatenated (Suppobox-style).

    Produces pronounceable, lexically benign-looking names that defeat
    character-distribution detectors.
    """

    def __init__(self, seed: int, tld: str = "net", words_per_name: int = 2) -> None:
        super().__init__(seed, tld)
        if not 2 <= words_per_name <= 3:
            raise ValueError("words_per_name must be 2 or 3")
        self.words_per_name = words_per_name

    def _label(self, rng: np.random.Generator) -> str:
        picks = rng.integers(0, len(_WORDS), size=self.words_per_name)
        return "".join(_WORDS[int(i)] for i in picks)


def spam_campaign_names(
    seed: int, count: int, tld: str = "bid"
) -> list[str]:
    """Names in the style of the paper's Table 1 spam cluster.

    Real spam campaigns register squatting-flavored keyword mashups
    (``fattylivercur.bid``, ``bstwoodprofit.bid``). We mimic that by fusing
    topic keywords with filler syllables and occasional letter drops.
    """
    topics = (
        "profit", "holster", "turmeric", "canvas", "solar", "flight",
        "permit", "detect", "cure", "wood", "belly", "ankle", "nano",
        "cook", "muzic", "liver", "fatty", "easy", "best", "nice",
        "clean", "drger", "gam", "amrica", "vegn", "brv", "concld",
    )
    syllables = ("tol", "dit", "fane", "putch", "clen", "lrn", "sim", "bst")
    rng = np.random.default_rng(seed)
    names: dict[str, None] = {}
    while len(names) < count:
        parts = [
            topics[int(rng.integers(len(topics)))],
            (topics + syllables)[int(rng.integers(len(topics) + len(syllables)))],
        ]
        label = "".join(parts)
        # Occasionally drop a vowel, the way squatters compress words.
        if rng.random() < 0.4:
            vowel_positions = [i for i, c in enumerate(label) if c in "aeiou"]
            if vowel_positions:
                drop = vowel_positions[int(rng.integers(len(vowel_positions)))]
                label = label[:drop] + label[drop + 1 :]
        if 6 <= len(label) <= 18:
            names.setdefault(f"{label}.{tld}", None)
    return list(names)
