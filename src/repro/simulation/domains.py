"""Benign domain catalog.

Builds the benign side of the simulated Internet: popular sites with
embedded third-party domains (ads, analytics, CDNs), a long tail of small
sites (many on shared hosting), and CDN infrastructure domains. Each
domain carries a hosting assignment that drives the domain-IP bipartite
graph, and a TTL policy that feeds the Exposure baseline's TTL features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.config import BenignCatalogConfig
from repro.simulation.groundtruth import DomainCategory, DomainRecord
from repro.simulation.ipspace import IpSpace, RotatingPool

_NAME_STEMS = (
    "campus", "river", "stone", "maple", "cedar", "summit", "harbor",
    "lantern", "meadow", "orchid", "pioneer", "quartz", "raven", "sierra",
    "timber", "violet", "willow", "zephyr", "aurora", "beacon", "canyon",
    "delta", "ember", "falcon", "garnet", "horizon", "indigo", "juniper",
    "kestrel", "lagoon", "mosaic", "nimbus", "onyx", "prairie", "quill",
    "ridge", "sparrow", "tundra", "umber", "vertex", "wander", "xenon",
    "yonder", "zenith", "anchor", "breeze", "cobalt", "drift", "echo",
    "flint", "grove", "haven", "isle", "jade", "koi", "lumen", "mist",
)
_NAME_SUFFIXES = (
    "news", "mail", "shop", "blog", "wiki", "labs", "hub", "base", "zone",
    "works", "press", "media", "forum", "cloud", "app", "soft", "tech",
    "store", "市", "", "", "",
)
_BENIGN_TLDS = ("com", "net", "org", "cn", "com.cn", "edu", "io", "info", "co.uk")
_THIRD_PARTY_KINDS = ("ads", "metrics", "track", "cdn", "static", "api", "pixel")

# Operationally common TTL values. Benign and malicious hosting draw from
# overlapping palettes: per the paper's section 8.2, malicious domains
# have *raised* their TTLs while CDNs pushed benign TTLs down, so TTL
# statistics no longer separate the classes cleanly.
_TTL_PALETTES: dict[str, tuple[tuple[int, ...], tuple[float, ...]]] = {
    "cdn": ((20, 30, 60, 120, 300), (0.15, 0.3, 0.3, 0.15, 0.1)),
    "dedicated": (
        (600, 1800, 3600, 7200, 14400, 43200, 86400),
        (0.05, 0.1, 0.35, 0.2, 0.15, 0.1, 0.05),
    ),
    "shared": ((1800, 3600, 7200, 14400), (0.2, 0.45, 0.2, 0.15)),
    "malicious": (
        (120, 300, 600, 1800, 3600, 7200, 14400, 43200, 86400),
        (0.06, 0.1, 0.12, 0.17, 0.25, 0.12, 0.1, 0.05, 0.03),
    ),
    "fastflux": ((30, 60, 120, 180, 300), (0.25, 0.3, 0.25, 0.1, 0.1)),
}


def sample_ttl(kind: str, rng: np.random.Generator) -> int:
    """Draw a TTL from the operational palette for ``kind``."""
    values, weights = _TTL_PALETTES[kind]
    return int(values[int(rng.choice(len(values), p=np.asarray(weights)))])


@dataclass(slots=True)
class HostingAssignment:
    """How a domain's hostnames resolve to IP addresses.

    Exactly one of ``fixed_ips`` / ``pool`` is set. ``ttl`` is the TTL
    stamped on answer records (CDN pools use low TTLs, dedicated hosting
    uses high TTLs — the statistical signal Exposure's TTL features rely
    on).
    """

    ttl: int
    fixed_ips: list[str] = field(default_factory=list)
    pool: RotatingPool | None = None

    def resolve(self, timestamp: float, rng: np.random.Generator) -> str:
        """One resolved address for a query at ``timestamp``."""
        if self.pool is not None:
            return self.pool.resolve(timestamp, rng)
        return self.fixed_ips[int(rng.integers(len(self.fixed_ips)))]


@dataclass(slots=True)
class SiteProfile:
    """A browsable benign web site."""

    domain: str
    popularity: float
    hosting: HostingAssignment
    embedded_domains: list[str] = field(default_factory=list)
    # Subdomain labels under the e2LD that clients actually query.
    hostnames: list[str] = field(default_factory=list)


class BenignCatalog:
    """The full benign domain population and its hosting structure.

    Args:
        config: Catalog composition knobs.
        ipspace: Shared IP space used for all allocations.
        rng: Source of randomness for catalog construction.
    """

    def __init__(
        self,
        config: BenignCatalogConfig,
        ipspace: IpSpace,
        rng: np.random.Generator,
    ) -> None:
        self._config = config
        self._ipspace = ipspace
        self._rng = rng
        self._used_names: set[str] = set()

        self.third_parties: list[SiteProfile] = []
        self.popular_sites: list[SiteProfile] = []
        self.longtail_sites: list[SiteProfile] = []
        self.records: list[DomainRecord] = []
        # Shared-hosting IPs kept for malicious co-tenancy injection.
        self.shared_hosting_ips: list[str] = []

        self.background_services: list[SiteProfile] = []

        self._build_cdn_blocks()
        self._build_third_parties()
        self._build_popular_sites()
        self._build_longtail_sites()
        self._build_background_services()

    # ------------------------------------------------------------------
    # Name generation

    # Fraction of benign names that are machine-generated (cloud tenant
    # buckets, telemetry endpoints, URL-shortener style). Real traffic is
    # full of these, and they are the honest reason lexical features alone
    # cannot separate DGA output from benign names (paper section 8.2).
    MACHINE_NAME_FRACTION = 0.15

    def _machine_label(self) -> str:
        """A random-looking but benign label (cloud/telemetry style)."""
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        length = int(self._rng.integers(6, 14))
        chars = [alphabet[int(i)] for i in self._rng.integers(0, 36, size=length)]
        label = "".join(chars)
        prefix = ("d", "s3-", "cdn-", "t", "g", "")[int(self._rng.integers(6))]
        return f"{prefix}{label}"

    def _fresh_name(self, kind: str = "site") -> str:
        """Generate a plausible, unused benign e2LD."""
        for _ in range(10_000):
            tld = _BENIGN_TLDS[int(self._rng.integers(len(_BENIGN_TLDS)))]
            if self._rng.random() < self.MACHINE_NAME_FRACTION:
                label = self._machine_label()
            else:
                stem = _NAME_STEMS[int(self._rng.integers(len(_NAME_STEMS)))]
                suffix = _NAME_SUFFIXES[
                    int(self._rng.integers(len(_NAME_SUFFIXES)))
                ]
                if suffix and not suffix.isascii():
                    suffix = ""
                if kind == "third_party":
                    part = _THIRD_PARTY_KINDS[
                        int(self._rng.integers(len(_THIRD_PARTY_KINDS)))
                    ]
                    label = f"{stem}{part}"
                else:
                    label = f"{stem}{suffix}"
                if self._rng.random() < 0.25:
                    label = f"{label}{int(self._rng.integers(1, 99))}"
            name = f"{label}.{tld}"
            if name not in self._used_names:
                self._used_names.add(name)
                return name
        raise RuntimeError("benign name space exhausted; enlarge stems list")

    # ------------------------------------------------------------------
    # Catalog construction

    def _build_cdn_blocks(self) -> None:
        self._cdn_pools: list[RotatingPool] = []
        for index in range(self._config.cdn_provider_count):
            block = self._ipspace.new_block(f"cdn-{index}", size=2048)
            addresses = block.allocate_many(96)
            self._cdn_pools.append(
                RotatingPool(
                    addresses=addresses,
                    rotation_period=6 * 3600.0,
                    active_size=12,
                    seed=int(self._rng.integers(1 << 31)),
                )
            )
        self._shared_blocks = [
            self._ipspace.new_block(f"shared-{index}", size=512)
            for index in range(self._config.shared_hosting_provider_count)
        ]
        self._dedicated_block = self._ipspace.new_block("dedicated", size=60_000)
        # Shared-hosting providers differ in density: most are small
        # resellers with one or two addresses, a few are large. Sites are
        # assigned to providers with Zipf-skewed popularity, so benign
        # co-tenancy (domains per IP) spans a broad continuous range —
        # from a handful to over a hundred — fully covering the counts
        # malicious campaigns exhibit. This is the benign confounder that
        # keeps "number of domains sharing my IP" from being a clean
        # statistical separator, while leaving IP-*set* similarity intact.
        self._shared_ips_per_block = [
            block.allocate_many(int(self._rng.integers(1, 3)))
            for block in self._shared_blocks
        ]
        provider_ranks = np.arange(1, len(self._shared_blocks) + 1, dtype=float)
        provider_weights = provider_ranks ** (-0.5)
        self._rng.shuffle(provider_weights)
        self._shared_provider_weights = provider_weights / provider_weights.sum()
        for ips in self._shared_ips_per_block:
            self.shared_hosting_ips.extend(ips)

    def _dedicated_hosting(self, ip_count: int, ttl: int) -> HostingAssignment:
        return HostingAssignment(
            ttl=ttl, fixed_ips=self._dedicated_block.allocate_many(ip_count)
        )

    def _shared_hosting(self, ttl: int | None = None) -> HostingAssignment:
        if ttl is None:
            ttl = sample_ttl("shared", self._rng)
        block_index = int(
            self._rng.choice(
                len(self._shared_ips_per_block), p=self._shared_provider_weights
            )
        )
        ips = self._shared_ips_per_block[block_index]
        count = min(int(self._rng.integers(1, 3)), len(ips))
        picks = self._rng.choice(len(ips), size=count, replace=False)
        return HostingAssignment(ttl=ttl, fixed_ips=[ips[int(i)] for i in picks])

    def _cdn_hosting(self, ttl: int = 60) -> HostingAssignment:
        pool = self._cdn_pools[int(self._rng.integers(len(self._cdn_pools)))]
        return HostingAssignment(ttl=ttl, pool=pool)

    def _build_third_parties(self) -> None:
        """Ad/analytics/CDN domains embedded into many sites' pages."""
        for _ in range(self._config.third_party_count):
            name = self._fresh_name("third_party")
            on_cdn = self._rng.random() < 0.6
            hosting = (
                self._cdn_hosting(ttl=sample_ttl("cdn", self._rng))
                if on_cdn
                else self._dedicated_hosting(
                    ip_count=int(self._rng.integers(2, 6)),
                    ttl=sample_ttl("dedicated", self._rng),
                )
            )
            profile = SiteProfile(
                domain=name,
                popularity=float(self._rng.uniform(0.5, 1.0)),
                hosting=hosting,
                hostnames=self._hostnames_for(name, 2),
            )
            self.third_parties.append(profile)
            self.records.append(
                DomainRecord(
                    name=name,
                    category=(
                        DomainCategory.CDN if on_cdn else DomainCategory.THIRD_PARTY
                    ),
                    family=f"thirdparty",
                    registration_age_days=float(self._rng.uniform(800, 5000)),
                )
            )

    def _hostnames_for(self, e2ld: str, count: int) -> list[str]:
        labels = ("www", "api", "static", "img", "m", "mail", "cdn", "news")
        picks = self._rng.choice(
            len(labels), size=min(count, len(labels)), replace=False
        )
        return [f"{labels[int(i)]}.{e2ld}" for i in picks] + [e2ld]

    def _embedded_for_page(self) -> list[str]:
        """Third-party e2LDs a popular page pulls in when rendered."""
        mean = self._config.embedded_per_page
        count = min(
            len(self.third_parties), max(1, int(self._rng.poisson(mean)))
        )
        weights = np.array([tp.popularity for tp in self.third_parties])
        weights = weights / weights.sum()
        picks = self._rng.choice(
            len(self.third_parties), size=count, replace=False, p=weights
        )
        return [self.third_parties[int(i)].domain for i in picks]

    def _build_popular_sites(self) -> None:
        count = self._config.popular_site_count
        ranks = np.arange(1, count + 1, dtype=float)
        weights = ranks ** (-self._config.zipf_exponent)
        weights /= weights.sum()
        # The popular head carries the bulk of campus traffic: scale its
        # mass so it outweighs the long tail roughly 70/30 (longtail sites
        # average ~0.105 popularity each, see _build_longtail_sites).
        expected_longtail_mass = 0.105 * self._config.longtail_site_count
        weights = weights * max(1.2 * expected_longtail_mass, 1.0)
        for index in range(count):
            name = self._fresh_name()
            on_cdn = self._rng.random() < 0.5
            hosting = (
                self._cdn_hosting(ttl=sample_ttl("cdn", self._rng))
                if on_cdn
                else self._dedicated_hosting(
                    ip_count=int(self._rng.integers(2, 8)),
                    ttl=sample_ttl("dedicated", self._rng),
                )
            )
            self.popular_sites.append(
                SiteProfile(
                    domain=name,
                    popularity=float(weights[index]),
                    hosting=hosting,
                    embedded_domains=self._embedded_for_page(),
                    hostnames=self._hostnames_for(name, 3),
                )
            )
            self.records.append(
                DomainRecord(
                    name=name,
                    category=DomainCategory.POPULAR_SITE,
                    family="popular",
                    registration_age_days=float(self._rng.uniform(1500, 8000)),
                )
            )

    def _build_longtail_sites(self) -> None:
        for _ in range(self._config.longtail_site_count):
            name = self._fresh_name()
            on_shared = self._rng.random() < self._config.shared_hosting_fraction
            hosting = (
                self._shared_hosting()
                if on_shared
                else self._dedicated_hosting(
                    ip_count=1, ttl=sample_ttl("dedicated", self._rng)
                )
            )
            embedded: list[str] = []
            if self.third_parties and self._rng.random() < 0.5:
                # Small sites embed one or two common third parties.
                tp_count = int(self._rng.integers(1, 3))
                picks = self._rng.choice(
                    len(self.third_parties),
                    size=min(tp_count, len(self.third_parties)),
                    replace=False,
                )
                embedded = [self.third_parties[int(i)].domain for i in picks]
            self.longtail_sites.append(
                SiteProfile(
                    domain=name,
                    popularity=float(self._rng.uniform(0.01, 0.2)),
                    hosting=hosting,
                    embedded_domains=embedded,
                    hostnames=self._hostnames_for(name, 1),
                )
            )
            self.records.append(
                DomainRecord(
                    name=name,
                    category=DomainCategory.LONGTAIL_SITE,
                    family="longtail",
                    registration_age_days=float(self._rng.uniform(60, 4000)),
                )
            )

    def _build_background_services(self) -> None:
        """Benign always-on service endpoints (updates, sync, telemetry).

        Hosts poll these periodically in the background, so their DNS
        footprint — steady daily volume, flat hour profile, activity on
        every day of the capture — mirrors C&C beaconing. They are the
        honest benign twin that keeps time-based statistics from cleanly
        separating the classes (paper section 8.2).
        """
        service_words = ("update", "sync", "push", "telemetry", "api",
                         "status", "time", "feed", "notify", "client")
        for index in range(self._config.background_service_count):
            word = service_words[index % len(service_words)]
            name = self._fresh_name()
            label, tld = name.split(".", 1)
            name = f"{label}{word}.{tld}"
            if name in self._used_names:
                name = f"{label}{word}{index}.{tld}"
            self._used_names.add(name)
            on_cdn = self._rng.random() < 0.4
            hosting = (
                self._cdn_hosting(ttl=sample_ttl("cdn", self._rng))
                if on_cdn
                else self._dedicated_hosting(
                    ip_count=int(self._rng.integers(1, 4)),
                    ttl=sample_ttl("dedicated", self._rng),
                )
            )
            self.background_services.append(
                SiteProfile(
                    domain=name,
                    popularity=0.0,  # never browsed, only polled
                    hosting=hosting,
                    hostnames=[f"api.{name}", name],
                )
            )
            self.records.append(
                DomainRecord(
                    name=name,
                    category=DomainCategory.INFRASTRUCTURE,
                    family="background-service",
                    registration_age_days=float(self._rng.uniform(700, 4000)),
                )
            )

    # ------------------------------------------------------------------
    # Sampling helpers used by the browsing model

    @property
    def all_sites(self) -> list[SiteProfile]:
        return self.popular_sites + self.longtail_sites

    def site_weights(self) -> np.ndarray:
        """Normalized popularity weights over :attr:`all_sites`."""
        weights = np.array([s.popularity for s in self.all_sites], dtype=float)
        return weights / weights.sum()

    def profile_by_domain(self) -> dict[str, SiteProfile]:
        """Index of every catalog profile (sites + third parties) by e2LD."""
        index: dict[str, SiteProfile] = {}
        for profile in self.all_sites + self.third_parties:
            index[profile.domain] = profile
        return index
