"""Simulated label sources (paper section 6.1).

The paper labels domains with a blacklist/whitelist from "a large Internet
security company", validated against the VirusTotal multi-engine API, and
interprets discovered clusters with ThreatBook reports. None of those
feeds are available offline, so this package simulates them on top of the
trace generator's ground truth, with configurable coverage and noise —
the detection pipeline only ever sees the simulated feeds, never the
ground truth itself.
"""

from repro.labels.intelligence import IntelligenceFeed, IntelligenceFeedConfig
from repro.labels.virustotal import (
    SimulatedVirusTotal,
    VirusTotalConfig,
    VirusTotalReport,
)
from repro.labels.threatbook import SimulatedThreatBook, ThreatReport
from repro.labels.dataset import LabeledDataset, build_labeled_dataset

__all__ = [
    "IntelligenceFeed",
    "IntelligenceFeedConfig",
    "LabeledDataset",
    "SimulatedThreatBook",
    "SimulatedVirusTotal",
    "ThreatReport",
    "VirusTotalConfig",
    "VirusTotalReport",
    "build_labeled_dataset",
]
