"""Simulated VirusTotal multi-engine verdict API.

The paper validates every blacklist entry with the public VirusTotal API,
keeping a domain only if it is "confirmed by the VirusTotal API, and
appears [on] at least two of the 60 global blacklists" (section 6.1), and
uses the same API to confirm newly discovered cluster domains (Figure 4).

The simulation models 60 engines with heterogeneous sensitivity. An
engine detects a truly malicious domain with a probability that grows
with the domain's age (freshly generated DGA names are poorly covered —
the property that makes Figure 4's *suspicious* bucket non-empty), and
false-positives on benign domains at a small per-engine rate. Verdicts
are deterministic per (seed, domain): querying twice gives the same
report, like the real API over a short window.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.simulation.groundtruth import GroundTruth

ENGINE_COUNT = 60


@dataclass(slots=True)
class VirusTotalConfig:
    """Behavior knobs for the simulated API."""

    engines: int = ENGINE_COUNT
    # Mean per-engine detection probability for an old, well-known
    # malicious domain.
    mature_detection_rate: float = 0.35
    # Age (days) at which coverage saturates.
    maturity_days: float = 30.0
    # Per-engine false-positive probability on benign domains.
    benign_fp_rate: float = 0.002
    # Fraction of malicious domains unknown to every engine (brand new
    # or too obscure) regardless of age.
    blind_spot_rate: float = 0.12
    seed: int = 202

    def validate(self) -> None:
        if self.engines < 1:
            raise ValueError("engines must be at least 1")
        for name in ("mature_detection_rate", "benign_fp_rate", "blind_spot_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if self.maturity_days <= 0:
            raise ValueError("maturity_days must be positive")


@dataclass(frozen=True, slots=True)
class VirusTotalReport:
    """One query result: how many engines flagged the domain."""

    domain: str
    positives: int
    total_engines: int

    @property
    def detection_ratio(self) -> float:
        return self.positives / self.total_engines if self.total_engines else 0.0


class SimulatedVirusTotal:
    """Deterministic multi-engine verdict oracle over ground truth."""

    def __init__(
        self, truth: GroundTruth, config: VirusTotalConfig | None = None
    ) -> None:
        if config is None:
            config = VirusTotalConfig()
        config.validate()
        self.config = config
        self._truth = truth
        self.query_count = 0
        # Engine sensitivities: some engines are broad, some narrow.
        rng = np.random.default_rng(config.seed)
        self._engine_sensitivity = rng.uniform(0.3, 1.7, size=config.engines)

    def _domain_rng(self, domain: str) -> np.random.Generator:
        digest = hashlib.sha256(
            f"{self.config.seed}:{domain}".encode()
        ).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "big"))

    def query(self, domain: str) -> VirusTotalReport:
        """Return the (deterministic) engine verdicts for ``domain``."""
        self.query_count += 1
        rng = self._domain_rng(domain)
        record = self._truth.get(domain)
        if record is None or not record.is_malicious:
            flags = rng.uniform(size=self.config.engines) < self.config.benign_fp_rate
            return VirusTotalReport(domain, int(flags.sum()), self.config.engines)
        if rng.random() < self.config.blind_spot_rate:
            return VirusTotalReport(domain, 0, self.config.engines)
        age_factor = min(record.registration_age_days / self.config.maturity_days, 1.0)
        # Coverage grows with age. Very young domains sit near the
        # confirmation threshold (expected positives ~ engines * base), so
        # the ">= 2 engines" rule meaningfully rejects fresh DGA output —
        # that is what populates Figure 4's "suspicious" bucket.
        base = self.config.mature_detection_rate * (0.05 + 0.95 * age_factor)
        per_engine = np.clip(base * self._engine_sensitivity, 0.0, 0.98)
        flags = rng.uniform(size=self.config.engines) < per_engine
        return VirusTotalReport(domain, int(flags.sum()), self.config.engines)

    def is_confirmed(self, domain: str, min_positives: int = 2) -> bool:
        """The paper's validation rule: flagged by >= 2 of the 60 engines."""
        return self.query(domain).positives >= min_positives
