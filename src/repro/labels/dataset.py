"""Labeled data-set assembly (paper section 6.1).

The paper's procedure: take the security company's blacklist and
whitelist; validate each blacklisted e2LD with VirusTotal, keeping it
only if at least 2 of the 60 engines confirm; the final set is 10,000+
domains, ~30% malicious / ~70% benign. :func:`build_labeled_dataset`
reproduces exactly that procedure on the simulated feeds, restricted to
domains that survived graph pruning (only those have embeddings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import DatasetError
from repro.labels.intelligence import IntelligenceFeed
from repro.labels.virustotal import SimulatedVirusTotal

MALICIOUS = 1
BENIGN = 0


@dataclass(slots=True)
class LabeledDataset:
    """Domains with binary labels (1 = malicious, 0 = benign)."""

    domains: list[str]
    labels: np.ndarray
    rejected_by_virustotal: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.domains) != self.labels.shape[0]:
            raise DatasetError("domains and labels disagree on length")

    def __len__(self) -> int:
        return len(self.domains)

    @property
    def malicious_count(self) -> int:
        return int(self.labels.sum())

    @property
    def benign_count(self) -> int:
        return int(len(self) - self.labels.sum())

    @property
    def malicious_fraction(self) -> float:
        return self.malicious_count / len(self) if len(self) else 0.0

    @property
    def malicious_domains(self) -> list[str]:
        return [d for d, y in zip(self.domains, self.labels) if y == MALICIOUS]

    @property
    def benign_domains(self) -> list[str]:
        return [d for d, y in zip(self.domains, self.labels) if y == BENIGN]

    def subset(self, indices: np.ndarray) -> "LabeledDataset":
        return LabeledDataset(
            domains=[self.domains[int(i)] for i in indices],
            labels=self.labels[indices],
        )


def build_labeled_dataset(
    feed: IntelligenceFeed,
    virustotal: SimulatedVirusTotal,
    eligible_domains: Iterable[str],
    min_engine_positives: int = 2,
    target_malicious_fraction: float | None = 0.30,
    seed: int = 404,
) -> LabeledDataset:
    """Assemble labels with the paper's validation rule.

    Args:
        feed: The blacklist/whitelist source.
        virustotal: Validation oracle for blacklist entries.
        eligible_domains: The domains that can be labeled (the ones
            surviving graph pruning, i.e. with embeddings).
        min_engine_positives: The ">= 2 of 60 engines" rule.
        target_malicious_fraction: When set, benign domains are
            subsampled so the malicious share is at least this value,
            matching the paper's ~30/70 composition; ``None`` keeps all.
        seed: RNG seed for the benign subsample.

    Raises:
        DatasetError: when no labeled domain survives validation.
    """
    eligible = list(dict.fromkeys(eligible_domains))
    malicious: list[str] = []
    rejected: list[str] = []
    benign: list[str] = []
    for domain in eligible:
        if feed.is_blacklisted(domain):
            if virustotal.is_confirmed(domain, min_engine_positives):
                malicious.append(domain)
            else:
                rejected.append(domain)
        elif feed.is_whitelisted(domain):
            benign.append(domain)
    if not malicious and not benign:
        raise DatasetError(
            "no eligible domain is covered by the intelligence feed"
        )

    if target_malicious_fraction and malicious:
        max_benign = int(
            len(malicious) * (1.0 - target_malicious_fraction)
            / target_malicious_fraction
        )
        if len(benign) > max_benign:
            rng = np.random.default_rng(seed)
            picks = rng.choice(len(benign), size=max_benign, replace=False)
            benign = [benign[int(i)] for i in sorted(picks)]

    domains = malicious + benign
    labels = np.array([MALICIOUS] * len(malicious) + [BENIGN] * len(benign))
    # Shuffle so folds don't see label-sorted data.
    order = np.random.default_rng(seed + 1).permutation(len(domains))
    return LabeledDataset(
        domains=[domains[int(i)] for i in order],
        labels=labels[order],
        rejected_by_virustotal=rejected,
    )
