"""Simulated security-company blacklist / whitelist feed.

Real intelligence feeds are incomplete (they miss young campaign domains)
and slightly noisy (stale entries). The simulated feed samples from ground
truth with configurable coverage per category and a small false-positive
rate, reproducing both properties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.groundtruth import GroundTruth


@dataclass(slots=True)
class IntelligenceFeedConfig:
    """Coverage/noise knobs for the simulated feed.

    Attributes:
        malicious_coverage: Probability a truly malicious domain appears
            on the blacklist.
        benign_coverage: Probability a truly benign domain appears on the
            whitelist.
        blacklist_fp_rate: Probability a benign domain is *also* wrongly
            blacklisted (stale/erroneous entries).
        age_bias: With age bias > 0, older malicious domains are more
            likely to be known to the feed (young DGA output is
            under-covered, as in reality).
        seed: RNG seed.
    """

    malicious_coverage: float = 0.75
    benign_coverage: float = 0.55
    blacklist_fp_rate: float = 0.01
    age_bias: float = 0.5
    seed: int = 101

    def validate(self) -> None:
        for name in (
            "malicious_coverage",
            "benign_coverage",
            "blacklist_fp_rate",
            "age_bias",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")


class IntelligenceFeed:
    """Blacklist and whitelist sampled from ground truth."""

    def __init__(
        self, truth: GroundTruth, config: IntelligenceFeedConfig | None = None
    ) -> None:
        if config is None:
            config = IntelligenceFeedConfig()
        config.validate()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.blacklist: set[str] = set()
        self.whitelist: set[str] = set()
        for record in truth:
            if record.is_malicious:
                coverage = config.malicious_coverage
                if config.age_bias > 0:
                    # Domains younger than ~2 weeks are less covered.
                    youth = float(
                        np.clip(1.0 - record.registration_age_days / 14.0, 0.0, 1.0)
                    )
                    coverage *= 1.0 - config.age_bias * youth
                if rng.random() < coverage:
                    self.blacklist.add(record.name)
            else:
                if rng.random() < config.benign_coverage:
                    self.whitelist.add(record.name)
                elif rng.random() < config.blacklist_fp_rate:
                    self.blacklist.add(record.name)

    def is_blacklisted(self, domain: str) -> bool:
        return domain in self.blacklist

    def is_whitelisted(self, domain: str) -> bool:
        return domain in self.whitelist
