"""Simulated ThreatBook-style threat reports.

The paper interprets discovered clusters by looking the members up on
ThreatBook (Tables 1-2, section 7.2): "most of 61 domains in one cluster
are reported as spam or phishing domains". The simulated service returns
a category/family report for domains the (simulated) vendor knows about,
and nothing for the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.groundtruth import DomainCategory, GroundTruth

_CATEGORY_LABELS = {
    DomainCategory.DGA: "dga",
    DomainCategory.CNC: "c2",
    DomainCategory.SPAM: "spam",
    DomainCategory.PHISHING: "phishing",
    DomainCategory.FASTFLUX: "fastflux",
}


@dataclass(frozen=True, slots=True)
class ThreatReport:
    """A vendor report for one domain."""

    domain: str
    category: str
    family: str


class SimulatedThreatBook:
    """Category/family lookups with configurable coverage."""

    def __init__(
        self, truth: GroundTruth, coverage: float = 0.85, seed: int = 303
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must lie in [0, 1]")
        self._reports: dict[str, ThreatReport] = {}
        rng = np.random.default_rng(seed)
        for record in truth:
            if not record.is_malicious:
                continue
            if rng.random() < coverage:
                self._reports[record.name] = ThreatReport(
                    domain=record.name,
                    category=_CATEGORY_LABELS[record.category],
                    family=record.family,
                )

    def report(self, domain: str) -> ThreatReport | None:
        """The vendor's report, or None when the domain is unknown."""
        return self._reports.get(domain)

    def dominant_category(self, domains: list[str]) -> tuple[str, float]:
        """Most common reported category in ``domains`` and its share.

        The share is relative to all queried domains (unknown domains
        dilute it), matching how the paper characterizes clusters
        ("most of 61 domains ... are reported as spam").
        """
        if not domains:
            return "unknown", 0.0
        counts: dict[str, int] = {}
        for domain in domains:
            report = self._reports.get(domain)
            if report is not None:
                counts[report.category] = counts.get(report.category, 0) + 1
        if not counts:
            return "unknown", 0.0
        category = max(counts, key=lambda key: counts[key])
        return category, counts[category] / len(domains)
