"""Stage tracing: wall-time spans recorded into the metrics registry.

``with trace("pipeline.embed"): ...`` times the block and records it as

* histogram ``stage.pipeline.embed.seconds`` — the latency distribution;
* counter ``stage.pipeline.embed.calls`` — how many times the stage ran.

Canonical span names for detection stages are ``pipeline.<stage>``
(``pipeline.ingest`` ... ``pipeline.cluster``), minted by
:func:`repro.core.stages.span_name` and emitted by the stage-graph
engine itself — batch, streaming, and checkpointed execution all
produce the same metric names because they run the same stage objects.

Spans nest (pipeline -> per-view embedding -> LINE training); the
nesting is tracked per-thread so concurrent pipelines don't interleave
their span stacks. Nested spans keep their own metric names — the
dotted ``path`` on the :class:`Span` object records lineage for logs
and debugging without exploding the metric namespace.

Overhead per span is two ``perf_counter`` calls plus two dict/lock
operations (single-digit microseconds), so spans are safe to leave on
permanently around stage-sized work. Don't wrap per-record work in a
span; use a counter and increment per batch instead.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from types import TracebackType
from typing import Iterator

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    default_registry,
)

__all__ = ["Span", "trace", "current_span", "STAGE_METRIC_PREFIX"]

# Metric namespace shared with export.render_timing_table().
STAGE_METRIC_PREFIX = "stage."


class _SpanStack(threading.local):
    """Per-thread stack of open spans."""

    def __init__(self) -> None:
        self.spans: list["Span"] = []


_STACK = _SpanStack()


def current_span() -> "Span | None":
    """The innermost open span on this thread, or ``None``."""
    return _STACK.spans[-1] if _STACK.spans else None


class Span:
    """One timed stage execution.

    Usually created via :func:`trace`; usable directly as a context
    manager when the registry should be chosen per-span. The ``elapsed``
    attribute is ``None`` while the span is open and holds seconds once
    it closes.
    """

    __slots__ = ("name", "path", "depth", "registry", "elapsed", "_started")

    def __init__(
        self, name: str, registry: MetricsRegistry | None = None
    ) -> None:
        if not name:
            raise ValueError("span name must be non-empty")
        self.name = name
        self.registry = registry if registry is not None else default_registry()
        self.path = name
        self.depth = 0
        self.elapsed: float | None = None
        self._started: float | None = None

    def __enter__(self) -> "Span":
        parent = current_span()
        if parent is not None:
            self.path = f"{parent.path}.{self.name}"
            self.depth = parent.depth + 1
        _STACK.spans.append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        started = self._started
        if started is None:  # pragma: no cover - __exit__ without __enter__
            return
        elapsed = time.perf_counter() - started
        self.elapsed = elapsed
        stack = _STACK.spans
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - misuse guard (overlapping exits)
            try:
                stack.remove(self)
            except ValueError:
                pass
        self.registry.histogram(
            f"{STAGE_METRIC_PREFIX}{self.name}.seconds", DEFAULT_TIME_BUCKETS
        ).observe(elapsed)
        self.registry.counter(f"{STAGE_METRIC_PREFIX}{self.name}.calls").inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.elapsed:.6f}s" if self.elapsed is not None else "open"
        return f"Span({self.path!r}, {state})"


@contextmanager
def trace(
    name: str, registry: MetricsRegistry | None = None
) -> Iterator[Span]:
    """Time the enclosed block as stage ``name``.

    Args:
        name: Stage name; becomes ``stage.<name>.seconds`` /
            ``stage.<name>.calls`` in the registry.
        registry: Destination registry (default: the process-global one).

    Yields:
        The open :class:`Span` (its ``elapsed`` fills in at exit).

    The stage is recorded even when the block raises, so failed runs
    still show where the time went.
    """
    span = Span(name, registry)
    with span:
        yield span
