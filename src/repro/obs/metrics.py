"""In-process metrics: counters, gauges, and fixed-bucket histograms.

The detection pipeline is meant to run continuously against live
resolver traffic (ROADMAP north star), which makes "where does the time
go / how much data flowed" a first-class question. This module provides
the minimal metric primitives an operator needs, kept deliberately
dependency-free and cheap enough to leave enabled in production:

* :class:`Counter` — monotonically increasing totals (records ingested,
  edges sampled);
* :class:`Gauge` — last-written values (current graph sizes, rates);
* :class:`Histogram` — fixed-bucket distributions with percentile
  estimates (stage latencies, refresh times);
* :class:`MetricsRegistry` — a thread-safe, named collection of the
  above with a single :meth:`~MetricsRegistry.snapshot` export point.

A process-global registry (:func:`default_registry`) is what the
instrumented pipeline code records into; tests and embedders can pass
their own registry anywhere one is accepted.

Every mutation takes a per-metric lock, so concurrent ingest threads can
share one registry. Updates are O(1) (histograms do a bisect over ~20
bucket bounds); a counter increment costs well under a microsecond.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Callable, Iterable, Mapping, TypeVar

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "default_registry",
]


class Counter:
    """A monotonically increasing count.

    Counters only go up — negative increments raise ``ValueError`` so a
    miscomputed delta fails loudly instead of silently corrupting
    totals.
    """

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        """Plain-dict form used by :mod:`repro.obs.export`."""
        return {"value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (graph size, rate, temperature)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Last written value."""
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        """Plain-dict form used by :mod:`repro.obs.export`."""
        return {"value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


# Geometric bounds from 100 microseconds to 2 minutes: pipeline stages on
# a tiny trace land near the bottom, LINE on a paper-scale trace near the
# top. The final +inf bucket catches anything slower.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 120.0,
)


class Histogram:
    """A fixed-bucket histogram with percentile summaries.

    Observations are assigned to the first bucket whose upper bound is
    >= the value; values beyond the last bound land in an implicit
    +inf overflow bucket. Alongside the bucket counts the histogram
    tracks exact ``count``/``sum``/``min``/``max``, so means and totals
    are exact and only the percentiles are bucket-resolution estimates.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(
        self, name: str, buckets: Iterable[float] | None = None
    ) -> None:
        self.name = name
        bounds = (
            DEFAULT_TIME_BUCKETS if buckets is None else tuple(sorted(buckets))
        )
        if not bounds:
            raise ValueError(f"histogram {self.name!r}: needs >= 1 bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {self.name!r}: duplicate bucket bounds")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # trailing +inf bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        """Exact mean of observations (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        with self._lock:
            return self._max if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        Linear interpolation within the containing bucket; the overflow
        bucket reports the exact observed maximum. Accuracy is bounded
        by bucket width, which is plenty for latency reporting.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q / 100.0 * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if index == len(self.bounds):  # overflow bucket
                        return self._max
                    lower = self.bounds[index - 1] if index else 0.0
                    upper = self.bounds[index]
                    # Fraction of this bucket's mass below the target rank.
                    into = (rank - (cumulative - bucket_count)) / bucket_count
                    estimate = lower + (upper - lower) * max(0.0, min(1.0, into))
                    # Exact extremes beat bucket interpolation at the tails.
                    return max(self._min, min(estimate, self._max))
            return self._max

    def snapshot(self) -> dict:
        """Plain-dict form used by :mod:`repro.obs.export`."""
        with self._lock:
            counts = list(self._counts)
            count = self._count
            total = self._sum
            low = self._min if count else 0.0
            high = self._max if count else 0.0
        return {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "mean": total / count if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": {
                **{f"le_{bound:g}": counts[i] for i, bound in enumerate(self.bounds)},
                "le_inf": counts[-1],
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


_MetricT = TypeVar("_MetricT", "Counter", "Gauge", "Histogram")


class MetricsRegistry:
    """A named, thread-safe collection of metrics.

    Metrics are created on first access and returned on subsequent
    accesses (``registry.counter("x")`` is idempotent); asking for an
    existing name as a different metric type raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(
        self,
        name: str,
        kind: type[_MetricT],
        factory: Callable[[], _MetricT],
    ) -> _MetricT:
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create the :class:`Counter` called ``name``."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the :class:`Gauge` called ``name``."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None
    ) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``.

        ``buckets`` only applies on first creation; later calls return
        the existing histogram unchanged.
        """
        return self._get_or_create(name, Histogram, lambda: Histogram(name, buckets))

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The metric called ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        """Sorted names of all registered metrics."""
        with self._lock:
            return sorted(self._metrics)

    def items(self) -> list[tuple[str, Counter | Gauge | Histogram]]:
        """(name, metric) pairs in registration order.

        Registration order is execution order for traced stages, which
        is what the timing table wants; JSON snapshots re-sort by name.
        """
        with self._lock:
            return list(self._metrics.items())

    def reset(self) -> None:
        """Drop every metric (fresh start; used between CLI runs/tests)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> Mapping[str, dict]:
        """See :func:`repro.obs.export.snapshot_to_dict` for the schema."""
        from repro.obs.export import snapshot_to_dict

        return snapshot_to_dict(self)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry the pipeline instrumentation uses."""
    return _DEFAULT_REGISTRY
