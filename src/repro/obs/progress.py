"""Progress callbacks for long-running training loops.

LINE training at paper scale draws tens of millions of edge samples and
can run for minutes per view; the embedder reports progress through the
tiny :class:`ProgressCallback` protocol instead of printing. Callers
pick what happens: log it (:class:`LoggingProgress`), track it as
metrics (:class:`MetricsProgress`), fan out to several sinks
(:class:`FanoutProgress`), or ignore it (pass ``None`` — the loops skip
all progress bookkeeping entirely, including loss computation, so the
disabled path costs nothing).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.obs.logging import StructuredLogger, get_logger
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = [
    "ProgressCallback",
    "LoggingProgress",
    "MetricsProgress",
    "FanoutProgress",
]


@runtime_checkable
class ProgressCallback(Protocol):
    """Anything with ``on_epoch(epoch, total, loss)``.

    ``epoch`` is 1-based, ``total`` is the number of reports the loop
    will make, and ``loss`` is the mean objective over the samples since
    the previous report (semantics defined by each training loop).
    """

    def on_epoch(self, epoch: int, total: int, loss: float) -> None:
        """Handle one progress report."""
        ...  # pragma: no cover - protocol body


class LoggingProgress:
    """Logs each report as a structured ``epoch`` event."""

    __slots__ = ("_log", "_label")

    def __init__(
        self, label: str, logger: StructuredLogger | None = None
    ) -> None:
        self._label = label
        self._log = logger if logger is not None else get_logger("obs.progress")

    def on_epoch(self, epoch: int, total: int, loss: float) -> None:
        """Log one progress report at INFO."""
        self._log.info(
            "epoch", task=self._label, epoch=epoch, total=total, loss=loss
        )


class MetricsProgress:
    """Mirrors the latest report into ``<prefix>.epoch`` / ``<prefix>.loss``."""

    __slots__ = ("_prefix", "_registry")

    def __init__(
        self, prefix: str, registry: MetricsRegistry | None = None
    ) -> None:
        self._prefix = prefix
        self._registry = registry if registry is not None else default_registry()

    def on_epoch(self, epoch: int, total: int, loss: float) -> None:
        """Record the report as gauges and bump the epoch counter."""
        self._registry.gauge(f"{self._prefix}.epoch").set(epoch)
        self._registry.gauge(f"{self._prefix}.loss").set(loss)
        self._registry.counter(f"{self._prefix}.epochs_done").inc()


class FanoutProgress:
    """Forwards each report to every callback in order."""

    __slots__ = ("_callbacks",)

    def __init__(self, *callbacks: ProgressCallback) -> None:
        self._callbacks = callbacks

    def on_epoch(self, epoch: int, total: int, loss: float) -> None:
        """Forward one report to every sink."""
        for callback in self._callbacks:
            callback.on_epoch(epoch, total, loss)
