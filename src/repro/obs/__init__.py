"""repro.obs — observability for the detection pipeline.

Structured logging, in-process metrics, and stage tracing, with zero
dependencies beyond the standard library. The pipeline, streaming mode,
embedder, simulator, and CLI all record into the process-global
:func:`default_registry`; :mod:`repro.obs.export` turns it into a JSON
snapshot or a per-stage timing table.

Quick tour::

    from repro import obs

    obs.configure(verbosity=1)            # logfmt lines on stderr
    log = obs.get_logger(__name__)
    log.info("run_started", tracedir="campus/")

    with obs.trace("embedding"):          # -> stage.embedding.seconds
        ...

    obs.default_registry().counter("records").inc(4096)
    print(obs.render_timing_table(obs.default_registry()))

See ``docs/observability.md`` for the full API and the CLI flags
(``-v``, ``--metrics-out``) built on top of it.
"""

from repro.obs.export import (
    load_snapshot,
    render_timing_table,
    snapshot_to_dict,
    write_snapshot,
)
from repro.obs.logging import StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.progress import (
    FanoutProgress,
    LoggingProgress,
    MetricsProgress,
    ProgressCallback,
)
from repro.obs.tracing import Span, current_span, trace

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "FanoutProgress",
    "Gauge",
    "Histogram",
    "LoggingProgress",
    "MetricsProgress",
    "MetricsRegistry",
    "ProgressCallback",
    "Span",
    "StructuredLogger",
    "configure",
    "current_span",
    "default_registry",
    "get_logger",
    "load_snapshot",
    "render_timing_table",
    "snapshot_to_dict",
    "trace",
    "write_snapshot",
]
