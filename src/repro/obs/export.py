"""Registry export: JSON snapshots and the human-readable timing table.

Two consumers, two formats:

* machines get :func:`snapshot_to_dict` / :func:`write_snapshot` — a
  schema-versioned plain dict with every counter, gauge, and histogram,
  suitable for diffing across runs or shipping to a collector;
* humans get :func:`render_timing_table` — the per-stage wall-time
  table the CLI prints after ``detect`` / ``cluster``, built from the
  ``stage.*`` metrics that :func:`repro.obs.tracing.trace` records.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import STAGE_METRIC_PREFIX

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "snapshot_to_dict",
    "write_snapshot",
    "load_snapshot",
    "render_timing_table",
]

SNAPSHOT_SCHEMA_VERSION = 1


def snapshot_to_dict(registry: MetricsRegistry) -> dict:
    """Freeze ``registry`` into a JSON-serializable dict.

    Schema::

        {"schema_version": 1,
         "counters":   {name: {"value": ...}},
         "gauges":     {name: {"value": ...}},
         "histograms": {name: {"count": ..., "sum": ..., "mean": ...,
                               "min": ..., "max": ..., "p50": ...,
                               "p95": ..., "p99": ..., "buckets": {...}}}}
    """
    counters: dict[str, dict] = {}
    gauges: dict[str, dict] = {}
    histograms: dict[str, dict] = {}
    for name, metric in registry.items():
        if isinstance(metric, Counter):
            counters[name] = metric.snapshot()
        elif isinstance(metric, Gauge):
            gauges[name] = metric.snapshot()
        elif isinstance(metric, Histogram):
            histograms[name] = metric.snapshot()
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def write_snapshot(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the registry snapshot to ``path`` as indented JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(snapshot_to_dict(registry), indent=2, sort_keys=True)
    path.write_text(payload + "\n", encoding="utf-8")
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot previously written by :func:`write_snapshot`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _format_seconds(value: float) -> str:
    if value >= 100.0:
        return f"{value:.0f}s"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000.0:.1f}ms"


def render_timing_table(registry: MetricsRegistry) -> str:
    """The per-stage timing table for every traced stage in ``registry``.

    Stages appear in first-recorded order (execution order; nested spans
    close before their parent) with call counts, totals, and latency
    percentiles. Returns a one-line placeholder when nothing was traced,
    so callers can print unconditionally.
    """
    suffix = ".seconds"
    rows: list[tuple[str, ...]] = []
    for name, metric in registry.items():
        if not isinstance(metric, Histogram):
            continue
        if not name.startswith(STAGE_METRIC_PREFIX) or not name.endswith(suffix):
            continue
        stage = name[len(STAGE_METRIC_PREFIX) : -len(suffix)]
        rows.append(
            (
                stage,
                str(metric.count),
                _format_seconds(metric.sum),
                _format_seconds(metric.mean),
                _format_seconds(metric.percentile(50)),
                _format_seconds(metric.percentile(95)),
                _format_seconds(metric.max),
            )
        )
    if not rows:
        return "(no stages traced)"
    header = ("stage", "calls", "total", "mean", "p50", "p95", "max")
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows))
        for col in range(len(header))
    ]

    def _line(cells: tuple[str, ...]) -> str:
        left = cells[0].ljust(widths[0])
        rest = "  ".join(
            cell.rjust(widths[col + 1]) for col, cell in enumerate(cells[1:])
        )
        return f"{left}  {rest}".rstrip()

    separator = "  ".join("-" * width for width in widths)
    return "\n".join([_line(header), separator, *(_line(row) for row in rows)])
