"""Structured logging: logfmt-style ``key=value`` lines over stdlib logging.

The pipeline logs *events with fields*, not prose — ``event=graphs_built
domains=913 edges=177041`` — so the output stays grep-able and trivially
machine-parseable (the same philosophy as the repo's own ``dns.log``
format; see :mod:`repro.dns.logfmt`).

Two entry points:

* :func:`get_logger` — module-level structured logger, namespaced under
  the ``repro`` root so applications embedding this package can route or
  silence it wholesale;
* :func:`configure` — opt-in console setup used by the CLI's
  ``-v/--verbose`` flag. Libraries must not configure logging on import,
  and nothing here does: without :func:`configure` the ``repro`` logger
  stays a silent no-op under stdlib default handling.

Log calls are guarded by ``isEnabledFor``, so a disabled level costs one
attribute lookup and an integer compare — cheap enough to leave DEBUG
logging statements in hot-adjacent paths.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, TextIO

__all__ = ["configure", "get_logger", "StructuredLogger", "format_fields"]

ROOT_LOGGER_NAME = "repro"

# Marker so configure() can find and replace its own handler (idempotent
# reconfiguration instead of stacking duplicate handlers).
_HANDLER_TAG = "_repro_obs_handler"


def _quote(value: Any) -> str:
    """Render one logfmt value; quote when it contains spaces/equals."""
    if isinstance(value, float):
        text = f"{value:.6g}"
    elif isinstance(value, bool):
        text = "true" if value else "false"
    else:
        text = str(value)
    if any(ch in text for ch in (" ", "=", '"')) or text == "":
        return '"' + text.replace('"', '\\"') + '"'
    return text


def format_fields(event: str, fields: dict[str, Any]) -> str:
    """One logfmt line body: ``event=<event> k1=v1 k2=v2 ...``."""
    parts = [f"event={_quote(event)}"]
    parts.extend(f"{key}={_quote(value)}" for key, value in fields.items())
    return " ".join(parts)


class StructuredLogger:
    """Thin key=value front-end over a stdlib :class:`logging.Logger`.

    Usage::

        log = get_logger(__name__)
        log.info("refresh_done", domains=1234, seconds=2.71)

    ``bind()`` returns a child logger with fields attached to every
    line, for per-run context like a trace directory or worker id.
    """

    __slots__ = ("_logger", "_bound")

    def __init__(
        self, logger: logging.Logger, bound: dict[str, Any] | None = None
    ) -> None:
        self._logger = logger
        self._bound = bound or {}

    @property
    def name(self) -> str:
        """Underlying stdlib logger name."""
        return self._logger.name

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A logger that adds ``fields`` to every subsequent line."""
        return StructuredLogger(self._logger, {**self._bound, **fields})

    def is_enabled_for(self, level: int) -> bool:
        """Whether a record at ``level`` would actually be emitted."""
        return self._logger.isEnabledFor(level)

    def _log(self, level: int, event: str, fields: dict[str, Any]) -> None:
        if self._logger.isEnabledFor(level):
            merged = {**self._bound, **fields} if self._bound else fields
            self._logger.log(level, format_fields(event, merged))

    def debug(self, event: str, **fields: Any) -> None:
        """Emit ``event`` with ``fields`` at DEBUG."""
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        """Emit ``event`` with ``fields`` at INFO."""
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        """Emit ``event`` with ``fields`` at WARNING."""
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        """Emit ``event`` with ``fields`` at ERROR."""
        self._log(logging.ERROR, event, fields)


class LogfmtFormatter(logging.Formatter):
    """Prefixes every line with ``ts=<epoch> level=<level> logger=<name>``."""

    def format(self, record: logging.LogRecord) -> str:
        prefix = (
            f"ts={record.created:.3f} level={record.levelname.lower()} "
            f"logger={record.name}"
        )
        line = f"{prefix} {record.getMessage()}"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def get_logger(name: str) -> StructuredLogger:
    """The structured logger for module ``name``.

    Names are rooted under ``repro`` (``get_logger("core.pipeline")`` and
    ``get_logger("repro.core.pipeline")`` are the same logger), so one
    :func:`configure` call governs the whole package.
    """
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return StructuredLogger(logging.getLogger(name))


def configure(
    verbosity: int = 0, stream: TextIO | None = None
) -> logging.Logger:
    """Route ``repro.*`` logs to ``stream`` (default stderr) as logfmt.

    Args:
        verbosity: 0 = WARNING, 1 = INFO, >= 2 = DEBUG — matched to the
            CLI's ``-v`` / ``-vv``.
        stream: Destination text stream.

    Returns:
        The configured ``repro`` root logger.

    Calling again replaces the previous configuration (handler and
    level), so repeated CLI invocations in one process don't stack
    duplicate handlers.
    """
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO if verbosity == 1 else logging.DEBUG
    )
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(LogfmtFormatter())
    setattr(handler, _HANDLER_TAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    # Don't double-print through the stdlib root logger.
    root.propagate = False
    return root
