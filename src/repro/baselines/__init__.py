"""Baseline detectors.

Exposure (Bilge et al.) is the paper's section 8.2 comparison; the
belief-propagation graph-inference detector covers the related-work
graph-based category (section 9, Manadhata et al.).
"""

from repro.baselines.exposure import (
    ExposureClassifier,
    ExposureFeatureExtractor,
    ExposureFeatures,
)
from repro.baselines.graph_inference import (
    BeliefPropagationConfig,
    GraphInferenceDetector,
)

__all__ = [
    "BeliefPropagationConfig",
    "ExposureClassifier",
    "ExposureFeatureExtractor",
    "ExposureFeatures",
    "GraphInferenceDetector",
]
