"""Exposure baseline (Bilge et al., TISSEC 2014; paper section 8.2).

Exposure detects malicious domains from passive DNS with a J48 decision
tree over four statistical feature groups:

* **time-based** — short life, daily similarity, regularly repeating
  patterns, access ratios;
* **DNS answer-based** — number of distinct IPs, number of distinct
  address prefixes ("countries" in the original), reverse-DNS style
  sharing: how many other domains the answers are shared with;
* **TTL-based** — average/std-dev of TTL, number of distinct TTL values,
  fraction of low-TTL answers;
* **lexical** — ratio of numerical characters, length of the longest
  meaningful substring (LMS), name length.

The paper reimplements these features on its own traffic and trains a J48
tree, reporting AUC 0.88 vs 0.94 for the embedding approach. This module
does the same over our trace records and
:class:`repro.ml.tree.DecisionTreeClassifier`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.dns.names import is_valid_domain_name
from repro.dns.psl import PublicSuffixList, default_psl
from repro.dns.types import DnsQuery, DnsResponse
from repro.errors import DatasetError, DomainNameError
from repro.ml.tree import DecisionTreeClassifier

SECONDS_PER_DAY = 86_400.0

# The feature set follows Bilge et al.'s four groups. "Reverse DNS query
# results" is omitted: the trace substrate carries no PTR zone data, and
# the paper's reimplementation (section 8.2) works from the same passive
# logs we have. "Repeating patterns" is realized as the coefficient of
# variation of daily query counts, "access ratio" as the fraction of
# capture days the domain was queried on.
FEATURE_NAMES: tuple[str, ...] = (
    # Time-based (Exposure features 1-4).
    "short_life",
    "daily_similarity",
    "repeating_patterns",
    "access_ratio",
    # DNS answer-based (features 5-7; reverse DNS omitted, see above).
    "distinct_ip_count",
    "distinct_prefix_count",
    "shared_ip_domain_count",
    # TTL-based (features 9-13).
    "ttl_mean",
    "ttl_stddev",
    "distinct_ttl_count",
    "ttl_change_count",
    "low_ttl_fraction",
    # Lexical (features 14-15).
    "numerical_ratio",
    "longest_meaningful_substring",
)

# Word list used for the LMS feature (Exposure uses an English dictionary;
# we embed a compact one plus the stems our benign generator uses).
_MEANINGFUL_WORDS = frozenset(
    """
    able acid aged also area army away baby back ball band bank base bath
    bear beat bell belt bird blow blue boat body bone book born both bowl
    bulk burn bush call calm came camp card care case cash cast cell chat
    chip city club coal coat code cold come cook cool cope copy core cost
    crew crop dark data date dawn days dead deal dear debt deep deny desk
    dial diet disc disk does done door dose down draw drew drop drug dual
    duke dust duty each earn ease east easy edge else even ever evil exit
    face fact fail fair fall farm fast fate fear feed feel feet fell felt
    file fill film find fine fire firm fish five flat flow food foot ford
    form fort four free from fuel full fund gain game gate gave gear gift
    girl give glad goal goes gold golf gone good gray grew grey grow gulf
    hair half hall hand hang hard harm hate have head hear heat held hell
    help mail news shop blog wiki labs base zone works press media forum
    cloud tech store campus river stone maple cedar summit harbor lantern
    meadow orchid pioneer quartz raven sierra timber violet willow zephyr
    aurora beacon canyon delta ember falcon garnet horizon indigo juniper
    kestrel lagoon mosaic nimbus onyx prairie quill ridge sparrow tundra
    umber vertex wander xenon yonder zenith anchor breeze cobalt drift
    echo flint grove haven isle jade lumen mist metrics track static api
    pixel secure account verify login billing support wallet bank pay
    auth portal update sync status report gate panel node relay proxy
    profit turmeric canvas solar flight permit detect cure wood belly
    ankle nano cook liver fatty easy best nice clean google mail www web
    """.split()
)


@dataclass(slots=True)
class ExposureFeatures:
    """Feature matrix aligned with a domain list."""

    domains: list[str]
    matrix: np.ndarray

    def __post_init__(self) -> None:
        if self.matrix.shape != (len(self.domains), len(FEATURE_NAMES)):
            raise DatasetError(
                f"feature matrix shape {self.matrix.shape} does not match "
                f"{len(self.domains)} domains x {len(FEATURE_NAMES)} features"
            )

    def rows_for(self, domains: Sequence[str]) -> np.ndarray:
        index = {domain: i for i, domain in enumerate(self.domains)}
        missing = [d for d in domains if d not in index]
        if missing:
            raise DatasetError(
                f"{len(missing)} domains lack Exposure features, e.g. {missing[:3]}"
            )
        return self.matrix[[index[d] for d in domains]]


def _longest_meaningful_substring(label: str) -> int:
    """Length of the longest dictionary word contained in ``label``."""
    best = 0
    n = len(label)
    for start in range(n):
        for end in range(start + best + 1, n + 1):
            if label[start:end] in _MEANINGFUL_WORDS:
                best = end - start
    return best


class ExposureFeatureExtractor:
    """Aggregates per-domain statistics from a DNS trace."""

    def __init__(
        self,
        time_window_days: float | None = None,
        low_ttl_threshold: int = 100,
        psl: PublicSuffixList | None = None,
    ) -> None:
        self.low_ttl_threshold = low_ttl_threshold
        self._psl = psl or default_psl()
        self._time_window_days = time_window_days

    def extract(
        self,
        queries: Iterable[DnsQuery],
        responses: Iterable[DnsResponse],
    ) -> ExposureFeatures:
        """Compute the four feature groups for every observed e2LD."""
        per_day_counts: dict[str, dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        hour_profiles: dict[str, np.ndarray] = {}
        query_counts: dict[str, int] = defaultdict(int)
        last_seen: dict[str, float] = {}
        first_seen: dict[str, float] = {}
        e2ld_cache: dict[str, str | None] = {}

        def to_e2ld(qname: str) -> str | None:
            cached = e2ld_cache.get(qname, "")
            if cached != "":
                return cached
            if not is_valid_domain_name(qname):
                e2ld_cache[qname] = None
                return None
            try:
                e2ld = self._psl.registered_domain(qname)
            except DomainNameError:
                e2ld = None
            e2ld_cache[qname] = e2ld
            return e2ld

        max_time = 0.0
        for query in queries:
            e2ld = to_e2ld(query.qname)
            if e2ld is None:
                continue
            day = int(query.timestamp // SECONDS_PER_DAY)
            per_day_counts[e2ld][day] += 1
            profile = hour_profiles.get(e2ld)
            if profile is None:
                profile = np.zeros(24)
                hour_profiles[e2ld] = profile
            profile[int(query.timestamp % SECONDS_PER_DAY // 3600) % 24] += 1
            query_counts[e2ld] += 1
            first_seen.setdefault(e2ld, query.timestamp)
            last_seen[e2ld] = max(last_seen.get(e2ld, 0.0), query.timestamp)
            max_time = max(max_time, query.timestamp)

        ips: dict[str, set[str]] = defaultdict(set)
        ttls: dict[str, list[int]] = defaultdict(list)
        ttl_changes: dict[str, int] = defaultdict(int)
        last_ttl: dict[str, int] = {}
        response_counts: dict[str, int] = defaultdict(int)
        for response in responses:
            e2ld = to_e2ld(response.qname)
            if e2ld is None:
                continue
            response_counts[e2ld] += 1
            if response.nxdomain:
                continue
            min_ttl = response.min_ttl
            if min_ttl is not None:
                previous = last_ttl.get(e2ld)
                if previous is not None and previous != min_ttl:
                    ttl_changes[e2ld] += 1
                last_ttl[e2ld] = min_ttl
            for record in response.answers:
                ttls[e2ld].append(record.ttl)
            for ip in response.resolved_ips:
                ips[e2ld].add(ip)

        # Inverted IP index for the sharing feature.
        domains_per_ip: dict[str, int] = defaultdict(int)
        for domain, ip_set in ips.items():
            for ip in ip_set:
                domains_per_ip[ip] += 1

        observed = sorted(set(query_counts) | set(response_counts))
        trace_days = (
            self._time_window_days
            if self._time_window_days is not None
            else max(max_time / SECONDS_PER_DAY, 1e-9)
        )
        matrix = np.zeros((len(observed), len(FEATURE_NAMES)))
        for row, domain in enumerate(observed):
            matrix[row] = self._feature_row(
                domain,
                per_day_counts[domain],
                hour_profiles.get(domain, np.zeros(24)),
                first_seen.get(domain, 0.0),
                last_seen.get(domain, 0.0),
                ips[domain],
                ttls[domain],
                ttl_changes[domain],
                domains_per_ip,
                trace_days,
            )
        self._impute_unresolved(observed, matrix, ips)
        return ExposureFeatures(domains=observed, matrix=matrix)

    @staticmethod
    def _impute_unresolved(
        observed: list[str],
        matrix: np.ndarray,
        ips: dict[str, set[str]],
    ) -> None:
        """Median-impute answer/TTL features for never-resolving domains.

        Exposure's answer- and TTL-based features are defined over
        *successful* resolutions; Bilge et al. scope their system to
        domains that resolve. Domains observed only through NXDOMAIN
        (unregistered DGA candidates) have no such measurements — leaving
        them at zero would hand the classifier an artificial
        "missing == malicious" shortcut the original system never had, so
        those cells get the median of the resolved population instead.
        """
        answer_ttl_columns = [
            FEATURE_NAMES.index(name)
            for name in (
                "distinct_ip_count",
                "distinct_prefix_count",
                "shared_ip_domain_count",
                "ttl_mean",
                "ttl_stddev",
                "distinct_ttl_count",
                "ttl_change_count",
                "low_ttl_fraction",
            )
        ]
        resolved_rows = np.array(
            [bool(ips[domain]) for domain in observed]
        )
        if not resolved_rows.any() or resolved_rows.all():
            return
        medians = np.median(
            matrix[np.ix_(resolved_rows, answer_ttl_columns)], axis=0
        )
        unresolved = np.flatnonzero(~resolved_rows)
        for column_position, column in enumerate(answer_ttl_columns):
            matrix[unresolved, column] = medians[column_position]

    def _feature_row(
        self,
        domain: str,
        day_counts: dict[int, int],
        hour_profile: np.ndarray,
        first: float,
        last: float,
        ip_set: set[str],
        ttl_list: list[int],
        ttl_change_count: int,
        domains_per_ip: dict[str, int],
        trace_days: float,
    ) -> np.ndarray:
        active_days = len(day_counts)
        lifetime_days = max((last - first) / SECONDS_PER_DAY, 0.0)
        counts = np.array(list(day_counts.values()), dtype=float)
        mean_daily = counts.mean() if counts.size else 0.0
        repeating = (
            float(counts.std() / mean_daily) if mean_daily > 0 else 0.0
        )
        # Daily similarity: overlap between the hour-of-day profile and a
        # flat profile — steady domains score high, campaign spikes low.
        total_hours = hour_profile.sum()
        if total_hours > 0:
            normalized = hour_profile / total_hours
            daily_similarity = float(
                1.0 - np.abs(normalized - 1.0 / 24).sum() / 2.0
            )
        else:
            daily_similarity = 0.0

        prefixes = {ip.rsplit(".", 2)[0] for ip in ip_set}
        shared = max((domains_per_ip[ip] - 1 for ip in ip_set), default=0)

        ttl_array = np.array(ttl_list, dtype=float)
        ttl_mean = float(ttl_array.mean()) if ttl_array.size else 0.0
        ttl_std = float(ttl_array.std()) if ttl_array.size else 0.0
        distinct_ttl = len(set(ttl_list))
        low_ttl_fraction = (
            float(np.mean(ttl_array < self.low_ttl_threshold))
            if ttl_array.size
            else 0.0
        )

        sld = domain.split(".")[0]
        digits = sum(ch.isdigit() for ch in domain)

        return np.array(
            [
                1.0 if lifetime_days < 0.2 * trace_days else 0.0,
                daily_similarity,
                repeating,
                active_days / max(trace_days, 1e-9),
                len(ip_set),
                len(prefixes),
                shared,
                ttl_mean,
                ttl_std,
                distinct_ttl,
                ttl_change_count,
                low_ttl_fraction,
                digits / max(len(domain), 1),
                _longest_meaningful_substring(sld),
            ]
        )


class ExposureClassifier:
    """J48 decision tree over Exposure features."""

    def __init__(
        self,
        min_samples_leaf: int = 2,
        confidence: float | None = 0.25,
        max_depth: int | None = None,
    ) -> None:
        self._tree = DecisionTreeClassifier(
            min_samples_leaf=min_samples_leaf,
            confidence=confidence,
            max_depth=max_depth,
        )

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "ExposureClassifier":
        self._tree.fit(features, labels)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._tree.predict(features)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self._tree.predict_proba(features)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Malicious-class probability, usable as a ranking score."""
        return self.predict_proba(features)[:, 1]

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        return self._tree.score(features, labels)

    @property
    def tree_node_count(self) -> int:
        return self._tree.node_count
