"""Graph-inference baseline: belief propagation on the host-domain graph.

The paper's related work (section 9) cites Manadhata et al. (ESORICS
2014), which labels domains by running loopy belief propagation over the
host-domain bipartite graph: seed-labeled domains inject evidence, and a
homophily edge potential ("hosts that talk to malicious domains tend to
talk to other malicious domains") spreads it.

This implementation follows that construction:

* binary states {benign, malicious} per vertex (hosts and domains);
* seed domains get strong priors, everything else a mild benign prior
  (the base rate of maliciousness);
* sum-product message passing with an epsilon-homophily propagation
  matrix, run for a fixed number of iterations or until convergence;
* the final malicious belief per domain is the ranking score.

It serves as the third comparison point alongside Exposure
(classification on statistics) and the paper's embedding approach.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphConstructionError
from repro.graphs.bipartite import BipartiteGraph

_STATES = 2  # 0 = benign, 1 = malicious


@dataclass(slots=True)
class BeliefPropagationConfig:
    """Inference knobs (defaults follow the ESORICS'14 setup)."""

    # Edge potential: probability that neighbors share a state.
    homophily: float = 0.51
    # Prior belief for seed-labeled malicious / benign domains.
    seed_confidence: float = 0.99
    # Prior malicious probability for unlabeled vertices (base rate).
    base_rate: float = 0.05
    max_iterations: int = 15
    tolerance: float = 1e-4

    def validate(self) -> None:
        if not 0.5 < self.homophily < 1.0:
            raise ValueError("homophily must lie in (0.5, 1.0)")
        if not 0.5 < self.seed_confidence < 1.0:
            raise ValueError("seed_confidence must lie in (0.5, 1.0)")
        if not 0.0 < self.base_rate < 1.0:
            raise ValueError("base_rate must lie in (0, 1)")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")


class GraphInferenceDetector:
    """Loopy BP over the host-domain graph, seeded with known labels."""

    def __init__(self, config: BeliefPropagationConfig | None = None) -> None:
        self.config = config or BeliefPropagationConfig()
        self.config.validate()
        self._beliefs: dict[str, float] | None = None
        self.iterations_: int | None = None

    def fit(
        self,
        host_domain: BipartiteGraph,
        seed_malicious: set[str],
        seed_benign: set[str],
    ) -> "GraphInferenceDetector":
        """Run inference; beliefs become available via :meth:`scores`."""
        if host_domain.domain_count == 0:
            raise GraphConstructionError("host-domain graph is empty")
        config = self.config

        domains = list(host_domain.adjacency)
        hosts = sorted(host_domain.right_vertices, key=repr)
        domain_index = {d: i for i, d in enumerate(domains)}
        host_index = {h: len(domains) + i for i, h in enumerate(hosts)}
        n = len(domains) + len(hosts)

        # Adjacency as edge lists (vertex pairs, each direction).
        edges: list[tuple[int, int]] = []
        for domain, neighbor_hosts in host_domain.adjacency.items():
            d = domain_index[domain]
            for host in neighbor_hosts:
                edges.append((d, host_index[host]))
        edge_array = np.array(edges, dtype=np.int64)

        # Priors phi(v).
        priors = np.tile(
            [1.0 - config.base_rate, config.base_rate], (n, 1)
        )
        for domain in seed_malicious:
            index = domain_index.get(domain)
            if index is not None:
                priors[index] = [1.0 - config.seed_confidence,
                                 config.seed_confidence]
        for domain in seed_benign:
            index = domain_index.get(domain)
            if index is not None:
                priors[index] = [config.seed_confidence,
                                 1.0 - config.seed_confidence]

        # Propagation matrix psi(s, t).
        psi = np.array(
            [
                [config.homophily, 1.0 - config.homophily],
                [1.0 - config.homophily, config.homophily],
            ]
        )

        # Messages m_{u->v}: one per directed edge, init uniform.
        directed = np.vstack([edge_array, edge_array[:, ::-1]])
        messages = np.full((directed.shape[0], _STATES), 0.5)
        # Index: for each vertex, which directed edges point *into* it.
        incoming: list[list[int]] = [[] for _ in range(n)]
        outgoing_reverse = np.empty(directed.shape[0], dtype=np.int64)
        edge_lookup = {
            (int(u), int(v)): i for i, (u, v) in enumerate(directed)
        }
        for i, (u, v) in enumerate(directed):
            incoming[int(v)].append(i)
            outgoing_reverse[i] = edge_lookup[(int(v), int(u))]

        iterations = 0
        for iterations in range(1, config.max_iterations + 1):
            # Belief aggregation: prod of incoming messages times prior.
            log_beliefs = np.log(np.maximum(priors, 1e-12)).copy()
            for v in range(n):
                for i in incoming[v]:
                    log_beliefs[v] += np.log(np.maximum(messages[i], 1e-12))

            # New message u->v excludes v's own contribution
            # (divide out the reverse message), then applies psi.
            new_messages = np.empty_like(messages)
            for i, (u, v) in enumerate(directed):
                contribution = log_beliefs[int(u)] - np.log(
                    np.maximum(messages[outgoing_reverse[i]], 1e-12)
                )
                stabilized = np.exp(contribution - contribution.max())
                outgoing = stabilized @ psi
                new_messages[i] = outgoing / outgoing.sum()
            delta = float(np.abs(new_messages - messages).max())
            messages = new_messages
            if delta < config.tolerance:
                break

        log_beliefs = np.log(np.maximum(priors, 1e-12)).copy()
        for v in range(n):
            for i in incoming[v]:
                log_beliefs[v] += np.log(np.maximum(messages[i], 1e-12))
        stabilized = np.exp(
            log_beliefs - log_beliefs.max(axis=1, keepdims=True)
        )
        normalized = stabilized / stabilized.sum(axis=1, keepdims=True)

        self._beliefs = {
            domain: float(normalized[domain_index[domain], 1])
            for domain in domains
        }
        self.iterations_ = iterations
        return self

    def scores(self, domains: list[str]) -> np.ndarray:
        """Malicious beliefs for ``domains`` (base rate when unseen)."""
        if self._beliefs is None:
            raise GraphConstructionError("call fit() before scores()")
        return np.array(
            [self._beliefs.get(d, self.config.base_rate) for d in domains]
        )
