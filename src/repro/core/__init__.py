"""The paper's core contribution: behavioral modeling + graph embedding +
SVM classification + cluster mining, wired end-to-end.

Execution is organised as a typed stage graph (:mod:`repro.core.stages`)
over the canonical detection dataflow (:mod:`repro.core.dataflow`); the
batch facade (:class:`MaliciousDomainDetector`), the streaming layer
(:class:`StreamingDetector`), and the checkpointed runner in
:mod:`repro.ingest` all execute the same stage objects under different
policies.
"""

from repro.core.features import FeatureSpace, FeatureView
from repro.core.detector import MaliciousDomainClassifier
from repro.core.clustering import (
    ClusterReport,
    DomainCluster,
    DomainClusterer,
    expand_from_seeds,
)
from repro.core.dataflow import (
    PIPELINE_STAGES,
    detection_graph,
    detection_stages,
    pipeline_fingerprint,
)
from repro.core.pipeline import MaliciousDomainDetector, PipelineConfig
from repro.core.stages import (
    ArtifactKey,
    ArtifactStore,
    BatchPolicy,
    CheckpointPolicy,
    ExecutionContext,
    IncrementalPolicy,
    RunReport,
    Stage,
    StageGraph,
)
from repro.core.streaming import IncrementalGraphBuilder, StreamingDetector
from repro.core.persistence import (
    load_bipartite_graph,
    load_classifier,
    load_embedding,
    load_feature_space,
    load_scaler,
    load_similarity_graph,
    save_bipartite_graph,
    save_classifier,
    save_embedding,
    save_feature_space,
    save_scaler,
    save_similarity_graph,
)

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "BatchPolicy",
    "CheckpointPolicy",
    "ExecutionContext",
    "IncrementalGraphBuilder",
    "IncrementalPolicy",
    "PIPELINE_STAGES",
    "RunReport",
    "Stage",
    "StageGraph",
    "StreamingDetector",
    "detection_graph",
    "detection_stages",
    "load_bipartite_graph",
    "load_classifier",
    "load_embedding",
    "load_feature_space",
    "load_scaler",
    "load_similarity_graph",
    "pipeline_fingerprint",
    "save_bipartite_graph",
    "save_classifier",
    "save_embedding",
    "save_feature_space",
    "save_scaler",
    "save_similarity_graph",
    "ClusterReport",
    "DomainCluster",
    "DomainClusterer",
    "FeatureSpace",
    "FeatureView",
    "MaliciousDomainClassifier",
    "MaliciousDomainDetector",
    "PipelineConfig",
    "expand_from_seeds",
]
