"""The paper's core contribution: behavioral modeling + graph embedding +
SVM classification + cluster mining, wired end-to-end.
"""

from repro.core.features import FeatureSpace, FeatureView
from repro.core.detector import MaliciousDomainClassifier
from repro.core.clustering import (
    ClusterReport,
    DomainCluster,
    DomainClusterer,
    expand_from_seeds,
)
from repro.core.pipeline import MaliciousDomainDetector, PipelineConfig
from repro.core.streaming import IncrementalGraphBuilder, StreamingDetector
from repro.core.persistence import (
    load_bipartite_graph,
    load_classifier,
    load_embedding,
    load_feature_space,
    load_scaler,
    load_similarity_graph,
    save_bipartite_graph,
    save_classifier,
    save_embedding,
    save_feature_space,
    save_scaler,
    save_similarity_graph,
)

__all__ = [
    "IncrementalGraphBuilder",
    "StreamingDetector",
    "load_bipartite_graph",
    "load_classifier",
    "load_embedding",
    "load_feature_space",
    "load_scaler",
    "load_similarity_graph",
    "save_bipartite_graph",
    "save_classifier",
    "save_embedding",
    "save_feature_space",
    "save_scaler",
    "save_similarity_graph",
    "ClusterReport",
    "DomainCluster",
    "DomainClusterer",
    "FeatureSpace",
    "FeatureView",
    "MaliciousDomainClassifier",
    "MaliciousDomainDetector",
    "PipelineConfig",
    "expand_from_seeds",
]
