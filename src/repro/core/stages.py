"""Typed stage-graph engine: one substrate for all execution modes.

The paper's system is a single fixed dataflow (graphs -> pruning ->
projection -> embedding -> classification -> clustering), but the repo
grew three hand-rolled copies of it: the batch detector, the streaming
refresh, and the checkpointed out-of-core runner. This module is the
substrate they all run on now:

* an :class:`ArtifactKey` names one typed intermediate product (a graph
  triple, a feature space, a score vector);
* an :class:`ArtifactStore` holds the products of a run, keyed by name —
  the in-memory twin of a checkpoint directory;
* a :class:`Stage` declares which artifacts it consumes and produces,
  computes in :meth:`Stage.run`, and (optionally) knows how to persist
  and restore its outputs as a stage checkpoint;
* a :class:`StageGraph` validates the DAG statically — every input must
  be produced by an earlier stage or declared initial — and executes it
  under a pluggable policy.

Three policies cover the repo's execution modes:

* :class:`BatchPolicy` — run every (selected) stage in memory, in order;
* :class:`IncrementalPolicy` — fold semantics: skip stages whose outputs
  are already in the store, recompute the rest (streaming refresh);
* :class:`CheckpointPolicy` — restore each stage from its checkpoint
  when possible, otherwise run it and save one; a complete checkpoint of
  a superseding stage (pruned graphs supersede raw ones) skips earlier
  stages entirely.

Every stage executes under one canonical tracing span,
``pipeline.<stage>`` (see :func:`span_name`), so the metrics registry
reports ``stage.pipeline.<stage>.seconds`` identically from the batch,
streaming, and checkpointed paths. The engine knows checkpointing only
through the :class:`CheckpointBackend` protocol, so ``repro.core`` never
imports ``repro.ingest``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Collection,
    Generic,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
    TypeVar,
)

from repro.errors import StageGraphError
from repro.obs.logging import get_logger
from repro.obs.progress import ProgressCallback
from repro.obs.tracing import trace

__all__ = [
    "PIPELINE_SPAN_PREFIX",
    "ArtifactKey",
    "ArtifactStore",
    "BatchPolicy",
    "CheckpointBackend",
    "CheckpointManifest",
    "CheckpointPolicy",
    "ExecutionContext",
    "ExecutionPolicy",
    "IncrementalPolicy",
    "RunReport",
    "Stage",
    "StageGraph",
    "StageInfo",
    "span_name",
]

_log = get_logger(__name__)

#: Prefix of the canonical per-stage tracing span. A stage named
#: ``"embed"`` runs under the span ``pipeline.embed`` and therefore
#: reports ``stage.pipeline.embed.seconds`` / ``.calls`` in the metrics
#: registry — identically from every execution path.
PIPELINE_SPAN_PREFIX = "pipeline."

T = TypeVar("T")
I = TypeVar("I")
O = TypeVar("O")


def span_name(stage: str) -> str:
    """Canonical tracing-span name for one pipeline stage."""
    return PIPELINE_SPAN_PREFIX + stage


class ArtifactKey(Generic[T]):
    """Typed name of one intermediate product in an :class:`ArtifactStore`.

    The type parameter documents (and, under mypy, enforces) what a
    stage reads and writes: ``store.get(FEATURE_SPACE)`` is a
    :class:`~repro.core.features.FeatureSpace`, not ``Any``. Keys
    compare by name, so re-declaring a key is harmless.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"ArtifactKey({self.name!r})"

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArtifactKey) and other.name == self.name


class ArtifactStore:
    """The typed artifacts of one pipeline run, keyed by name.

    This is the in-memory twin of a checkpoint directory: every stage
    reads its declared inputs from here and writes its outputs back,
    and the checkpoint policy moves the same payloads to and from disk.
    """

    def __init__(self) -> None:
        self._artifacts: dict[str, object] = {}

    def put(self, key: ArtifactKey[T], value: T) -> T:
        """Store ``value`` under ``key``; returns ``value``."""
        self._artifacts[key.name] = value
        return value

    def get(self, key: ArtifactKey[T]) -> T:
        """The artifact under ``key``; raises if it was never produced."""
        try:
            return self._artifacts[key.name]  # type: ignore[return-value]
        except KeyError:
            raise StageGraphError(
                f"artifact {key.name!r} has not been produced yet"
            ) from None

    def maybe(self, key: ArtifactKey[T]) -> T | None:
        """The artifact under ``key``, or ``None`` when absent."""
        return self._artifacts.get(key.name)  # type: ignore[return-value]

    def has(self, key: ArtifactKey[T]) -> bool:
        return key.name in self._artifacts

    def discard(self, key: ArtifactKey[T]) -> None:
        """Drop the artifact under ``key`` if present."""
        self._artifacts.pop(key.name, None)

    def names(self) -> tuple[str, ...]:
        """Names of every artifact currently in the store."""
        return tuple(self._artifacts)

    def __contains__(self, key: ArtifactKey[Any]) -> bool:
        return self.has(key)

    def __len__(self) -> int:
        return len(self._artifacts)


class CheckpointManifest(Protocol):
    """What the engine needs of a stage-checkpoint manifest."""

    complete: bool
    meta: dict


class CheckpointBackend(Protocol):
    """Structural view of :class:`repro.ingest.PipelineCheckpointer`.

    The engine talks to checkpointing exclusively through this protocol
    so that ``repro.core`` never imports ``repro.ingest`` (the import
    runs the other way).
    """

    def has(self, stage: str) -> bool: ...

    def verify(self, stage: str) -> tuple[Path, Any]: ...

    def save(
        self,
        stage: str,
        populate: Callable[[Path], None],
        meta: Mapping[str, object] | None = None,
        *,
        complete: bool = True,
    ) -> Path: ...

    def invalidate_after(self, stage: str) -> None: ...


@dataclass(slots=True)
class ExecutionContext:
    """Per-run context threaded through every stage.

    Attributes:
        checkpointer: Stage-checkpoint backend, when the run persists
            (or restores) checkpoints; ``None`` for purely in-memory
            runs.
        resume: Whether existing checkpoints may be restored.
        progress: Optional progress callback forwarded to long-running
            stages (the embedding stage reports through it).
    """

    checkpointer: CheckpointBackend | None = None
    resume: bool = False
    progress: ProgressCallback | None = None


class Stage(Generic[I, O], abc.ABC):
    """One pipeline stage: declared inputs/outputs plus a compute step.

    The type parameters document the stage's primary input and output
    payloads (e.g. ``Stage[GraphTriple, GraphTriple]`` for pruning); the
    authoritative dataflow contract is the ``inputs`` / ``outputs`` key
    tuples, which :class:`StageGraph` validates statically.

    Attributes:
        name: Canonical stage name; also its checkpoint-directory name
            and tracing-span suffix.
        inputs: Artifact keys the stage reads from the store.
        outputs: Artifact keys the stage writes to the store.
        checkpointed: Whether :class:`CheckpointPolicy` persists this
            stage's outputs (in-memory source stages opt out).
        traced: Whether execution wraps :meth:`run` in the canonical
            ``pipeline.<stage>`` span. Delegating wrapper stages (whose
            ``run`` re-enters the engine for the same stage) opt out so
            the span is observed exactly once per execution.
        supersedes: Names of earlier stages whose outputs become
            unnecessary once this stage has a checkpoint on disk — a
            complete pruned-graph checkpoint makes loading the much
            larger raw graphs pointless.
    """

    name: str = ""
    inputs: tuple[ArtifactKey[Any], ...] = ()
    outputs: tuple[ArtifactKey[Any], ...] = ()
    checkpointed: bool = True
    traced: bool = True
    supersedes: tuple[str, ...] = ()

    def active(self, store: ArtifactStore) -> bool:
        """Whether the stage participates in this run (default: yes)."""
        return True

    @abc.abstractmethod
    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        """Compute the stage's outputs from its inputs in ``store``."""

    def save_artifacts(
        self, staging: Path, store: ArtifactStore
    ) -> dict[str, object]:
        """Write this stage's outputs into ``staging``; returns manifest meta.

        Called by :class:`CheckpointPolicy` inside the checkpointer's
        atomic staging directory. The returned mapping becomes the
        checkpoint manifest's ``meta`` payload.
        """
        raise NotImplementedError(
            f"stage {self.name!r} does not persist artifacts"
        )

    def load_artifacts(
        self,
        directory: Path,
        manifest: CheckpointManifest,
        store: ArtifactStore,
    ) -> None:
        """Restore this stage's outputs into ``store`` from ``directory``."""
        raise NotImplementedError(
            f"stage {self.name!r} does not restore artifacts"
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass(frozen=True)
class StageInfo:
    """Describe-friendly summary of one stage (see ``repro-dns describe``)."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    checkpointed: bool
    supersedes: tuple[str, ...]


@dataclass(slots=True)
class RunReport:
    """What one :meth:`StageGraph.execute` call did, stage by stage.

    Attributes:
        executed: Stages that ran their compute step, in order.
        restored: Stages restored from a checkpoint (a partially
            restored stage appears in both lists).
        skipped: Stages skipped (inactive, deselected, superseded, or
            already satisfied).
        resumed_from: The most advanced stage restored from a
            checkpoint, or ``None`` for a cold run.
    """

    executed: list[str] = field(default_factory=list)
    restored: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    resumed_from: str | None = None


class ExecutionPolicy(Protocol):
    """How a validated stage graph gets executed."""

    def execute(
        self, graph: "StageGraph", store: ArtifactStore, ctx: ExecutionContext
    ) -> RunReport: ...


class StageGraph:
    """A validated, ordered DAG of stages over one artifact namespace.

    Stages are given in execution order; construction checks that every
    declared input is produced by an earlier stage or listed in
    ``initial`` (artifacts seeded into the store before execution), that
    stage names are unique, and that no artifact has two producers.
    """

    def __init__(
        self,
        stages: Sequence[Stage[Any, Any]],
        initial: Iterable[ArtifactKey[Any]] = (),
    ) -> None:
        available = {key.name for key in initial}
        produced: set[str] = set()
        names: set[str] = set()
        for stage in stages:
            if not stage.name:
                raise StageGraphError(f"stage {stage!r} has no name")
            if stage.name in names:
                raise StageGraphError(f"duplicate stage name {stage.name!r}")
            names.add(stage.name)
            for key in stage.inputs:
                if key.name not in available:
                    raise StageGraphError(
                        f"stage {stage.name!r} consumes {key.name!r}, which "
                        "no earlier stage produces and is not an initial "
                        "artifact"
                    )
            for key in stage.outputs:
                if key.name in produced:
                    raise StageGraphError(
                        f"artifact {key.name!r} has two producers "
                        f"(second: stage {stage.name!r})"
                    )
                produced.add(key.name)
                available.add(key.name)
        self.stages: tuple[Stage[Any, Any], ...] = tuple(stages)

    def __iter__(self) -> Iterator[Stage[Any, Any]]:
        return iter(self.stages)

    def names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def get(self, name: str) -> Stage[Any, Any]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise StageGraphError(f"no stage named {name!r} in this graph")

    def describe(self) -> tuple[StageInfo, ...]:
        """Static stage summaries, in execution order."""
        return tuple(
            StageInfo(
                name=stage.name,
                inputs=tuple(key.name for key in stage.inputs),
                outputs=tuple(key.name for key in stage.outputs),
                checkpointed=stage.checkpointed,
                supersedes=stage.supersedes,
            )
            for stage in self.stages
        )

    def execute(
        self,
        store: ArtifactStore,
        policy: ExecutionPolicy | None = None,
        ctx: ExecutionContext | None = None,
    ) -> RunReport:
        """Run the graph over ``store`` under ``policy`` (batch default)."""
        chosen = policy if policy is not None else BatchPolicy()
        return chosen.execute(self, store, ctx or ExecutionContext())


def _run_stage(
    stage: Stage[Any, Any],
    store: ArtifactStore,
    ctx: ExecutionContext,
    report: RunReport,
) -> None:
    """Execute one stage under its canonical ``pipeline.<stage>`` span."""
    if stage.traced:
        with trace(span_name(stage.name)):
            stage.run(store, ctx)
    else:
        stage.run(store, ctx)
    report.executed.append(stage.name)


class BatchPolicy:
    """Run every active stage in order, entirely in memory.

    Args:
        only: When given, restrict execution to these stage names (the
            rest are skipped). The batch facade uses this to expose
            individual stages as methods over one shared graph.
    """

    def __init__(self, only: Collection[str] | None = None) -> None:
        self.only = None if only is None else frozenset(only)

    def execute(
        self, graph: StageGraph, store: ArtifactStore, ctx: ExecutionContext
    ) -> RunReport:
        report = RunReport()
        for stage in graph.stages:
            if self.only is not None and stage.name not in self.only:
                report.skipped.append(stage.name)
                continue
            if not stage.active(store):
                report.skipped.append(stage.name)
                continue
            _run_stage(stage, store, ctx, report)
        return report


class IncrementalPolicy:
    """Fold semantics: recompute only what the store does not hold yet.

    A stage whose outputs are all present is skipped — the streaming
    refresh seeds the store with incrementally maintained graphs and
    recomputes the model stages over them.
    """

    def execute(
        self, graph: StageGraph, store: ArtifactStore, ctx: ExecutionContext
    ) -> RunReport:
        report = RunReport()
        for stage in graph.stages:
            if not stage.active(store):
                report.skipped.append(stage.name)
                continue
            if stage.outputs and all(store.has(key) for key in stage.outputs):
                report.skipped.append(stage.name)
                continue
            _run_stage(stage, store, ctx, report)
        return report


class CheckpointPolicy:
    """Checkpoint-and-resume execution over a :class:`CheckpointBackend`.

    For each active stage, in order:

    * skip it when a later stage that supersedes it has a checkpoint on
      disk (that checkpoint will be restored instead);
    * when resuming and the stage has a checkpoint, verify + restore it;
      a *partial* checkpoint (rolling ingest saves) is restored and the
      stage then continues from the restored state;
    * otherwise run the stage, persist its artifacts atomically, and
      invalidate every later stage's now-stale checkpoint.

    ``resumed_from`` on the returned report is the most advanced
    restored stage, mirroring the pre-engine runner's contract.
    """

    def __init__(self, resume: bool = False) -> None:
        self.resume = resume

    def _restorable(
        self, stage: Stage[Any, Any], ckpt: CheckpointBackend | None
    ) -> bool:
        return (
            self.resume
            and ckpt is not None
            and stage.checkpointed
            and ckpt.has(stage.name)
        )

    def _superseded(
        self,
        stage: Stage[Any, Any],
        later: Sequence[Stage[Any, Any]],
        ckpt: CheckpointBackend | None,
    ) -> bool:
        if not self.resume or ckpt is None:
            return False
        return any(
            stage.name in other.supersedes and ckpt.has(other.name)
            for other in later
        )

    def execute(
        self, graph: StageGraph, store: ArtifactStore, ctx: ExecutionContext
    ) -> RunReport:
        ckpt = ctx.checkpointer
        report = RunReport()
        stages = graph.stages
        for position, stage in enumerate(stages):
            if not stage.active(store):
                report.skipped.append(stage.name)
                continue
            if self._superseded(stage, stages[position + 1 :], ckpt):
                report.skipped.append(stage.name)
                continue
            if self._restorable(stage, ckpt):
                assert ckpt is not None
                directory, manifest = ckpt.verify(stage.name)
                stage.load_artifacts(directory, manifest, store)
                report.restored.append(stage.name)
                report.resumed_from = stage.name
                _log.info(
                    "stage_restored",
                    stage=stage.name,
                    complete=manifest.complete,
                )
                if manifest.complete:
                    continue
                # A partial (rolling) checkpoint: the restored state is a
                # prefix of the stage's work — finish it below.
            _run_stage(stage, store, ctx, report)
            if ckpt is not None and stage.checkpointed:
                meta: dict[str, object] = {}

                def populate(staging: Path) -> None:
                    meta.update(stage.save_artifacts(staging, store))

                ckpt.save(stage.name, populate, meta)
                ckpt.invalidate_after(stage.name)
        return report
