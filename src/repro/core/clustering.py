"""Mining associations of malicious domains (paper section 7).

X-Means clustering over domain embedding vectors groups associated
domains (same malware family, same campaign, same business owner), which
enables:

* cluster interpretation via ThreatBook-style reports (Tables 1-2);
* acquiring additional labeled malicious domains from a small seed set
  with VirusTotal confirmation (Figure 4, section 7.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.labels.threatbook import SimulatedThreatBook
from repro.labels.virustotal import SimulatedVirusTotal
from repro.ml.xmeans import XMeans


@dataclass(slots=True)
class DomainCluster:
    """One discovered cluster of associated domains."""

    cluster_id: int
    domains: list[str]
    center: np.ndarray

    def __len__(self) -> int:
        return len(self.domains)


@dataclass(slots=True)
class ClusterReport:
    """A cluster plus its vendor-report interpretation."""

    cluster: DomainCluster
    dominant_category: str
    category_share: float
    reported_domains: list[str] = field(default_factory=list)


class DomainClusterer:
    """X-Means clustering of domains in embedding space (section 7.1)."""

    def __init__(self, k_min: int = 2, k_max: int = 60, seed: int = 0) -> None:
        self.k_min = k_min
        self.k_max = k_max
        self.seed = seed
        self.clusters_: list[DomainCluster] | None = None

    def fit(
        self, domains: Sequence[str], features: np.ndarray
    ) -> list[DomainCluster]:
        """Cluster ``domains`` (rows of ``features``); returns the clusters."""
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != len(domains):
            raise ValueError("features and domains disagree on sample count")
        model = XMeans(k_min=self.k_min, k_max=self.k_max, seed=self.seed)
        assignments = model.fit_predict(features)
        assert model.cluster_centers_ is not None
        clusters: list[DomainCluster] = []
        for cluster_id in range(model.n_clusters_ or 0):
            member_mask = assignments == cluster_id
            members = [d for d, keep in zip(domains, member_mask) if keep]
            if not members:
                continue
            clusters.append(
                DomainCluster(
                    cluster_id=cluster_id,
                    domains=members,
                    center=model.cluster_centers_[cluster_id],
                )
            )
        self.clusters_ = clusters
        return clusters

    def annotate(
        self, threatbook: SimulatedThreatBook
    ) -> list[ClusterReport]:
        """Interpret fitted clusters with vendor reports (Tables 1-2)."""
        if self.clusters_ is None:
            raise ValueError("call fit() before annotate()")
        reports: list[ClusterReport] = []
        for cluster in self.clusters_:
            category, share = threatbook.dominant_category(cluster.domains)
            reported = [
                domain
                for domain in cluster.domains
                if threatbook.report(domain) is not None
            ]
            reports.append(
                ClusterReport(
                    cluster=cluster,
                    dominant_category=category,
                    category_share=share,
                    reported_domains=reported,
                )
            )
        return reports


@dataclass(slots=True)
class SeedExpansionResult:
    """Outcome of one seed-expansion run (one point of Figure 4)."""

    seed_size: int
    discovered_true: int
    discovered_suspicious: int
    true_domains: list[str] = field(default_factory=list)
    suspicious_domains: list[str] = field(default_factory=list)


def expand_from_seeds(
    clusters: Sequence[DomainCluster],
    seed_domains: Sequence[str],
    virustotal: SimulatedVirusTotal,
    min_positives: int = 2,
) -> SeedExpansionResult:
    """Discover new malicious domains from a seed set (section 7.2.1).

    Every cluster containing at least one seed domain is treated as a
    malicious cluster; its other members are candidates. Candidates the
    VirusTotal oracle confirms are *true* malicious discoveries, the rest
    are *suspicious* — exactly the two series of Figure 4.
    """
    seeds = set(seed_domains)
    true_domains: list[str] = []
    suspicious_domains: list[str] = []
    for cluster in clusters:
        members = set(cluster.domains)
        if not members & seeds:
            continue
        for domain in sorted(members - seeds):
            if virustotal.is_confirmed(domain, min_positives):
                true_domains.append(domain)
            else:
                suspicious_domains.append(domain)
    return SeedExpansionResult(
        seed_size=len(seeds),
        discovered_true=len(true_domains),
        discovered_suspicious=len(suspicious_domains),
        true_domains=true_domains,
        suspicious_domains=suspicious_domains,
    )
