"""The end-to-end detection pipeline (paper section 3, Figure 2).

Five stages, matching the paper's system components:

1. data collection / pre-processing — DNS + DHCP logs in, records out;
2. behavioral modeling — three bipartite graphs, pruned;
3. feature learning — one-mode projections + LINE per view;
4. supervised detection — SVM on the concatenated 3k-dim vectors;
5. unsupervised mining — X-Means clusters over the same vectors.

:class:`MaliciousDomainDetector` exposes each stage separately (for
experiments) and a convenience :meth:`process` that runs 1-3 in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.core.clustering import DomainCluster, DomainClusterer
from repro.core.detector import MaliciousDomainClassifier
from repro.core.features import FeatureSpace, FeatureView
from repro.dns.dhcp import DhcpLog, HostIdentityResolver
from repro.dns.types import DnsQuery, DnsResponse
from repro.embedding.line import LineConfig, LineEmbedding
from repro.errors import GraphConstructionError, NotFittedError
from repro.graphs.bipartite import (
    BipartiteGraph,
    build_domain_ip_graph,
    build_query_graphs,
)
from repro.graphs.core import VertexTable
from repro.graphs.projection import SimilarityGraph, project_to_similarity
from repro.graphs.pruning import PruningReport, PruningRules, prune_graphs
from repro.labels.dataset import LabeledDataset
from repro.obs.logging import get_logger
from repro.obs.progress import ProgressCallback
from repro.obs.tracing import trace
from repro.parallel.executor import ParallelConfig
from repro.parallel.train import train_views

_log = get_logger(__name__)

# Canonical stage names used for tracing spans and metric keys
# (stage.<name>.seconds / stage.<name>.calls in the registry).
STAGE_GRAPH_BUILD = "graph_build"
STAGE_PRUNING = "pruning"
STAGE_PROJECTION = "projection"
STAGE_EMBEDDING = "embedding"
STAGE_SVM_FIT = "svm_fit"
STAGE_CLUSTERING = "clustering"

#: The five stages a ``detect`` run exercises, in execution order.
DETECTION_STAGES: tuple[str, ...] = (
    STAGE_GRAPH_BUILD,
    STAGE_PRUNING,
    STAGE_PROJECTION,
    STAGE_EMBEDDING,
    STAGE_SVM_FIT,
)


@dataclass(slots=True)
class PipelineConfig:
    """End-to-end pipeline knobs.

    Attributes:
        time_window_seconds: DTBG window (paper: one minute).
        pruning: Graph pruning rules (paper defaults).
        embedding: LINE hyperparameter template; per-view seeds are
            derived from its seed so the three views train independently.
            Its ``kernel`` field selects the SGD inner loop for every
            view (fused ``"segment"`` by default, ``"add_at"`` as the
            reference — see ``docs/embedding-kernels.md``).
        parallel: Worker policy for the embedding stage — the three
            views (and both orders of ``order="both"``) train as
            independent tasks under it. The default (``workers=0``) is
            fully serial; any backend produces byte-identical
            embeddings for the same seed (see ``docs/parallelism.md``).
        min_similarity: Projection edge threshold (near-zero keeps all
            overlaps).
        views: Feature views used for classification; the default is all
            three (Figure 6), a single view reproduces Figure 7's bars.
    """

    time_window_seconds: float = 60.0
    pruning: PruningRules = field(default_factory=PruningRules)
    embedding: LineConfig = field(default_factory=LineConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    min_similarity: float = 1e-9
    views: tuple[FeatureView, ...] = (
        FeatureView.QUERY,
        FeatureView.IP,
        FeatureView.TEMPORAL,
    )


class MaliciousDomainDetector:
    """End-to-end detector over passive DNS traffic.

    Typical use::

        detector = MaliciousDomainDetector(PipelineConfig())
        detector.process(queries, responses, dhcp)
        detector.fit(labeled_dataset)
        scores = detector.decision_scores(unknown_domains)
    """

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        self.host_domain: BipartiteGraph | None = None
        self.domain_ip: BipartiteGraph | None = None
        self.domain_time: BipartiteGraph | None = None
        self.pruning_report: PruningReport | None = None
        self.similarity_graphs: dict[FeatureView, SimilarityGraph] = {}
        self.feature_space: FeatureSpace | None = None
        self.classifier: MaliciousDomainClassifier | None = None
        self._domain_order: list[str] | None = None

    # ------------------------------------------------------------------
    # Stages 1-2: graphs

    def build_graphs(
        self,
        queries: Iterable[DnsQuery],
        responses: Iterable[DnsResponse],
        dhcp: DhcpLog | None = None,
    ) -> PruningReport:
        """Build and prune the three bipartite graphs."""
        with trace(STAGE_GRAPH_BUILD):
            identity = HostIdentityResolver(dhcp) if dhcp is not None else None
            queries = list(queries)
            # One shared domain interner across all three views: ids (and
            # therefore every downstream ordering) agree without
            # re-sorting, and HDBG + DTBG come from a single pass.
            domains = VertexTable()
            host_domain, domain_time = build_query_graphs(
                queries,
                identity,
                window_seconds=self.config.time_window_seconds,
                domains=domains,
            )
            domain_ip = build_domain_ip_graph(responses, domains=domains)
        with trace(STAGE_PRUNING):
            (
                self.host_domain,
                self.domain_ip,
                self.domain_time,
                self.pruning_report,
            ) = prune_graphs(
                host_domain, domain_ip, domain_time, self.config.pruning
            )
        self._domain_order = sorted(self.pruning_report.surviving_domains)
        _log.info(
            "graphs_built",
            queries=len(queries),
            domains_before=self.pruning_report.domains_before,
            domains_after=self.pruning_report.domains_after,
        )
        return self.pruning_report

    def adopt_graphs(
        self,
        host_domain: BipartiteGraph,
        domain_ip: BipartiteGraph,
        domain_time: BipartiteGraph,
    ) -> PruningReport:
        """Use externally built bipartite graphs (applies pruning).

        The streaming mode maintains graphs incrementally and hands them
        to a fresh detector at each refresh; this is its entry point.
        """
        with trace(STAGE_PRUNING):
            (
                self.host_domain,
                self.domain_ip,
                self.domain_time,
                self.pruning_report,
            ) = prune_graphs(
                host_domain, domain_ip, domain_time, self.config.pruning
            )
        self._domain_order = sorted(self.pruning_report.surviving_domains)
        return self.pruning_report

    @property
    def domains(self) -> list[str]:
        """Domains that survived pruning (the embedding vertex set)."""
        if self._domain_order is None:
            raise NotFittedError("MaliciousDomainDetector.build_graphs")
        return list(self._domain_order)

    # ------------------------------------------------------------------
    # Checkpoint-resume entry points (repro.ingest.runner)
    #
    # Each adopt_* installs the output of one already-completed stage
    # without recomputing it, so a resumed pipeline continues from its
    # last checkpoint with exactly the state a cold run would have had.

    def adopt_pruned_graphs(
        self,
        host_domain: BipartiteGraph,
        domain_ip: BipartiteGraph,
        domain_time: BipartiteGraph,
        domain_order: Sequence[str],
        report: PruningReport | None = None,
    ) -> None:
        """Install already-pruned graphs and their domain order.

        Unlike :meth:`adopt_graphs` this does *not* re-run pruning —
        pruning is not idempotent (host-count denominators change once
        edges are dropped), so a checkpointed pipeline restores the
        pruned graphs verbatim.
        """
        self.host_domain = host_domain
        self.domain_ip = domain_ip
        self.domain_time = domain_time
        self.pruning_report = report
        self._domain_order = list(domain_order)

    def adopt_similarity_graphs(
        self, graphs: dict[FeatureView, SimilarityGraph]
    ) -> None:
        """Install already-projected similarity graphs."""
        self.similarity_graphs = dict(graphs)
        if self._domain_order is None and graphs:
            any_graph = next(iter(graphs.values()))
            self._domain_order = list(any_graph.domains)

    def adopt_feature_space(self, space: FeatureSpace) -> None:
        """Install an already-trained feature space."""
        self.feature_space = space
        if self._domain_order is None:
            self._domain_order = list(space.query.domains)

    def adopt_classifier(
        self, classifier: MaliciousDomainClassifier
    ) -> None:
        """Install an already-fitted classifier."""
        self.classifier = classifier

    # ------------------------------------------------------------------
    # Stage 3a: projections

    def build_similarity_graphs(self) -> dict[FeatureView, SimilarityGraph]:
        """Project the three bipartite graphs onto the domain set."""
        if (
            self.host_domain is None
            or self.domain_ip is None
            or self.domain_time is None
            or self._domain_order is None
        ):
            raise GraphConstructionError("call build_graphs() first")
        order = self._domain_order
        threshold = self.config.min_similarity
        with trace(STAGE_PROJECTION):
            self.similarity_graphs = {
                FeatureView.QUERY: project_to_similarity(
                    self.host_domain, order, threshold
                ),
                FeatureView.IP: project_to_similarity(
                    self.domain_ip, order, threshold
                ),
                FeatureView.TEMPORAL: project_to_similarity(
                    self.domain_time, order, threshold
                ),
            }
        _log.debug(
            "projections_built",
            domains=len(order),
            edges=sum(g.edge_count for g in self.similarity_graphs.values()),
        )
        return self.similarity_graphs

    # ------------------------------------------------------------------
    # Stage 3b: embeddings

    def _line_config_for(self, view: FeatureView) -> LineConfig:
        # Derived, not shared: each view trains from its own seed offset
        # so the three views are independent tasks (serial or parallel).
        base = self.config.embedding
        offsets = {FeatureView.QUERY: 0, FeatureView.IP: 1, FeatureView.TEMPORAL: 2}
        return replace(base, seed=base.seed + offsets[view])

    def learn_embeddings(
        self, progress: "ProgressCallback | None" = None
    ) -> FeatureSpace:
        """Train LINE per view and assemble the feature space.

        The per-view trainings (and, for ``order="both"``, the per-order
        halves) run under ``config.parallel`` — serially by default,
        fanned out over thread or process workers when configured. The
        resulting vectors are byte-identical either way.

        Args:
            progress: Optional :class:`repro.obs.ProgressCallback`
                forwarded to every per-view LINE training loop (reports
                interleave across views when they train concurrently).
        """
        if not self.similarity_graphs:
            self.build_similarity_graphs()
        with trace(STAGE_EMBEDDING):
            trained = train_views(
                [
                    (view.value, graph, self._line_config_for(view))
                    for view, graph in self.similarity_graphs.items()
                ],
                self.config.parallel,
                progress=progress,
            )
        embeddings: dict[FeatureView, LineEmbedding] = {
            view: trained[view.value] for view in self.similarity_graphs
        }
        self.feature_space = FeatureSpace(
            query=embeddings[FeatureView.QUERY],
            ip=embeddings[FeatureView.IP],
            temporal=embeddings[FeatureView.TEMPORAL],
        )
        return self.feature_space

    def process(
        self,
        queries: Iterable[DnsQuery],
        responses: Iterable[DnsResponse],
        dhcp: DhcpLog | None = None,
    ) -> FeatureSpace:
        """Run stages 1-3 (graphs, projections, embeddings) in order."""
        self.build_graphs(queries, responses, dhcp)
        self.build_similarity_graphs()
        return self.learn_embeddings()

    # ------------------------------------------------------------------
    # Stage 4: supervised detection

    def features_for(
        self,
        domains: Sequence[str],
        views: Sequence[FeatureView] | None = None,
    ) -> np.ndarray:
        """Feature matrix for ``domains`` (full 3k by default)."""
        if self.feature_space is None:
            raise NotFittedError("MaliciousDomainDetector.learn_embeddings")
        return self.feature_space.matrix(domains, views or self.config.views)

    def fit(self, dataset: LabeledDataset) -> "MaliciousDomainDetector":
        """Train the SVM on a labeled dataset."""
        features = self.features_for(dataset.domains)
        with trace(STAGE_SVM_FIT):
            self.classifier = MaliciousDomainClassifier().fit(
                features, dataset.labels
            )
        _log.info(
            "classifier_fitted",
            samples=len(dataset.domains),
            support_vectors=self.classifier.support_vector_count,
        )
        return self

    def decision_scores(self, domains: Sequence[str]) -> np.ndarray:
        """d(x) for each domain — positive means malicious side."""
        if self.classifier is None:
            raise NotFittedError("MaliciousDomainDetector.fit")
        return self.classifier.decision_function(self.features_for(domains))

    def predict(self, domains: Sequence[str]) -> np.ndarray:
        """1 = malicious, 0 = benign, at the classifier's threshold."""
        if self.classifier is None:
            raise NotFittedError("MaliciousDomainDetector.fit")
        return self.classifier.predict(self.features_for(domains))

    # ------------------------------------------------------------------
    # Stage 5: unsupervised mining

    def cluster(
        self,
        domains: Sequence[str] | None = None,
        k_max: int = 60,
        seed: int = 0,
    ) -> list[DomainCluster]:
        """X-Means clusters over the (given or all) domains' features."""
        if domains is None:
            domains = self.domains
        clusterer = DomainClusterer(k_max=k_max, seed=seed)
        features = self.features_for(domains)
        with trace(STAGE_CLUSTERING):
            clusters = clusterer.fit(list(domains), features)
        _log.info("clusters_mined", domains=len(domains), clusters=len(clusters))
        return clusters
