"""The end-to-end detection pipeline (paper section 3, Figure 2).

Five stages, matching the paper's system components:

1. data collection / pre-processing — DNS + DHCP logs in, records out;
2. behavioral modeling — three bipartite graphs, pruned;
3. feature learning — one-mode projections + LINE per view;
4. supervised detection — SVM on the concatenated 3k-dim vectors;
5. unsupervised mining — X-Means clusters over the same vectors.

:class:`MaliciousDomainDetector` is a facade over the typed stage-graph
engine (:mod:`repro.core.stages`): every method executes the shared
stage objects from :mod:`repro.core.dataflow` under the batch policy,
and all intermediate products live in one
:class:`~repro.core.stages.ArtifactStore`. The streaming refresh and
the checkpointed runner execute the *same* stage graph under their own
policies, so the three paths cannot drift apart.

The detector exposes each stage separately (for experiments) and a
convenience :meth:`process` that runs stages 1-3 in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.clustering import DomainCluster
from repro.core.dataflow import (
    CLASSIFIER,
    CLUSTERS,
    DOMAIN_ORDER,
    FEATURE_SPACE,
    PIPELINE_STAGES,
    PRUNED_GRAPHS,
    PRUNING_REPORT,
    RAW_GRAPHS,
    RECORDS_INGESTED,
    SIMILARITY_GRAPHS,
    STAGE_CLASSIFY,
    STAGE_CLUSTER,
    STAGE_EMBED,
    STAGE_INGEST,
    STAGE_PROJECT,
    STAGE_PRUNE,
    BatchGraphStage,
    ClassifyStage,
    ClusterStage,
    detection_graph,
    line_config_for,
)
from repro.core.detector import ClassifierConfig, MaliciousDomainClassifier
from repro.core.features import FeatureSpace, FeatureView
from repro.core.stages import (
    ArtifactStore,
    BatchPolicy,
    ExecutionContext,
    StageGraph,
)
from repro.dns.dhcp import DhcpLog
from repro.dns.types import DnsQuery, DnsResponse
from repro.embedding.line import LineConfig
from repro.errors import GraphConstructionError, NotFittedError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.projection import SimilarityGraph
from repro.graphs.pruning import PruningReport, PruningRules
from repro.labels.dataset import LabeledDataset
from repro.ml.model_selection import cross_validated_scores
from repro.obs.logging import get_logger
from repro.obs.progress import ProgressCallback
from repro.parallel.executor import ParallelConfig

__all__ = [
    "PIPELINE_STAGES",
    "STAGE_CLASSIFY",
    "STAGE_CLUSTER",
    "STAGE_EMBED",
    "STAGE_INGEST",
    "STAGE_PROJECT",
    "STAGE_PRUNE",
    "MaliciousDomainDetector",
    "PipelineConfig",
]

_log = get_logger(__name__)


@dataclass(slots=True)
class PipelineConfig:
    """End-to-end pipeline knobs.

    Attributes:
        time_window_seconds: DTBG window (paper: one minute).
        pruning: Graph pruning rules (paper defaults).
        embedding: LINE hyperparameter template; per-view seeds are
            derived from its seed so the three views train independently.
            Its ``kernel`` field selects the SGD inner loop for every
            view (fused ``"segment"`` by default, ``"add_at"`` as the
            reference — see ``docs/embedding-kernels.md``).
        parallel: Worker policy for the embedding stage — the three
            views (and both orders of ``order="both"``) train as
            independent tasks under it — and for
            :meth:`MaliciousDomainDetector.cross_validate`, whose folds
            fan out under the same config. The default (``workers=0``)
            is fully serial; any backend produces byte-identical
            embeddings and fold scores for the same seed (see
            ``docs/parallelism.md``).
        classifier: SVM settings for the classify stage — the paper's
            C/gamma plus the solver selection (``"cached"`` row-cache
            SMO by default, ``"dense"`` reference) and its
            ``kernel_cache_mb`` budget (see ``docs/ml.md``). Solver
            choice does not enter the pipeline fingerprint: it changes
            how the model is computed, not what it computes.
        min_similarity: Projection edge threshold (near-zero keeps all
            overlaps).
        views: Feature views used for classification; the default is all
            three (Figure 6), a single view reproduces Figure 7's bars.
    """

    time_window_seconds: float = 60.0
    pruning: PruningRules = field(default_factory=PruningRules)
    embedding: LineConfig = field(default_factory=LineConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    min_similarity: float = 1e-9
    views: tuple[FeatureView, ...] = (
        FeatureView.QUERY,
        FeatureView.IP,
        FeatureView.TEMPORAL,
    )


class MaliciousDomainDetector:
    """End-to-end detector over passive DNS traffic.

    Typical use::

        detector = MaliciousDomainDetector(PipelineConfig())
        detector.process(queries, responses, dhcp)
        detector.fit(labeled_dataset)
        scores = detector.decision_scores(unknown_domains)

    Every stage method executes the shared stage graph under the batch
    policy; the intermediate products (pruned graphs, projections,
    feature space, classifier) live in :attr:`artifacts` and are also
    readable through the familiar properties (:attr:`host_domain`,
    :attr:`feature_space`, ...).
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        store: ArtifactStore | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self._store = store if store is not None else ArtifactStore()

    @classmethod
    def from_store(
        cls, config: PipelineConfig, store: ArtifactStore
    ) -> "MaliciousDomainDetector":
        """Wrap an already-populated artifact store (runner/streaming)."""
        return cls(config, store=store)

    # ------------------------------------------------------------------
    # Artifact views

    @property
    def artifacts(self) -> ArtifactStore:
        """The artifact store every stage reads from and writes to."""
        return self._store

    @property
    def host_domain(self) -> BipartiteGraph | None:
        """Pruned host-domain bipartite graph (HDBG), if built."""
        graphs = self._store.maybe(PRUNED_GRAPHS)
        return None if graphs is None else graphs[0]

    @property
    def domain_ip(self) -> BipartiteGraph | None:
        """Pruned domain-IP bipartite graph (DIBG), if built."""
        graphs = self._store.maybe(PRUNED_GRAPHS)
        return None if graphs is None else graphs[1]

    @property
    def domain_time(self) -> BipartiteGraph | None:
        """Pruned domain-time bipartite graph (DTBG), if built."""
        graphs = self._store.maybe(PRUNED_GRAPHS)
        return None if graphs is None else graphs[2]

    @property
    def pruning_report(self) -> PruningReport | None:
        return self._store.maybe(PRUNING_REPORT)

    @property
    def similarity_graphs(self) -> dict[FeatureView, SimilarityGraph]:
        return self._store.maybe(SIMILARITY_GRAPHS) or {}

    @property
    def feature_space(self) -> FeatureSpace | None:
        return self._store.maybe(FEATURE_SPACE)

    @property
    def classifier(self) -> MaliciousDomainClassifier | None:
        return self._store.maybe(CLASSIFIER)

    @property
    def domains(self) -> list[str]:
        """Domains that survived pruning (the embedding vertex set)."""
        order = self._store.maybe(DOMAIN_ORDER)
        if order is None:
            raise NotFittedError("MaliciousDomainDetector.build_graphs")
        return list(order)

    # ------------------------------------------------------------------
    # Stage execution

    def _execute(
        self,
        only: set[str],
        *,
        source: BatchGraphStage | None = None,
        progress: ProgressCallback | None = None,
    ) -> None:
        """Run the named stages of the shared graph over the store."""
        graph = detection_graph(self.config, source=source)
        graph.execute(
            self._store,
            BatchPolicy(only=only),
            ExecutionContext(progress=progress),
        )

    # ------------------------------------------------------------------
    # Stages 1-2: graphs

    def build_graphs(
        self,
        queries: Iterable[DnsQuery],
        responses: Iterable[DnsResponse],
        dhcp: DhcpLog | None = None,
    ) -> PruningReport:
        """Build and prune the three bipartite graphs."""
        source = BatchGraphStage(
            queries,
            responses,
            dhcp,
            window_seconds=self.config.time_window_seconds,
        )
        self._execute({STAGE_INGEST, STAGE_PRUNE}, source=source)
        report = self._store.get(PRUNING_REPORT)
        _log.info(
            "graphs_built",
            queries=self._store.get(RECORDS_INGESTED),
            domains_before=report.domains_before,
            domains_after=report.domains_after,
        )
        return report

    def adopt_graphs(
        self,
        host_domain: BipartiteGraph,
        domain_ip: BipartiteGraph,
        domain_time: BipartiteGraph,
    ) -> PruningReport:
        """Use externally built bipartite graphs (applies pruning).

        The streaming mode maintains graphs incrementally and hands them
        to a fresh detector at each refresh; this is its entry point.
        """
        self._store.put(RAW_GRAPHS, (host_domain, domain_ip, domain_time))
        self._execute({STAGE_PRUNE})
        return self._store.get(PRUNING_REPORT)

    # ------------------------------------------------------------------
    # Checkpoint-resume entry points (repro.ingest.runner)
    #
    # Each adopt_* installs the output of one already-completed stage
    # without recomputing it, so a resumed pipeline continues from its
    # last checkpoint with exactly the state a cold run would have had.

    def adopt_pruned_graphs(
        self,
        host_domain: BipartiteGraph,
        domain_ip: BipartiteGraph,
        domain_time: BipartiteGraph,
        domain_order: Sequence[str],
        report: PruningReport | None = None,
    ) -> None:
        """Install already-pruned graphs and their domain order.

        Unlike :meth:`adopt_graphs` this does *not* re-run pruning —
        pruning is not idempotent (host-count denominators change once
        edges are dropped), so a checkpointed pipeline restores the
        pruned graphs verbatim.
        """
        self._store.put(
            PRUNED_GRAPHS, (host_domain, domain_ip, domain_time)
        )
        self._store.put(DOMAIN_ORDER, list(domain_order))
        if report is None:
            self._store.discard(PRUNING_REPORT)
        else:
            self._store.put(PRUNING_REPORT, report)

    def adopt_similarity_graphs(
        self, graphs: dict[FeatureView, SimilarityGraph]
    ) -> None:
        """Install already-projected similarity graphs."""
        self._store.put(SIMILARITY_GRAPHS, dict(graphs))
        if not self._store.has(DOMAIN_ORDER) and graphs:
            any_graph = next(iter(graphs.values()))
            self._store.put(DOMAIN_ORDER, list(any_graph.domains))

    def adopt_feature_space(self, space: FeatureSpace) -> None:
        """Install an already-trained feature space."""
        self._store.put(FEATURE_SPACE, space)
        if not self._store.has(DOMAIN_ORDER):
            self._store.put(DOMAIN_ORDER, list(space.query.domains))

    def adopt_classifier(
        self, classifier: MaliciousDomainClassifier
    ) -> None:
        """Install an already-fitted classifier."""
        self._store.put(CLASSIFIER, classifier)

    # ------------------------------------------------------------------
    # Stage 3a: projections

    def build_similarity_graphs(self) -> dict[FeatureView, SimilarityGraph]:
        """Project the three bipartite graphs onto the domain set."""
        if not (
            self._store.has(PRUNED_GRAPHS) and self._store.has(DOMAIN_ORDER)
        ):
            raise GraphConstructionError("call build_graphs() first")
        self._execute({STAGE_PROJECT})
        return self.similarity_graphs

    # ------------------------------------------------------------------
    # Stage 3b: embeddings

    def _line_config_for(self, view: FeatureView) -> LineConfig:
        return line_config_for(self.config.embedding, view)

    def learn_embeddings(
        self, progress: "ProgressCallback | None" = None
    ) -> FeatureSpace:
        """Train LINE per view and assemble the feature space.

        The per-view trainings (and, for ``order="both"``, the per-order
        halves) run under ``config.parallel`` — serially by default,
        fanned out over thread or process workers when configured. The
        resulting vectors are byte-identical either way.

        Args:
            progress: Optional :class:`repro.obs.ProgressCallback`
                forwarded to every per-view LINE training loop (reports
                interleave across views when they train concurrently).
        """
        if not self.similarity_graphs:
            self.build_similarity_graphs()
        self._execute({STAGE_EMBED}, progress=progress)
        return self._store.get(FEATURE_SPACE)

    def process(
        self,
        queries: Iterable[DnsQuery],
        responses: Iterable[DnsResponse],
        dhcp: DhcpLog | None = None,
    ) -> FeatureSpace:
        """Run stages 1-3 (graphs, projections, embeddings) in order."""
        self.build_graphs(queries, responses, dhcp)
        self.build_similarity_graphs()
        return self.learn_embeddings()

    # ------------------------------------------------------------------
    # Stage 4: supervised detection

    def features_for(
        self,
        domains: Sequence[str],
        views: Sequence[FeatureView] | None = None,
    ) -> np.ndarray:
        """Feature matrix for ``domains`` (full 3k by default)."""
        space = self.feature_space
        if space is None:
            raise NotFittedError("MaliciousDomainDetector.learn_embeddings")
        return space.matrix(domains, views or self.config.views)

    def fit(self, dataset: LabeledDataset) -> "MaliciousDomainDetector":
        """Train the SVM on a labeled dataset."""
        if self.feature_space is None:
            raise NotFittedError("MaliciousDomainDetector.learn_embeddings")
        stage = ClassifyStage(
            self.config.views,
            lambda _order: dataset,
            score_all=False,
            classifier=self.config.classifier,
        )
        graph = StageGraph([stage], initial=stage.inputs)
        graph.execute(self._store, BatchPolicy())
        return self

    def cross_validate(
        self, dataset: LabeledDataset, n_splits: int = 10, seed: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Out-of-fold decision scores for the labeled set (section 8.1).

        Each fold trains a fresh classifier with ``config.classifier``'s
        settings; folds fan out under ``config.parallel`` (the scores
        are byte-identical across serial/thread/process backends).

        Returns:
            (scores, fold_ids) aligned with ``dataset.domains``.
        """
        features = self.features_for(dataset.domains)
        return cross_validated_scores(
            features,
            np.asarray(dataset.labels),
            self.config.classifier.build,
            n_splits=n_splits,
            seed=seed,
            parallel=self.config.parallel,
        )

    def decision_scores(self, domains: Sequence[str]) -> np.ndarray:
        """d(x) for each domain — positive means malicious side."""
        classifier = self.classifier
        if classifier is None:
            raise NotFittedError("MaliciousDomainDetector.fit")
        return classifier.decision_function(self.features_for(domains))

    def predict(self, domains: Sequence[str]) -> np.ndarray:
        """1 = malicious, 0 = benign, at the classifier's threshold."""
        classifier = self.classifier
        if classifier is None:
            raise NotFittedError("MaliciousDomainDetector.fit")
        return classifier.predict(self.features_for(domains))

    # ------------------------------------------------------------------
    # Stage 5: unsupervised mining

    def cluster(
        self,
        domains: Sequence[str] | None = None,
        k_max: int = 60,
        seed: int = 0,
    ) -> list[DomainCluster]:
        """X-Means clusters over the (given or all) domains' features."""
        if domains is None:
            domains = self.domains
        if self.feature_space is None:
            raise NotFittedError("MaliciousDomainDetector.learn_embeddings")
        stage = ClusterStage(
            self.config.views, k_max=k_max, seed=seed, domains=domains
        )
        graph = StageGraph([stage], initial=stage.inputs)
        graph.execute(self._store, BatchPolicy())
        return self._store.get(CLUSTERS)
