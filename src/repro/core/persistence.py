"""Persistence for pipeline artifacts.

A deployment runs the expensive stages (graphs, projections, LINE) once
per capture window and reuses the results; this module saves and restores
them — embeddings, feature spaces, graphs, and the trained classifier
and scaler (so scoring never requires retraining; see ``repro.serve``
for the bundle/registry layer built on top). Formats are plain ``.npz``
(numpy) plus small JSON sidecars — no pickle, so artifacts are safe to
share and stable across versions.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.detector import MaliciousDomainClassifier
from repro.core.features import FeatureSpace
from repro.embedding.line import LineConfig, LineEmbedding
from repro.errors import DatasetError, NotFittedError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.core import EdgeList, VertexTable
from repro.graphs.projection import SimilarityGraph
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import DEFAULT_CACHE_MB, SupportVectorClassifier

_FORMAT_VERSION = 1


def save_embedding(embedding: LineEmbedding, path: str | Path) -> None:
    """Write one LINE embedding as ``<path>`` (.npz)."""
    path = Path(path)
    config = asdict(embedding.config)
    np.savez_compressed(
        path,
        vectors=embedding.vectors,
        domains=np.array(embedding.domains, dtype=np.str_),
        kind=np.array(embedding.kind),
        config_json=np.array(json.dumps(config)),
        format_version=np.array(_FORMAT_VERSION),
    )


def load_embedding(path: str | Path) -> LineEmbedding:
    """Read an embedding written by :func:`save_embedding`."""
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported embedding format version {version}"
            )
        config = LineConfig(**json.loads(str(archive["config_json"])))
        return LineEmbedding(
            kind=str(archive["kind"]),
            domains=[str(d) for d in archive["domains"]],
            vectors=np.asarray(archive["vectors"], dtype=np.float64),
            config=config,
        )


def save_feature_space(space: FeatureSpace, directory: str | Path) -> None:
    """Write all three view embeddings under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_embedding(space.query, directory / "query.npz")
    save_embedding(space.ip, directory / "ip.npz")
    save_embedding(space.temporal, directory / "temporal.npz")


def load_feature_space(directory: str | Path) -> FeatureSpace:
    """Read a feature space written by :func:`save_feature_space`."""
    directory = Path(directory)
    return FeatureSpace(
        query=load_embedding(directory / "query.npz"),
        ip=load_embedding(directory / "ip.npz"),
        temporal=load_embedding(directory / "temporal.npz"),
    )


def save_bipartite_graph(graph: BipartiteGraph, path: str | Path) -> None:
    """Write one bipartite graph as ``<path>`` (.npz).

    The columnar representation persists directly: both vertex-table
    interners (values as unicode strings plus a type-code column, so
    integer time-window vertices round-trip without pickle) and the
    deduplicated ``(left_id, right_id)`` edge arrays.
    """
    left_values, left_codes = graph.left.to_arrays()
    right_values, right_codes = graph.right.to_arrays()
    lefts, rights = graph.edges.columns()
    np.savez_compressed(
        Path(path),
        kind=np.array(graph.kind),
        left_values=left_values,
        left_codes=left_codes,
        right_values=right_values,
        right_codes=right_codes,
        lefts=lefts,
        rights=rights,
        format_version=np.array(_FORMAT_VERSION),
    )


def load_bipartite_graph(path: str | Path) -> BipartiteGraph:
    """Read a graph written by :func:`save_bipartite_graph`."""
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported bipartite graph format version {version}"
            )
        left = VertexTable.from_arrays(
            archive["left_values"], archive["left_codes"]
        )
        right = VertexTable.from_arrays(
            archive["right_values"], archive["right_codes"]
        )
        edges = EdgeList()
        edges.extend_raw(
            np.asarray(archive["lefts"], dtype=np.int64),
            np.asarray(archive["rights"], dtype=np.int64),
        )
        edges.compact()
        return BipartiteGraph(
            kind=str(archive["kind"]), left=left, right=right, edges=edges
        )


def save_classifier(
    classifier: MaliciousDomainClassifier, path: str | Path
) -> None:
    """Write a fitted classifier as ``<path>`` (.npz, pickle-free).

    The archive holds the complete SVM decision rule — support vectors,
    signed dual coefficients (alpha_i * y_i), bias, kernel parameters —
    plus the calibrated threshold, so a loaded classifier reproduces
    ``decision_function`` byte-exactly without retraining.
    """
    svm = classifier._svm
    if (
        not classifier._fitted
        or svm._support_vectors is None
        or svm._support_coefficients is None
        or svm._classes is None
    ):
        raise NotFittedError("MaliciousDomainClassifier")
    params = {
        "c": svm.c,
        "kernel": svm.kernel,
        "gamma": svm.gamma,
        "degree": svm.degree,
        "coef0": svm.coef0,
        "tolerance": svm.tolerance,
        "max_iterations": svm.max_iterations,
        "solver": svm.solver,
        "kernel_cache_mb": svm.kernel_cache_mb,
        # The configured threshold (None = calibrate on fit) and the
        # value that calibration actually produced.
        "threshold": classifier.threshold,
        "threshold_": classifier.threshold_,
    }
    np.savez_compressed(
        Path(path),
        support_vectors=svm._support_vectors,
        dual_coefficients=svm._support_coefficients,
        bias=np.array(svm._bias, dtype=np.float64),
        classes=np.asarray(svm._classes),
        params_json=np.array(json.dumps(params)),
        format_version=np.array(_FORMAT_VERSION),
    )


def load_classifier(path: str | Path) -> MaliciousDomainClassifier:
    """Read a classifier written by :func:`save_classifier`.

    The returned classifier's ``decision_function`` is byte-identical to
    the saved one's: the kernel expansion is recomputed from bit-equal
    float64 support vectors, coefficients, and bias.
    """
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported classifier format version {version}"
            )
        params = json.loads(str(archive["params_json"]))
        threshold = params["threshold"]
        # Archives written before the cached solver existed carry no
        # solver keys; default to its defaults (refitting such a model
        # uses the cached path, the stored decision rule is unaffected).
        solver = str(params.get("solver", "cached"))
        kernel_cache_mb = float(params.get("kernel_cache_mb", DEFAULT_CACHE_MB))
        classifier = MaliciousDomainClassifier(
            c=float(params["c"]),
            gamma=float(params["gamma"]),
            threshold=None if threshold is None else float(threshold),
            solver=solver,
            kernel_cache_mb=kernel_cache_mb,
        )
        svm = SupportVectorClassifier(
            c=float(params["c"]),
            kernel=str(params["kernel"]),
            gamma=float(params["gamma"]),
            degree=int(params["degree"]),
            coef0=float(params["coef0"]),
            tolerance=float(params["tolerance"]),
            max_iterations=int(params["max_iterations"]),
            solver=solver,
            kernel_cache_mb=kernel_cache_mb,
        )
        svm._support_vectors = np.asarray(
            archive["support_vectors"], dtype=np.float64
        )
        svm._support_coefficients = np.asarray(
            archive["dual_coefficients"], dtype=np.float64
        )
        svm._bias = float(archive["bias"])
        svm._classes = np.asarray(archive["classes"])
        classifier._svm = svm
        classifier._fitted = True
        classifier.threshold_ = float(params["threshold_"])
        return classifier


def save_scaler(scaler: StandardScaler, path: str | Path) -> None:
    """Write a fitted :class:`StandardScaler` as ``<path>`` (.npz)."""
    if scaler.mean_ is None or scaler.scale_ is None:
        raise NotFittedError("StandardScaler")
    np.savez_compressed(
        Path(path),
        mean=scaler.mean_,
        scale=scaler.scale_,
        format_version=np.array(_FORMAT_VERSION),
    )


def load_scaler(path: str | Path) -> StandardScaler:
    """Read a scaler written by :func:`save_scaler`."""
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(f"unsupported scaler format version {version}")
        scaler = StandardScaler()
        scaler.mean_ = np.asarray(archive["mean"], dtype=np.float64)
        scaler.scale_ = np.asarray(archive["scale"], dtype=np.float64)
        return scaler


def save_similarity_graph(graph: SimilarityGraph, path: str | Path) -> None:
    """Write one similarity graph as ``<path>`` (.npz)."""
    np.savez_compressed(
        Path(path),
        kind=np.array(graph.kind),
        domains=np.array(graph.domains, dtype=np.str_),
        rows=graph.rows,
        cols=graph.cols,
        weights=graph.weights,
        format_version=np.array(_FORMAT_VERSION),
    )


def load_similarity_graph(path: str | Path) -> SimilarityGraph:
    """Read a graph written by :func:`save_similarity_graph`."""
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(f"unsupported graph format version {version}")
        return SimilarityGraph(
            kind=str(archive["kind"]),
            domains=[str(d) for d in archive["domains"]],
            rows=np.asarray(archive["rows"], dtype=np.int64),
            cols=np.asarray(archive["cols"], dtype=np.int64),
            weights=np.asarray(archive["weights"], dtype=np.float64),
        )
