"""Persistence for pipeline artifacts.

A deployment runs the expensive stages (graphs, projections, LINE) once
per capture window and reuses the results; this module saves and restores
them. Formats are plain ``.npz`` (numpy) plus small JSON sidecars — no
pickle, so artifacts are safe to share and stable across versions.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.features import FeatureSpace
from repro.embedding.line import LineConfig, LineEmbedding
from repro.errors import DatasetError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.core import EdgeList, VertexTable
from repro.graphs.projection import SimilarityGraph

_FORMAT_VERSION = 1


def save_embedding(embedding: LineEmbedding, path: str | Path) -> None:
    """Write one LINE embedding as ``<path>`` (.npz)."""
    path = Path(path)
    config = asdict(embedding.config)
    np.savez_compressed(
        path,
        vectors=embedding.vectors,
        domains=np.array(embedding.domains, dtype=object),
        kind=np.array(embedding.kind),
        config_json=np.array(json.dumps(config)),
        format_version=np.array(_FORMAT_VERSION),
    )


def load_embedding(path: str | Path) -> LineEmbedding:
    """Read an embedding written by :func:`save_embedding`."""
    with np.load(path, allow_pickle=True) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported embedding format version {version}"
            )
        config = LineConfig(**json.loads(str(archive["config_json"])))
        return LineEmbedding(
            kind=str(archive["kind"]),
            domains=[str(d) for d in archive["domains"]],
            vectors=np.asarray(archive["vectors"], dtype=np.float64),
            config=config,
        )


def save_feature_space(space: FeatureSpace, directory: str | Path) -> None:
    """Write all three view embeddings under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_embedding(space.query, directory / "query.npz")
    save_embedding(space.ip, directory / "ip.npz")
    save_embedding(space.temporal, directory / "temporal.npz")


def load_feature_space(directory: str | Path) -> FeatureSpace:
    """Read a feature space written by :func:`save_feature_space`."""
    directory = Path(directory)
    return FeatureSpace(
        query=load_embedding(directory / "query.npz"),
        ip=load_embedding(directory / "ip.npz"),
        temporal=load_embedding(directory / "temporal.npz"),
    )


def save_bipartite_graph(graph: BipartiteGraph, path: str | Path) -> None:
    """Write one bipartite graph as ``<path>`` (.npz).

    The columnar representation persists directly: both vertex-table
    interners (values as unicode strings plus a type-code column, so
    integer time-window vertices round-trip without pickle) and the
    deduplicated ``(left_id, right_id)`` edge arrays.
    """
    left_values, left_codes = graph.left.to_arrays()
    right_values, right_codes = graph.right.to_arrays()
    lefts, rights = graph.edges.columns()
    np.savez_compressed(
        Path(path),
        kind=np.array(graph.kind),
        left_values=left_values,
        left_codes=left_codes,
        right_values=right_values,
        right_codes=right_codes,
        lefts=lefts,
        rights=rights,
        format_version=np.array(_FORMAT_VERSION),
    )


def load_bipartite_graph(path: str | Path) -> BipartiteGraph:
    """Read a graph written by :func:`save_bipartite_graph`."""
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported bipartite graph format version {version}"
            )
        left = VertexTable.from_arrays(
            archive["left_values"], archive["left_codes"]
        )
        right = VertexTable.from_arrays(
            archive["right_values"], archive["right_codes"]
        )
        edges = EdgeList()
        edges.extend_raw(
            np.asarray(archive["lefts"], dtype=np.int64),
            np.asarray(archive["rights"], dtype=np.int64),
        )
        edges.compact()
        return BipartiteGraph(
            kind=str(archive["kind"]), left=left, right=right, edges=edges
        )


def save_similarity_graph(graph: SimilarityGraph, path: str | Path) -> None:
    """Write one similarity graph as ``<path>`` (.npz)."""
    np.savez_compressed(
        Path(path),
        kind=np.array(graph.kind),
        domains=np.array(graph.domains, dtype=object),
        rows=graph.rows,
        cols=graph.cols,
        weights=graph.weights,
        format_version=np.array(_FORMAT_VERSION),
    )


def load_similarity_graph(path: str | Path) -> SimilarityGraph:
    """Read a graph written by :func:`save_similarity_graph`."""
    with np.load(path, allow_pickle=True) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(f"unsupported graph format version {version}")
        return SimilarityGraph(
            kind=str(archive["kind"]),
            domains=[str(d) for d in archive["domains"]],
            rows=np.asarray(archive["rows"], dtype=np.int64),
            cols=np.asarray(archive["cols"], dtype=np.int64),
            weights=np.asarray(archive["weights"], dtype=np.float64),
        )
