"""SVM-based malicious-domain classifier (paper section 6.2).

A thin, paper-faithful wrapper around
:class:`repro.ml.svm.SupportVectorClassifier`: RBF kernel, penalty
C = 0.09, kernel coefficient gamma = 0.06, labels y=1 malicious / y=0
benign, and a tunable decision threshold on d(x).

In the stage graph this model is fitted by
:class:`repro.core.dataflow.ClassifyStage` and stored under the
``classifier.model`` artifact key.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError
from repro.ml.svm import DEFAULT_CACHE_MB, SupportVectorClassifier

PAPER_PENALTY = 0.09
PAPER_GAMMA = 0.06


class MaliciousDomainClassifier:
    """Binary malicious/benign classifier with the paper's SVM settings.

    Args:
        c: SVM penalty parameter (paper: 0.09).
        gamma: RBF kernel coefficient (paper: 0.06).
        threshold: Decision threshold on d(x). ``None`` (default)
            calibrates the threshold on the training scores to maximize
            F1 — the paper's "we could set a threshold value for d(x)"
            (section 6.2) made concrete. Pass an explicit float (e.g.
            0.0, the SVM's natural boundary) to fix it instead.
        solver: SMO solver variant — ``"cached"`` (default; LRU kernel
            row cache + shrinking) or ``"dense"`` (full Gram matrix
            reference). Both produce the same decision function.
        kernel_cache_mb: Kernel-row cache budget (MiB) for the cached
            solver.
    """

    def __init__(
        self,
        c: float = PAPER_PENALTY,
        gamma: float = PAPER_GAMMA,
        threshold: float | None = None,
        solver: str = "cached",
        kernel_cache_mb: float = DEFAULT_CACHE_MB,
    ) -> None:
        self.threshold = threshold
        self.threshold_: float = 0.0 if threshold is None else threshold
        self._svm = SupportVectorClassifier(
            c=c,
            kernel="rbf",
            gamma=gamma,
            solver=solver,
            kernel_cache_mb=kernel_cache_mb,
        )
        self._fitted = False

    def fit(
        self, features: np.ndarray, labels: np.ndarray
    ) -> "MaliciousDomainClassifier":
        """Train on feature vectors with labels 1=malicious / 0=benign."""
        labels = np.asarray(labels)
        if not np.all(np.isin(np.unique(labels), (0, 1))):
            raise ValueError("labels must be 0 (benign) or 1 (malicious)")
        self._svm.fit(features, labels)
        self._fitted = True
        if self.threshold is None:
            self.threshold_ = self._calibrate_threshold(features, labels)
        else:
            self.threshold_ = self.threshold
        return self

    def _calibrate_threshold(
        self, features: np.ndarray, labels: np.ndarray
    ) -> float:
        """Training-score threshold maximizing F1."""
        scores = self._svm.decision_function(features)
        order = np.argsort(scores)
        sorted_scores = scores[order]
        sorted_labels = np.asarray(labels)[order]
        positives = sorted_labels.sum()
        if positives == 0 or positives == sorted_labels.size:
            return 0.0
        best_threshold, best_f1 = 0.0, -1.0
        # Candidate cuts between consecutive distinct scores.
        candidates = (sorted_scores[:-1] + sorted_scores[1:]) / 2.0
        # Suffix sums: predictions are "malicious" for score >= cut.
        suffix_tp = np.cumsum(sorted_labels[::-1])[::-1]
        suffix_total = np.arange(sorted_labels.size, 0, -1)
        for position, cut in enumerate(candidates):
            tp = suffix_tp[position + 1]
            predicted = suffix_total[position + 1]
            if predicted == 0 or tp == 0:
                continue
            precision = tp / predicted
            recall = tp / positives
            f1 = 2 * precision * recall / (precision + recall)
            if f1 > best_f1:
                best_f1, best_threshold = f1, float(cut)
        return best_threshold

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """d(x) per equation 7 — positive means malicious side."""
        if not self._fitted:
            raise NotFittedError("MaliciousDomainClassifier")
        return self._svm.decision_function(features)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Binary predictions at the (calibrated or fixed) threshold."""
        return (self.decision_function(features) >= self.threshold_).astype(int)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean accuracy at the configured threshold."""
        return float(np.mean(self.predict(features) == np.asarray(labels)))

    @property
    def support_vector_count(self) -> int:
        if not self._fitted:
            raise NotFittedError("MaliciousDomainClassifier")
        return self._svm.support_vector_count


@dataclass(slots=True, frozen=True)
class ClassifierConfig:
    """Classify-stage knobs threaded through the pipeline config.

    None of these affect *what* the paper's model computes for a
    converged fit — ``solver``/``kernel_cache_mb`` trade memory against
    speed — so they stay out of :func:`pipeline_fingerprint` and
    existing checkpoints remain valid. Picklable (frozen dataclass of
    primitives), so :meth:`build` can serve as a process-pool model
    factory for parallel cross-validation.
    """

    c: float = PAPER_PENALTY
    gamma: float = PAPER_GAMMA
    threshold: float | None = None
    solver: str = "cached"
    kernel_cache_mb: float = DEFAULT_CACHE_MB

    def build(self) -> MaliciousDomainClassifier:
        """A fresh, unfitted classifier with these settings."""
        return MaliciousDomainClassifier(
            c=self.c,
            gamma=self.gamma,
            threshold=self.threshold,
            solver=self.solver,
            kernel_cache_mb=self.kernel_cache_mb,
        )
