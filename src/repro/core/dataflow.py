"""The paper's detection dataflow as stage objects over the engine.

This module instantiates :mod:`repro.core.stages` for the actual system
(paper section 3, Figure 2): canonical stage names, the typed artifact
keys every execution path shares, and one :class:`Stage` subclass per
pipeline step::

    ingest   -> graphs.raw          (batch source; chunked source lives
                                     in repro.ingest.runner)
    prune    -> graphs.pruned, domains.order, pruning.report
    project  -> similarity.graphs
    embed    -> features.space
    classify -> classifier.model (+ scores.* when scoring all domains)
    cluster  -> clusters

:func:`detection_graph` assembles them into a validated
:class:`~repro.core.stages.StageGraph`; the batch facade
(:class:`~repro.core.pipeline.MaliciousDomainDetector`), the streaming
refresh, and the checkpointed runner all execute this one graph under
different policies. Each stage's ``save_artifacts`` /
``load_artifacts`` hooks reproduce the pre-engine checkpoint layout
byte for byte, so existing checkpoint directories stay valid.

:func:`pipeline_fingerprint` lives here too: it hashes exactly the
result-affecting configuration, and both checkpointing and serving bind
artifacts to it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.clustering import DomainCluster, DomainClusterer
from repro.core.detector import ClassifierConfig, MaliciousDomainClassifier
from repro.core.features import FeatureSpace, FeatureView
from repro.core.persistence import (
    load_bipartite_graph,
    load_classifier,
    load_feature_space,
    load_similarity_graph,
    save_bipartite_graph,
    save_classifier,
    save_feature_space,
    save_similarity_graph,
)
from repro.core.stages import (
    ArtifactKey,
    ArtifactStore,
    CheckpointManifest,
    ExecutionContext,
    Stage,
    StageGraph,
)
from repro.dns.dhcp import DhcpLog, HostIdentityResolver
from repro.dns.types import DnsQuery, DnsResponse
from repro.embedding.line import LineConfig, LineEmbedding
from repro.errors import ArtifactIntegrityError
from repro.graphs.bipartite import (
    BipartiteGraph,
    build_domain_ip_graph,
    build_query_graphs,
)
from repro.graphs.core import VertexTable
from repro.graphs.projection import SimilarityGraph, project_to_similarity
from repro.graphs.pruning import PruningReport, PruningRules, prune_graphs
from repro.labels.dataset import LabeledDataset
from repro.obs.logging import get_logger
from repro.parallel.executor import ParallelConfig
from repro.parallel.train import train_views

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.pipeline import PipelineConfig

__all__ = [
    "CHECKPOINT_STAGES",
    "PIPELINE_STAGES",
    "STAGE_CLASSIFY",
    "STAGE_CLUSTER",
    "STAGE_EMBED",
    "STAGE_INGEST",
    "STAGE_PROJECT",
    "STAGE_PRUNE",
    "CLASSIFIER",
    "CLUSTERS",
    "DECISION_SCORES",
    "DOMAIN_ORDER",
    "FEATURE_SPACE",
    "GRAPH_FILES",
    "INGEST_CURSOR",
    "PRUNED_GRAPHS",
    "PRUNING_REPORT",
    "RAW_GRAPHS",
    "RECORDS_INGESTED",
    "SCORED_DOMAINS",
    "SIMILARITY_GRAPHS",
    "VERDICTS",
    "BatchGraphStage",
    "ClassifyStage",
    "ClusterStage",
    "EmbedStage",
    "GraphTriple",
    "ProjectStage",
    "PruneStage",
    "detection_graph",
    "detection_stages",
    "line_config_for",
    "load_shared_graphs",
    "pipeline_fingerprint",
    "write_graph_files",
]

_log = get_logger(__name__)

# -- canonical stage names ------------------------------------------------
#
# One vocabulary for spans, metrics, checkpoints, and the CLI: a stage
# named "prune" traces as pipeline.prune, reports
# stage.pipeline.prune.seconds, and checkpoints under 01-prune/.

STAGE_INGEST = "ingest"
STAGE_PRUNE = "prune"
STAGE_PROJECT = "project"
STAGE_EMBED = "embed"
STAGE_CLASSIFY = "classify"
STAGE_CLUSTER = "cluster"

#: Every pipeline stage, in execution order.
PIPELINE_STAGES: tuple[str, ...] = (
    STAGE_INGEST,
    STAGE_PRUNE,
    STAGE_PROJECT,
    STAGE_EMBED,
    STAGE_CLASSIFY,
    STAGE_CLUSTER,
)

#: Checkpointable stages (all of them); kept as a distinct name because
#: the checkpoint layer re-exports it and indexes directories by it.
CHECKPOINT_STAGES: tuple[str, ...] = PIPELINE_STAGES

# -- artifact keys --------------------------------------------------------

#: The three bipartite graphs (HDBG, DIBG, DTBG) over one shared
#: domain interner, in that order.
GraphTriple = tuple[BipartiteGraph, BipartiteGraph, BipartiteGraph]

RAW_GRAPHS: ArtifactKey[GraphTriple] = ArtifactKey("graphs.raw")
RECORDS_INGESTED: ArtifactKey[int] = ArtifactKey("ingest.records")
INGEST_CURSOR: ArtifactKey[int] = ArtifactKey("ingest.cursor")
PRUNED_GRAPHS: ArtifactKey[GraphTriple] = ArtifactKey("graphs.pruned")
DOMAIN_ORDER: ArtifactKey[list[str]] = ArtifactKey("domains.order")
PRUNING_REPORT: ArtifactKey[PruningReport] = ArtifactKey("pruning.report")
SIMILARITY_GRAPHS: ArtifactKey[dict[FeatureView, SimilarityGraph]] = (
    ArtifactKey("similarity.graphs")
)
FEATURE_SPACE: ArtifactKey[FeatureSpace] = ArtifactKey("features.space")
CLASSIFIER: ArtifactKey[MaliciousDomainClassifier] = ArtifactKey(
    "classifier.model"
)
SCORED_DOMAINS: ArtifactKey[list[str]] = ArtifactKey("scores.domains")
DECISION_SCORES: ArtifactKey[np.ndarray] = ArtifactKey("scores.decision")
VERDICTS: ArtifactKey[np.ndarray] = ArtifactKey("scores.verdicts")
CLUSTERS: ArtifactKey[list[DomainCluster]] = ArtifactKey("clusters")

#: On-disk names of the graph-triple artifacts inside a checkpoint.
GRAPH_FILES: tuple[str, str, str] = (
    "host_domain.npz",
    "domain_ip.npz",
    "domain_time.npz",
)

_VIEWS = (FeatureView.QUERY, FeatureView.IP, FeatureView.TEMPORAL)

# Derived, not shared: each view trains from its own seed offset so the
# three views are independent tasks (serial or parallel).
_VIEW_SEED_OFFSETS = {
    FeatureView.QUERY: 0,
    FeatureView.IP: 1,
    FeatureView.TEMPORAL: 2,
}


def line_config_for(base: LineConfig, view: FeatureView) -> LineConfig:
    """Per-view LINE hyperparameters derived from the shared template."""
    return replace(base, seed=base.seed + _VIEW_SEED_OFFSETS[view])


def pipeline_fingerprint(
    config: "PipelineConfig", sources: Mapping[str, object]
) -> str:
    """Hash binding artifacts to one pipeline config + trace source.

    Only result-affecting knobs participate: parallelism settings are
    excluded (embeddings are byte-identical across backends), chunk
    bounds are excluded (chunking never changes outputs). ``sources``
    should identify the input trace (e.g. path and size), so a
    checkpoint directory is never resumed against the wrong capture.
    """
    payload = {
        "time_window_seconds": config.time_window_seconds,
        "pruning": asdict(config.pruning),
        "embedding": asdict(config.embedding),
        "min_similarity": config.min_similarity,
        "views": [view.value for view in config.views],
        "sources": {str(k): str(v) for k, v in sorted(sources.items())},
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


# -- shared graph persistence helpers -------------------------------------


def write_graph_files(staging: Path, graphs: GraphTriple) -> None:
    """Write the graph triple into ``staging`` under the canonical names."""
    for graph, name in zip(graphs, GRAPH_FILES):
        save_bipartite_graph(graph, staging / name)


def load_shared_graphs(directory: Path) -> GraphTriple:
    """Load the three bipartite graphs, re-linking one shared left table.

    The graphs were built over a single domain interner; persistence
    writes each graph's (identical) copy of it, so the loader restores
    one authoritative table and rebinds the other two graphs to it —
    ``fold_records_into_graphs`` requires that identity on resume.
    """
    host, ip_graph, time_graph = (
        load_bipartite_graph(directory / name) for name in GRAPH_FILES
    )
    shared = host.left
    for other in (ip_graph, time_graph):
        if len(other.left) != len(shared):
            raise ArtifactIntegrityError(
                f"checkpointed graphs under {directory} disagree on the "
                "shared domain table"
            )
    ip_graph = BipartiteGraph(
        kind=ip_graph.kind,
        left=shared,
        right=ip_graph.right,
        edges=ip_graph.edges,
    )
    time_graph = BipartiteGraph(
        kind=time_graph.kind,
        left=shared,
        right=time_graph.right,
        edges=time_graph.edges,
    )
    return host, ip_graph, time_graph


# -- stages ---------------------------------------------------------------


class BatchGraphStage(Stage[None, GraphTriple]):
    """In-memory graph construction from materialized record lists.

    The batch source: one pass over the queries builds HDBG + DTBG over
    a shared domain interner, one pass over the responses builds DIBG.
    Not checkpointed — the out-of-core source
    (:class:`repro.ingest.runner.ChunkedIngestStage`) owns persistence.
    """

    name = STAGE_INGEST
    outputs = (RAW_GRAPHS, RECORDS_INGESTED)
    checkpointed = False

    def __init__(
        self,
        queries: Iterable[DnsQuery],
        responses: Iterable[DnsResponse],
        dhcp: DhcpLog | None = None,
        *,
        window_seconds: float = 60.0,
    ) -> None:
        self.queries = queries
        self.responses = responses
        self.dhcp = dhcp
        self.window_seconds = window_seconds

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        identity = (
            HostIdentityResolver(self.dhcp) if self.dhcp is not None else None
        )
        queries = list(self.queries)
        # One shared domain interner across all three views: ids (and
        # therefore every downstream ordering) agree without re-sorting,
        # and HDBG + DTBG come from a single pass.
        domains = VertexTable()
        host_domain, domain_time = build_query_graphs(
            queries,
            identity,
            window_seconds=self.window_seconds,
            domains=domains,
        )
        domain_ip = build_domain_ip_graph(self.responses, domains=domains)
        store.put(RAW_GRAPHS, (host_domain, domain_ip, domain_time))
        store.put(RECORDS_INGESTED, len(queries))


class PruneStage(Stage[GraphTriple, GraphTriple]):
    """Drop over-popular and single-host domains (paper section 4.2).

    A complete pruned checkpoint supersedes the (much larger) raw ingest
    graphs, which are never needed downstream — so resume skips loading
    them entirely.
    """

    name = STAGE_PRUNE
    inputs = (RAW_GRAPHS,)
    outputs = (PRUNED_GRAPHS, DOMAIN_ORDER, PRUNING_REPORT)
    supersedes = (STAGE_INGEST,)

    def __init__(self, rules: PruningRules) -> None:
        self.rules = rules

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        host_domain, domain_ip, domain_time = store.get(RAW_GRAPHS)
        pruned_host, pruned_ip, pruned_time, report = prune_graphs(
            host_domain, domain_ip, domain_time, self.rules
        )
        store.put(PRUNED_GRAPHS, (pruned_host, pruned_ip, pruned_time))
        store.put(PRUNING_REPORT, report)
        store.put(DOMAIN_ORDER, sorted(report.surviving_domains))

    def save_artifacts(
        self, staging: Path, store: ArtifactStore
    ) -> dict[str, object]:
        write_graph_files(staging, store.get(PRUNED_GRAPHS))
        report = store.get(PRUNING_REPORT)
        np.savez_compressed(
            staging / "domains.npz",
            surviving=np.array(store.get(DOMAIN_ORDER), dtype=np.str_),
            dropped_popular=np.array(report.dropped_popular, dtype=np.str_),
            dropped_single_host=np.array(
                report.dropped_single_host, dtype=np.str_
            ),
        )
        return {
            "records_ingested": store.maybe(RECORDS_INGESTED) or 0,
            "total_hosts": report.total_hosts,
            "domains_before": report.domains_before,
        }

    def load_artifacts(
        self,
        directory: Path,
        manifest: CheckpointManifest,
        store: ArtifactStore,
    ) -> None:
        graphs = load_shared_graphs(directory)
        with np.load(directory / "domains.npz") as archive:
            order = [str(d) for d in archive["surviving"]]
            report = PruningReport(
                total_hosts=int(manifest.meta["total_hosts"]),
                domains_before=int(manifest.meta["domains_before"]),
                dropped_popular=[str(d) for d in archive["dropped_popular"]],
                dropped_single_host=[
                    str(d) for d in archive["dropped_single_host"]
                ],
                surviving_domains=set(order),
            )
        store.put(PRUNED_GRAPHS, graphs)
        store.put(DOMAIN_ORDER, order)
        store.put(PRUNING_REPORT, report)
        store.put(
            RECORDS_INGESTED, int(manifest.meta.get("records_ingested", 0))
        )


class ProjectStage(
    Stage[GraphTriple, "dict[FeatureView, SimilarityGraph]"]
):
    """One-mode Jaccard projection of each bipartite view (section 5.1)."""

    name = STAGE_PROJECT
    inputs = (PRUNED_GRAPHS, DOMAIN_ORDER)
    outputs = (SIMILARITY_GRAPHS,)

    def __init__(self, min_similarity: float) -> None:
        self.min_similarity = min_similarity

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        host_domain, domain_ip, domain_time = store.get(PRUNED_GRAPHS)
        order = store.get(DOMAIN_ORDER)
        threshold = self.min_similarity
        similarity = {
            FeatureView.QUERY: project_to_similarity(
                host_domain, order, threshold
            ),
            FeatureView.IP: project_to_similarity(
                domain_ip, order, threshold
            ),
            FeatureView.TEMPORAL: project_to_similarity(
                domain_time, order, threshold
            ),
        }
        store.put(SIMILARITY_GRAPHS, similarity)
        _log.debug(
            "projections_built",
            domains=len(order),
            edges=sum(g.edge_count for g in similarity.values()),
        )

    def save_artifacts(
        self, staging: Path, store: ArtifactStore
    ) -> dict[str, object]:
        for view, graph in store.get(SIMILARITY_GRAPHS).items():
            save_similarity_graph(graph, staging / f"{view.value}.npz")
        return {"domains": len(store.get(DOMAIN_ORDER))}

    def load_artifacts(
        self,
        directory: Path,
        manifest: CheckpointManifest,
        store: ArtifactStore,
    ) -> None:
        similarity = {
            view: load_similarity_graph(directory / f"{view.value}.npz")
            for view in _VIEWS
        }
        store.put(SIMILARITY_GRAPHS, similarity)
        if not store.has(DOMAIN_ORDER) and similarity:
            any_graph = next(iter(similarity.values()))
            store.put(DOMAIN_ORDER, list(any_graph.domains))


class EmbedStage(
    Stage["dict[FeatureView, SimilarityGraph]", FeatureSpace]
):
    """Train LINE per view and assemble the feature space (section 5.2).

    The per-view trainings (and, for ``order="both"``, the per-order
    halves) run under the parallel policy — serially by default, fanned
    out over thread or process workers when configured. The resulting
    vectors are byte-identical either way.
    """

    name = STAGE_EMBED
    inputs = (SIMILARITY_GRAPHS,)
    outputs = (FEATURE_SPACE,)

    def __init__(self, embedding: LineConfig, parallel: ParallelConfig) -> None:
        self.embedding = embedding
        self.parallel = parallel

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        similarity = store.get(SIMILARITY_GRAPHS)
        trained = train_views(
            [
                (view.value, graph, line_config_for(self.embedding, view))
                for view, graph in similarity.items()
            ],
            self.parallel,
            progress=ctx.progress,
        )
        embeddings: dict[FeatureView, LineEmbedding] = {
            view: trained[view.value] for view in similarity
        }
        store.put(
            FEATURE_SPACE,
            FeatureSpace(
                query=embeddings[FeatureView.QUERY],
                ip=embeddings[FeatureView.IP],
                temporal=embeddings[FeatureView.TEMPORAL],
            ),
        )

    def save_artifacts(
        self, staging: Path, store: ArtifactStore
    ) -> dict[str, object]:
        space = store.get(FEATURE_SPACE)
        save_feature_space(space, staging)
        return {"dimension": int(space.query.vectors.shape[1])}

    def load_artifacts(
        self,
        directory: Path,
        manifest: CheckpointManifest,
        store: ArtifactStore,
    ) -> None:
        space = load_feature_space(directory)
        store.put(FEATURE_SPACE, space)
        if not store.has(DOMAIN_ORDER):
            store.put(DOMAIN_ORDER, list(space.query.domains))


class ClassifyStage(Stage[FeatureSpace, MaliciousDomainClassifier]):
    """Fit the paper's SVM on labeled domains (section 6.2).

    Inactive when no labeled dataset is supplied (cluster-only runs).
    With ``score_all`` the stage also scores every surviving domain —
    the checkpointed runner persists those scores so a resumed run
    answers without re-deriving features.
    """

    name = STAGE_CLASSIFY
    inputs = (DOMAIN_ORDER, FEATURE_SPACE)
    outputs = (CLASSIFIER,)

    def __init__(
        self,
        views: Sequence[FeatureView],
        dataset_for: Callable[[list[str]], LabeledDataset] | None,
        *,
        score_all: bool = False,
        classifier: ClassifierConfig | None = None,
    ) -> None:
        self.views = tuple(views)
        self.dataset_for = dataset_for
        self.score_all = score_all
        self.classifier = classifier if classifier is not None else ClassifierConfig()
        if score_all:
            self.outputs = (
                CLASSIFIER,
                SCORED_DOMAINS,
                DECISION_SCORES,
                VERDICTS,
            )

    def active(self, store: ArtifactStore) -> bool:
        return self.dataset_for is not None

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        assert self.dataset_for is not None
        order = list(store.get(DOMAIN_ORDER))
        dataset = self.dataset_for(order)
        space = store.get(FEATURE_SPACE)
        features = space.matrix(dataset.domains, self.views)
        classifier = self.classifier.build().fit(features, dataset.labels)
        store.put(CLASSIFIER, classifier)
        _log.info(
            "classifier_fitted",
            samples=len(dataset.domains),
            support_vectors=classifier.support_vector_count,
            solver=self.classifier.solver,
        )
        if self.score_all:
            matrix = space.matrix(order, self.views)
            store.put(SCORED_DOMAINS, order)
            store.put(DECISION_SCORES, classifier.decision_function(matrix))
            store.put(VERDICTS, classifier.predict(matrix))

    def save_artifacts(
        self, staging: Path, store: ArtifactStore
    ) -> dict[str, object]:
        save_classifier(store.get(CLASSIFIER), staging / "classifier.npz")
        domains = store.get(SCORED_DOMAINS)
        np.savez_compressed(
            staging / "scores.npz",
            domains=np.array(domains, dtype=np.str_),
            scores=store.get(DECISION_SCORES),
            verdicts=store.get(VERDICTS),
        )
        return {
            "domains": len(domains),
            "solver": self.classifier.solver,
            "kernel_cache_mb": self.classifier.kernel_cache_mb,
        }

    def load_artifacts(
        self,
        directory: Path,
        manifest: CheckpointManifest,
        store: ArtifactStore,
    ) -> None:
        store.put(CLASSIFIER, load_classifier(directory / "classifier.npz"))
        with np.load(directory / "scores.npz") as archive:
            store.put(
                SCORED_DOMAINS, [str(d) for d in archive["domains"]]
            )
            store.put(
                DECISION_SCORES,
                np.asarray(archive["scores"], dtype=np.float64),
            )
            store.put(
                VERDICTS, np.asarray(archive["verdicts"], dtype=np.int64)
            )


class ClusterStage(Stage[FeatureSpace, "list[DomainCluster]"]):
    """X-Means clustering over the embedded domains (section 7)."""

    name = STAGE_CLUSTER
    inputs = (DOMAIN_ORDER, FEATURE_SPACE)
    outputs = (CLUSTERS,)

    def __init__(
        self,
        views: Sequence[FeatureView],
        *,
        k_max: int = 60,
        seed: int = 0,
        k_min: int = 2,
        domains: Sequence[str] | None = None,
    ) -> None:
        self.views = tuple(views)
        self.k_max = k_max
        self.seed = seed
        self.k_min = k_min
        self.domains = None if domains is None else list(domains)

    def _order(self, store: ArtifactStore) -> list[str]:
        if self.domains is not None:
            return list(self.domains)
        scored = store.maybe(SCORED_DOMAINS)
        return list(scored) if scored is not None else store.get(DOMAIN_ORDER)

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        order = self._order(store)
        features = store.get(FEATURE_SPACE).matrix(order, self.views)
        clusterer = DomainClusterer(
            k_min=self.k_min, k_max=self.k_max, seed=self.seed
        )
        clusters = clusterer.fit(order, features)
        store.put(CLUSTERS, clusters)
        _log.info(
            "clusters_mined", domains=len(order), clusters=len(clusters)
        )

    def save_artifacts(
        self, staging: Path, store: ArtifactStore
    ) -> dict[str, object]:
        order = self._order(store)
        clusters = store.get(CLUSTERS)
        index_of = {domain: i for i, domain in enumerate(order)}
        labels = np.full(len(order), -1, dtype=np.int64)
        for cluster in clusters:
            for member in cluster.domains:
                labels[index_of[member]] = cluster.cluster_id
        centers = (
            np.stack([c.center for c in clusters])
            if clusters
            else np.empty((0, 0), dtype=np.float64)
        )
        np.savez_compressed(
            staging / "clusters.npz",
            labels=labels,
            centers=centers,
            cluster_ids=np.array(
                [c.cluster_id for c in clusters], dtype=np.int64
            ),
        )
        return {"clusters": len(clusters)}

    def load_artifacts(
        self,
        directory: Path,
        manifest: CheckpointManifest,
        store: ArtifactStore,
    ) -> None:
        order = self._order(store)
        with np.load(directory / "clusters.npz") as archive:
            labels = np.asarray(archive["labels"], dtype=np.int64)
            centers = np.asarray(archive["centers"], dtype=np.float64)
            cluster_ids = np.asarray(archive["cluster_ids"], dtype=np.int64)
        store.put(
            CLUSTERS,
            [
                DomainCluster(
                    cluster_id=int(cid),
                    domains=[
                        d
                        for d, label in zip(order, labels)
                        if label == cid
                    ],
                    center=centers[position],
                )
                for position, cid in enumerate(cluster_ids)
            ],
        )


# -- graph assembly -------------------------------------------------------


def detection_stages(
    config: "PipelineConfig",
    *,
    source: Stage[Any, Any] | None = None,
    dataset_for: Callable[[list[str]], LabeledDataset] | None = None,
    score_all: bool = False,
    cluster_k_max: int | None = None,
    cluster_seed: int = 0,
) -> list[Stage[Any, Any]]:
    """The paper's stage sequence for one configuration.

    Args:
        config: Pipeline knobs; each stage captures only the knobs it
            uses.
        source: Ingest stage producing the raw graph triple, or ``None``
            when the caller seeds :data:`RAW_GRAPHS` into the store
            (streaming refresh, ``adopt_graphs``).
        dataset_for: Maps the surviving domain list to a labeled
            dataset; ``None`` leaves the classify stage inactive.
        score_all: Score every surviving domain after fitting (the
            checkpointed runner's contract).
        cluster_k_max: When set, append the X-Means stage with this
            ``k_max``.
        cluster_seed: Seed for the cluster stage.
    """
    stages: list[Stage[Any, Any]] = []
    if source is not None:
        stages.append(source)
    stages.append(PruneStage(config.pruning))
    stages.append(ProjectStage(config.min_similarity))
    stages.append(EmbedStage(config.embedding, config.parallel))
    stages.append(
        ClassifyStage(
            config.views,
            dataset_for,
            score_all=score_all,
            classifier=config.classifier,
        )
    )
    if cluster_k_max is not None:
        stages.append(
            ClusterStage(
                config.views, k_max=cluster_k_max, seed=cluster_seed
            )
        )
    return stages


def detection_graph(
    config: "PipelineConfig",
    *,
    source: Stage[Any, Any] | None = None,
    dataset_for: Callable[[list[str]], LabeledDataset] | None = None,
    score_all: bool = False,
    cluster_k_max: int | None = None,
    cluster_seed: int = 0,
) -> StageGraph:
    """Validated stage graph for the full detection dataflow.

    Without a ``source`` stage the raw graph triple is declared an
    initial artifact — the caller must seed it into the store.
    """
    stages = detection_stages(
        config,
        source=source,
        dataset_for=dataset_for,
        score_all=score_all,
        cluster_k_max=cluster_k_max,
        cluster_seed=cluster_seed,
    )
    initial: tuple[ArtifactKey[Any], ...] = (
        () if source is not None else (RAW_GRAPHS, RECORDS_INGESTED)
    )
    return StageGraph(stages, initial=initial)
