"""Domain feature vectors from per-view graph embeddings (section 6.1).

Each domain gets three embedding vectors — one per similarity view
(querying behavior, IP resolving, temporal) — concatenated into the final
x in R^{3k}:

    x = [V_1..V_k | V_{k+1}..V_{2k} | V_{2k+1}..V_{3k}]

Domains missing from a view (e.g. NXDOMAIN-only domains never enter the
IP graph) contribute a zero block for that view: "no evidence in this
view" rather than a random vector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.embedding.line import LineEmbedding
from repro.errors import DatasetError


class FeatureView(enum.Enum):
    """The three behavioral views of section 4.2."""

    QUERY = "query"
    IP = "ip"
    TEMPORAL = "temporal"


_VIEW_ORDER = (FeatureView.QUERY, FeatureView.IP, FeatureView.TEMPORAL)


@dataclass(slots=True)
class FeatureSpace:
    """Bundles the three per-view embeddings into one feature space."""

    query: LineEmbedding
    ip: LineEmbedding
    temporal: LineEmbedding

    def _embedding(self, view: FeatureView) -> LineEmbedding:
        if view is FeatureView.QUERY:
            return self.query
        if view is FeatureView.IP:
            return self.ip
        return self.temporal

    @property
    def dimension(self) -> int:
        """Total feature dimension (3k)."""
        return sum(self._embedding(view).dimension for view in _VIEW_ORDER)

    @property
    def known_domains(self) -> set[str]:
        """Domains present in at least one view."""
        merged: set[str] = set()
        for view in _VIEW_ORDER:
            merged |= set(self._embedding(view).domains)
        return merged

    def matrix(
        self,
        domains: Sequence[str],
        views: Sequence[FeatureView] = _VIEW_ORDER,
    ) -> np.ndarray:
        """Feature matrix for ``domains`` using the selected views.

        Selecting a single view reproduces the paper's per-view ablation
        (Figure 7); the default concatenates all three (Figure 6).
        """
        if not views:
            raise DatasetError("at least one feature view is required")
        blocks = [
            self._embedding(view).matrix(list(domains)) for view in views
        ]
        return np.hstack(blocks)

    def vector(self, domain: str) -> np.ndarray:
        """The full 3k-dim feature vector of one domain."""
        return self.matrix([domain])[0]

    def coverage(self, domains: Sequence[str]) -> dict[FeatureView, float]:
        """Fraction of ``domains`` present in each view (diagnostics)."""
        out: dict[FeatureView, float] = {}
        for view in _VIEW_ORDER:
            index = self._embedding(view).domain_index
            hits = sum(1 for domain in domains if domain in index)
            out[view] = hits / len(domains) if domains else 0.0
        return out
