"""Streaming / incremental detection.

The paper motivates detecting malicious domains "in real-time" and
"during the very early stage of their operations" (sections 1-2). A
batch pipeline recomputes everything from a month of logs; this module
supports the deployment mode where logs arrive continuously:

* :class:`IncrementalGraphBuilder` folds new query/response batches into
  the three bipartite graphs without reprocessing old traffic;
* :class:`StreamingDetector` wraps it with periodic refresh — on demand
  (or every ``refresh_interval`` seconds of trace time) it re-prunes,
  re-projects, re-embeds, and re-fits the classifier, so scores track
  the evolving behavioral graph.

The refresh is a full recomputation of the *model* over incrementally
maintained *graphs*: graph accumulation is the part that must keep up
with line-rate traffic, and it is O(1) per record here.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.dataflow import (
    RAW_GRAPHS,
    RECORDS_INGESTED,
    detection_graph,
)
from repro.core.pipeline import MaliciousDomainDetector, PipelineConfig
from repro.core.stages import ArtifactStore, IncrementalPolicy
from repro.parallel.executor import ParallelConfig
from repro.dns.dhcp import DhcpLog, HostIdentityResolver
from repro.dns.names import is_valid_domain_name
from repro.dns.psl import PublicSuffixList, default_psl
from repro.dns.types import DnsQuery, DnsResponse
from repro.errors import DomainNameError, NotFittedError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.core import VertexTable
from repro.labels.dataset import LabeledDataset
from repro.obs.logging import get_logger
from repro.obs.metrics import default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.ingest.chunking import ChunkedTraceReader
    from repro.serve.registry import ModelRegistry

_log = get_logger(__name__)

# Cache-miss marker for _e2ld_cache: a cached value of None is a valid
# entry ("qname has no registrable domain"), so missing keys need their
# own sentinel rather than any in-band string value.
_CACHE_MISS: object = object()


class IncrementalGraphBuilder:
    """Maintains the three bipartite graphs under a stream of records."""

    def __init__(
        self,
        dhcp: DhcpLog | None = None,
        time_window_seconds: float = 60.0,
        psl: PublicSuffixList | None = None,
    ) -> None:
        self._identity = HostIdentityResolver(dhcp) if dhcp else None
        self._window = time_window_seconds
        self._psl = psl or default_psl()
        # qname -> interned domain id (or None when not aggregatable);
        # one shared domain table keeps ids aligned across the views.
        self._domains = VertexTable()
        self._domain_id_cache: dict[str, int | None] = {}
        self.host_domain = BipartiteGraph(kind="host", left=self._domains)
        self.domain_ip = BipartiteGraph(kind="ip", left=self._domains)
        self.domain_time = BipartiteGraph(kind="time", left=self._domains)
        self.records_ingested = 0
        self.latest_timestamp = 0.0

    def _domain_id(self, qname: str) -> int | None:
        cached = self._domain_id_cache.get(qname, _CACHE_MISS)
        if cached is not _CACHE_MISS:
            return cached  # type: ignore[return-value]
        did: int | None = None
        if is_valid_domain_name(qname):
            try:
                did = self._domains.intern(self._psl.registered_domain(qname))
            except DomainNameError:
                did = None
        self._domain_id_cache[qname] = did
        return did

    def ingest(
        self, records: Iterable[DnsQuery | DnsResponse]
    ) -> int:
        """Fold a batch of records into the graphs; returns batch size."""
        count = 0
        host_edges = self.host_domain.edges
        time_edges = self.domain_time.edges
        ip_edges = self.domain_ip.edges
        intern_host = self.host_domain.right.intern
        intern_window = self.domain_time.right.intern
        intern_ip = self.domain_ip.right.intern
        for record in records:
            count += 1
            self.records_ingested += 1
            self.latest_timestamp = max(self.latest_timestamp, record.timestamp)
            did = self._domain_id(record.qname)
            if did is None:
                continue
            if isinstance(record, DnsQuery):
                if self._identity is not None:
                    host = self._identity.resolve_or_ip(
                        record.source_ip, record.timestamp
                    )
                else:
                    host = record.source_ip
                host_edges.add(did, intern_host(host))
                time_edges.add(
                    did, intern_window(int(record.timestamp // self._window))
                )
            elif isinstance(record, DnsResponse) and not record.nxdomain:
                for ip in record.resolved_ips:
                    ip_edges.add(did, intern_ip(ip))
        # Metrics once per batch, never per record. Eager-mode edge
        # buffers keep exact edge/vertex counters incrementally, so each
        # gauge read below is O(1) — not a sum over the adjacency as the
        # old dict-of-sets representation required.
        registry = default_registry()
        registry.counter("streaming.records_ingested").inc(count)
        registry.gauge("streaming.host_domain.edges").set(
            self.host_domain.edge_count
        )
        registry.gauge("streaming.domain_ip.edges").set(self.domain_ip.edge_count)
        registry.gauge("streaming.domain_time.edges").set(
            self.domain_time.edge_count
        )
        registry.gauge("streaming.domains").set(self.host_domain.domain_count)
        return count


class StreamingDetector:
    """Continuously updated detector over a record stream.

    Usage::

        stream = StreamingDetector(config, dhcp=dhcp)
        stream.ingest(first_hour_records)
        stream.refresh(labeled_dataset)      # build model
        stream.ingest(more_records)          # cheap, O(1)/record
        scores = stream.score(domains)       # uses current model
        stream.refresh(labeled_dataset)      # fold new behavior in
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        dhcp: DhcpLog | None = None,
        parallel: ParallelConfig | None = None,
    ) -> None:
        """Args:
            config: Pipeline knobs for each refresh's model rebuild.
            dhcp: Optional DHCP log for host-identity resolution.
            parallel: Overrides ``config.parallel`` for the embedding
                stage of every refresh — the knob that bounds
                model-refresh latency in deployments where traffic keeps
                arriving while the model retrains.
        """
        self.config = config or PipelineConfig()
        if parallel is not None:
            self.config = replace(self.config, parallel=parallel)
        self.builder = IncrementalGraphBuilder(
            dhcp=dhcp, time_window_seconds=self.config.time_window_seconds
        )
        self._detector: MaliciousDomainDetector | None = None
        self.refreshes = 0

    def ingest(self, records: Iterable[DnsQuery | DnsResponse]) -> int:
        """Feed new traffic into the behavioral graphs."""
        return self.builder.ingest(records)

    def ingest_stream(self, reader: "ChunkedTraceReader") -> int:
        """Drain a chunked trace reader into the behavioral graphs.

        Batches flow through :meth:`ingest` one chunk at a time, so peak
        memory stays bounded by the reader's chunk policy regardless of
        trace size. The reader's monotone cursor advances as chunks are
        consumed — callers that persist it (e.g. alongside a model
        publish) can reopen the trace with
        ``ChunkedTraceReader(path, start_record=cursor)`` after a
        restart and continue exactly where ingestion stopped. Returns
        the number of records ingested from this call.
        """
        total = 0
        for batch in reader:
            total += self.ingest(batch.records)
        return total

    def refresh(self, dataset: LabeledDataset) -> "StreamingDetector":
        """Rebuild projections, embeddings, and the classifier.

        Labeled domains missing from the current graphs contribute
        zero-filled feature blocks (no behavioral evidence *yet*) — they
        gain real features at the next refresh after they appear.
        """
        started = time.perf_counter()
        # Same stage graph as the batch and checkpointed paths, under
        # fold semantics: the store is seeded with the incrementally
        # maintained graphs and the model stages recompute over them.
        store = ArtifactStore()
        store.put(
            RAW_GRAPHS,
            (
                self.builder.host_domain,
                self.builder.domain_ip,
                self.builder.domain_time,
            ),
        )
        store.put(RECORDS_INGESTED, self.builder.records_ingested)
        graph = detection_graph(
            self.config, dataset_for=lambda _order: dataset
        )
        graph.execute(store, IncrementalPolicy())
        detector = MaliciousDomainDetector.from_store(self.config, store)
        self._detector = detector
        self.refreshes += 1
        elapsed = time.perf_counter() - started
        registry = default_registry()
        registry.histogram("streaming.refresh.seconds").observe(elapsed)
        registry.counter("streaming.refreshes").inc()
        _log.info(
            "refresh_done",
            refresh=self.refreshes,
            domains=len(detector.domains),
            records_ingested=self.builder.records_ingested,
            seconds=elapsed,
            embedding_backend=self.config.parallel.backend,
            embedding_workers=self.config.parallel.resolved_workers(),
            embedding_kernel=self.config.embedding.kernel,
        )
        return self

    @property
    def detector(self) -> MaliciousDomainDetector:
        if self._detector is None:
            raise NotFittedError("StreamingDetector.refresh")
        return self._detector

    def publish(self, registry: "ModelRegistry") -> int:
        """Publish the current model as a new bundle version.

        The refresh -> publish path is how a streaming deployment feeds
        the serving layer: each call packages the most recent refresh's
        classifier + feature matrix into a
        :class:`~repro.serve.bundle.ModelBundle` and atomically adds it
        to ``registry``, where a running
        :class:`~repro.serve.service.ScoringService` picks it up on its
        next ``/admin/reload``. Returns the new version number and
        updates the ``serve.model_version`` gauge.
        """
        from repro.serve.bundle import ModelBundle

        detector = self.detector  # raises NotFittedError before refresh()
        bundle = ModelBundle.from_detector(
            detector,
            metrics={
                "refreshes": float(self.refreshes),
                "records_ingested": float(self.builder.records_ingested),
            },
        )
        version = registry.publish(bundle)
        default_registry().gauge("serve.model_version").set(version)
        _log.info(
            "model_published",
            version=version,
            refresh=self.refreshes,
            domains=len(detector.domains),
            registry=str(registry.root),
        )
        return version

    def score(self, domains: list[str]) -> np.ndarray:
        """d(x) under the most recent refresh."""
        return self.detector.decision_scores(domains)

    @property
    def known_domains(self) -> list[str]:
        """Domains in the current model's vertex set."""
        return self.detector.domains
