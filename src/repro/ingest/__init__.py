"""Memory-bounded, checkpointed, resumable trace ingestion.

The front end for captures too large to materialize in memory:

* :class:`~repro.ingest.chunking.ChunkedTraceReader` streams a trace as
  bounded :class:`~repro.ingest.chunking.RecordBatch` chunks with a
  monotone resume cursor;
* :class:`~repro.ingest.checkpoint.PipelineCheckpointer` persists each
  pipeline stage as a typed ``.npz`` + SHA-256 manifest checkpoint;
* :class:`~repro.ingest.runner.CheckpointedPipeline` drives the full
  detection pipeline over chunks, restarting from the last complete
  stage after a crash with byte-identical outputs to a cold run.

See ``docs/ingestion.md``.
"""

from repro.ingest.checkpoint import (
    CHECKPOINT_STAGES,
    PipelineCheckpointer,
    StageManifest,
)
from repro.ingest.chunking import ChunkedTraceReader, ChunkPolicy, RecordBatch
from repro.ingest.runner import (
    CheckpointedPipeline,
    ChunkedIngestStage,
    IngestConfig,
    PipelineOutcome,
    pipeline_fingerprint,
)

__all__ = [
    "CHECKPOINT_STAGES",
    "ChunkPolicy",
    "ChunkedIngestStage",
    "ChunkedTraceReader",
    "CheckpointedPipeline",
    "IngestConfig",
    "PipelineCheckpointer",
    "PipelineOutcome",
    "RecordBatch",
    "StageManifest",
    "pipeline_fingerprint",
]
