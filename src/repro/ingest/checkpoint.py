"""Stage checkpoints: crash-safe persistence between pipeline stages.

A :class:`PipelineCheckpointer` manages one checkpoint directory with a
subdirectory per completed stage::

    <dir>/00-ingest/    manifest.json + graph .npz artifacts (+ cursor)
    <dir>/01-prune/     manifest.json + pruned graphs + report
    <dir>/02-project/   manifest.json + similarity graphs
    <dir>/03-embed/     manifest.json + per-view embeddings
    <dir>/04-classify/  manifest.json + classifier + verdicts
    <dir>/05-cluster/   manifest.json + cluster assignments

Integrity follows the ``repro.serve`` bundle pattern: every artifact is
a typed ``.npz`` written and read with ``allow_pickle=False``; the
manifest records each file's SHA-256 and is written **last** inside a
staging directory that is atomically renamed into place — an
interrupted save can never masquerade as a complete checkpoint. On
load, schema version, configuration fingerprint, and every checksum are
re-verified; any mismatch raises
:class:`~repro.errors.ArtifactIntegrityError` instead of resuming from
a torn or tampered state.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Mapping

# Canonical stage names live with the stage objects themselves
# (repro.core.dataflow); checkpoint directories are indexed by the same
# vocabulary and the historical re-exports below keep old imports alive.
from repro.core.dataflow import (
    CHECKPOINT_STAGES,
    STAGE_CLASSIFY,
    STAGE_CLUSTER,
    STAGE_EMBED,
    STAGE_INGEST,
    STAGE_PROJECT,
    STAGE_PRUNE,
)
from repro.errors import ArtifactIntegrityError, IngestError
from repro.obs.logging import get_logger
from repro.obs.metrics import default_registry

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CHECKPOINT_STAGES",
    "STAGE_INGEST",
    "STAGE_PRUNE",
    "STAGE_PROJECT",
    "STAGE_EMBED",
    "STAGE_CLASSIFY",
    "STAGE_CLUSTER",
    "StageManifest",
    "PipelineCheckpointer",
]

_log = get_logger(__name__)

CHECKPOINT_SCHEMA_VERSION = 1
MANIFEST_FILENAME = "manifest.json"


def _sha256(path: Path) -> str:
    """Hex SHA-256 of a file, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(slots=True)
class StageManifest:
    """Integrity and provenance record for one stage checkpoint.

    Attributes:
        stage: Stage name (one of :data:`CHECKPOINT_STAGES`).
        schema_version: Checkpoint format version; loaders reject
            mismatches.
        fingerprint: Opaque hash binding the checkpoint to one pipeline
            configuration + trace source; resuming under a different
            fingerprint is refused.
        created_at: Unix timestamp of the save.
        complete: False only for rolling mid-stage checkpoints (the
            ingest stage saves every few chunks); a resumed run
            continues such a stage from ``meta["cursor"]`` instead of
            skipping past it.
        files: Artifact filename -> hex SHA-256, verified on load.
        meta: Small JSON-safe stage payload (ingest cursor, domain
            counts, ...).
    """

    stage: str
    schema_version: int = CHECKPOINT_SCHEMA_VERSION
    fingerprint: str = ""
    created_at: float = 0.0
    complete: bool = True
    files: dict[str, str] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "StageManifest":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArtifactIntegrityError(
                f"unreadable checkpoint manifest: {exc}"
            ) from exc
        if not isinstance(raw, dict) or "stage" not in raw:
            raise ArtifactIntegrityError(
                "checkpoint manifest must be a JSON object with a stage"
            )
        known = {f: raw[f] for f in cls.__dataclass_fields__ if f in raw}
        return cls(**known)


class PipelineCheckpointer:
    """Saves, verifies, and resumes per-stage pipeline checkpoints.

    Args:
        directory: Checkpoint root (created on first save).
        fingerprint: Binds checkpoints to one (pipeline config, trace
            source) pair — see
            :func:`repro.core.dataflow.pipeline_fingerprint`.
    """

    def __init__(self, directory: str | Path, fingerprint: str = "") -> None:
        self.root = Path(directory)
        self.fingerprint = fingerprint

    # -- layout ----------------------------------------------------------

    def stage_dir(self, stage: str) -> Path:
        """Final directory of one stage's checkpoint."""
        return self.root / f"{CHECKPOINT_STAGES.index(stage):02d}-{stage}"

    def has(self, stage: str) -> bool:
        """True when a (possibly partial) checkpoint exists for ``stage``."""
        return (self.stage_dir(stage) / MANIFEST_FILENAME).is_file()

    def total_bytes(self) -> int:
        """Total size of every file under the checkpoint root."""
        if not self.root.is_dir():
            return 0
        return sum(
            entry.stat().st_size
            for entry in self.root.rglob("*")
            if entry.is_file()
        )

    # -- saving ----------------------------------------------------------

    def save(
        self,
        stage: str,
        populate: Callable[[Path], None],
        meta: Mapping[str, object] | None = None,
        *,
        complete: bool = True,
    ) -> Path:
        """Write one stage checkpoint atomically; returns its directory.

        ``populate`` receives a staging directory and writes the stage's
        ``.npz`` artifacts into it. Every file present afterwards is
        hashed into the manifest, the manifest lands last, and the
        staging directory is renamed over any previous checkpoint for
        the stage — so a crash at any point leaves either the old
        complete checkpoint or none, never a torn one.
        """
        if stage not in CHECKPOINT_STAGES:
            raise IngestError(f"unknown checkpoint stage {stage!r}")
        final = self.stage_dir(stage)
        staging = self.root / f".{stage}.staging"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            populate(staging)
            manifest = StageManifest(
                stage=stage,
                fingerprint=self.fingerprint,
                created_at=time.time(),
                complete=complete,
                files={
                    entry.name: _sha256(entry)
                    for entry in sorted(staging.iterdir())
                    if entry.is_file()
                },
                meta=dict(meta or {}),
            )
            (staging / MANIFEST_FILENAME).write_text(
                manifest.to_json(), encoding="utf-8"
            )
            if final.exists():
                shutil.rmtree(final)
            os.replace(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        total = self.total_bytes()
        default_registry().gauge("checkpoint.bytes").set(total)
        _log.info(
            "checkpoint_saved",
            stage=stage,
            complete=complete,
            files=len(manifest.files),
            total_bytes=total,
        )
        return final

    # -- loading ---------------------------------------------------------

    def verify(self, stage: str) -> tuple[Path, StageManifest]:
        """Integrity-check one stage checkpoint; returns (dir, manifest).

        Raises:
            ArtifactIntegrityError: Missing/unreadable manifest, schema
                or fingerprint mismatch, missing artifact, or checksum
                mismatch. A checkpoint that fails here is never loaded.
        """
        directory = self.stage_dir(stage)
        manifest_path = directory / MANIFEST_FILENAME
        if not manifest_path.is_file():
            raise ArtifactIntegrityError(
                f"no checkpoint manifest for stage {stage!r} under {self.root}"
            )
        manifest = StageManifest.from_json(
            manifest_path.read_text(encoding="utf-8")
        )
        if manifest.stage != stage:
            raise ArtifactIntegrityError(
                f"checkpoint under {directory} records stage "
                f"{manifest.stage!r}, expected {stage!r}"
            )
        if manifest.schema_version != CHECKPOINT_SCHEMA_VERSION:
            raise ArtifactIntegrityError(
                "unsupported checkpoint schema version "
                f"{manifest.schema_version}"
            )
        if self.fingerprint and manifest.fingerprint != self.fingerprint:
            raise ArtifactIntegrityError(
                f"checkpoint for stage {stage!r} was written under a "
                "different pipeline configuration or trace source; "
                "refusing to resume from it"
            )
        for name, expected in manifest.files.items():
            if name == MANIFEST_FILENAME:
                continue
            artifact = directory / name
            if not artifact.is_file():
                raise ArtifactIntegrityError(
                    f"checkpoint artifact missing: {artifact}"
                )
            actual = _sha256(artifact)
            if actual != expected:
                raise ArtifactIntegrityError(
                    f"checksum mismatch for {artifact}: manifest "
                    f"{expected[:12]}..., file {actual[:12]}..."
                )
        return directory, manifest

    def peek(self, stage: str) -> StageManifest | None:
        """Read one stage's manifest without hashing its artifacts.

        For inspection only (``repro-dns describe``): no checksum or
        fingerprint verification happens, so never resume from a peeked
        checkpoint — use :meth:`verify` for that. Returns ``None`` when
        the stage has no checkpoint.
        """
        manifest_path = self.stage_dir(stage) / MANIFEST_FILENAME
        if not manifest_path.is_file():
            return None
        return StageManifest.from_json(
            manifest_path.read_text(encoding="utf-8")
        )

    def latest(self) -> tuple[str, StageManifest] | None:
        """The most advanced existing checkpoint, verified.

        Returns ``(stage, manifest)`` for the latest stage that has a
        checkpoint, or ``None`` when the directory holds none. The
        returned checkpoint may be partial (``manifest.complete`` is
        False for rolling ingest saves).
        """
        found: tuple[str, StageManifest] | None = None
        for stage in CHECKPOINT_STAGES:
            if self.has(stage):
                __, manifest = self.verify(stage)
                found = (stage, manifest)
        return found

    def invalidate_after(self, stage: str) -> None:
        """Drop checkpoints for every stage after ``stage``."""
        position = CHECKPOINT_STAGES.index(stage)
        for later in CHECKPOINT_STAGES[position + 1 :]:
            directory = self.stage_dir(later)
            if directory.exists():
                shutil.rmtree(directory)
