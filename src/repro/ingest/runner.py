"""Checkpointed out-of-core pipeline runner.

:class:`CheckpointedPipeline` drives the full detection pipeline over a
chunked trace with a stage checkpoint after each expensive step::

    ingest -> prune -> project -> embed -> classify -> cluster

Each stage persists its output through
:class:`~repro.ingest.checkpoint.PipelineCheckpointer`; a crashed or
killed run restarts from its last complete checkpoint with
**byte-identical** outputs to a cold run. Two properties make that
guarantee hold:

* graph accumulation is order-preserving and idempotent under
  checkpoint/restore — the columnar edge buffers dedup to the same
  first-occurrence order whether records arrived in one pass or across
  a save/load boundary, and vertex interners persist their ids exactly;
* every downstream stage is a pure function of its checkpointed inputs
  (projection edge order is canonicalized, LINE is seeded, the SVM and
  X-Means are deterministic), so recomputation from any prefix of
  checkpoints reproduces the suffix bit-for-bit.

The ingest stage additionally writes *rolling* partial checkpoints
(every ``checkpoint_every_chunks`` chunks) carrying the reader's
monotone record cursor, so even a crash mid-ingest loses at most a few
chunks of work rather than the whole pass.
"""

from __future__ import annotations

import hashlib
import json
import resource
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Callable, Mapping

import numpy as np

from repro.core.clustering import DomainCluster
from repro.core.features import FeatureView
from repro.core.persistence import (
    load_bipartite_graph,
    load_classifier,
    load_feature_space,
    load_similarity_graph,
    save_bipartite_graph,
    save_classifier,
    save_feature_space,
    save_similarity_graph,
)
from repro.core.pipeline import MaliciousDomainDetector, PipelineConfig
from repro.dns.dhcp import DhcpLog, HostIdentityResolver
from repro.errors import ArtifactIntegrityError, IngestError
from repro.graphs.bipartite import BipartiteGraph, fold_records_into_graphs
from repro.graphs.core import VertexTable
from repro.graphs.pruning import PruningReport
from repro.ingest.checkpoint import (
    STAGE_CLASSIFY,
    STAGE_CLUSTER,
    STAGE_EMBED,
    STAGE_INGEST,
    STAGE_PROJECT,
    STAGE_PRUNE,
    PipelineCheckpointer,
)
from repro.ingest.chunking import ChunkedTraceReader, ChunkPolicy
from repro.labels.dataset import LabeledDataset
from repro.obs.logging import get_logger
from repro.obs.metrics import default_registry

__all__ = [
    "IngestConfig",
    "PipelineOutcome",
    "CheckpointedPipeline",
    "pipeline_fingerprint",
]

_log = get_logger(__name__)

_VIEWS = (FeatureView.QUERY, FeatureView.IP, FeatureView.TEMPORAL)
_GRAPH_FILES = ("host_domain.npz", "domain_ip.npz", "domain_time.npz")


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (ru_maxrss: KiB on Linux, bytes on mac)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1 << 20 if sys.platform == "darwin" else 1 << 10
    return peak / divisor


def pipeline_fingerprint(
    config: PipelineConfig, sources: Mapping[str, object]
) -> str:
    """Hash binding checkpoints to one pipeline config + trace source.

    Only result-affecting knobs participate: parallelism settings are
    excluded (embeddings are byte-identical across backends), chunk
    bounds are excluded (chunking never changes outputs). ``sources``
    should identify the input trace (e.g. path and size), so a
    checkpoint directory is never resumed against the wrong capture.
    """
    payload = {
        "time_window_seconds": config.time_window_seconds,
        "pruning": asdict(config.pruning),
        "embedding": asdict(config.embedding),
        "min_similarity": config.min_similarity,
        "views": [view.value for view in config.views],
        "sources": {str(k): str(v) for k, v in sorted(sources.items())},
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


@dataclass(slots=True)
class IngestConfig:
    """Chunked-ingestion knobs.

    Attributes:
        chunk: Per-chunk record/time bounds.
        checkpoint_every_chunks: Rolling ingest-checkpoint cadence; 0
            disables mid-ingest checkpoints (one is still written when
            ingest completes, if a checkpointer is attached).
    """

    chunk: ChunkPolicy = field(default_factory=ChunkPolicy)
    checkpoint_every_chunks: int = 8

    def validate(self) -> None:
        self.chunk.validate()
        if self.checkpoint_every_chunks < 0:
            raise IngestError(
                "checkpoint_every_chunks must be non-negative, got "
                f"{self.checkpoint_every_chunks}"
            )


@dataclass(slots=True)
class PipelineOutcome:
    """Everything a checkpointed run produced.

    Attributes:
        detector: The fully materialized detector (graphs through
            classifier, depending on the stages that ran).
        domains: Scored domains in canonical (sorted) order.
        scores: ``decision_function`` value per domain (empty when no
            labeled dataset was supplied).
        verdicts: 1 = malicious, 0 = benign, per domain (empty without
            a dataset).
        clusters: X-Means clusters, when clustering was requested.
        resumed_from: Name of the latest stage restored from a
            checkpoint, or ``None`` for a cold run.
        records_ingested: Total trace records consumed (including those
            accounted by a restored ingest checkpoint).
    """

    detector: MaliciousDomainDetector
    domains: list[str]
    scores: np.ndarray
    verdicts: np.ndarray
    clusters: list[DomainCluster] | None = None
    resumed_from: str | None = None
    records_ingested: int = 0


def _load_shared_graphs(
    directory: Path,
) -> tuple[BipartiteGraph, BipartiteGraph, BipartiteGraph]:
    """Load the three bipartite graphs, re-linking one shared left table.

    The graphs were built over a single domain interner; persistence
    writes each graph's (identical) copy of it, so the loader restores
    one authoritative table and rebinds the other two graphs to it —
    ``fold_records_into_graphs`` requires that identity on resume.
    """
    host, ip_graph, time_graph = (
        load_bipartite_graph(directory / name) for name in _GRAPH_FILES
    )
    shared = host.left
    for other in (ip_graph, time_graph):
        if len(other.left) != len(shared):
            raise ArtifactIntegrityError(
                f"checkpointed graphs under {directory} disagree on the "
                "shared domain table"
            )
    ip_graph = BipartiteGraph(
        kind=ip_graph.kind,
        left=shared,
        right=ip_graph.right,
        edges=ip_graph.edges,
    )
    time_graph = BipartiteGraph(
        kind=time_graph.kind,
        left=shared,
        right=time_graph.right,
        edges=time_graph.edges,
    )
    return host, ip_graph, time_graph


class CheckpointedPipeline:
    """Runs the detection pipeline chunked, checkpointed, and resumable.

    Typical use::

        ckpt = PipelineCheckpointer(dir, pipeline_fingerprint(config, src))
        pipe = CheckpointedPipeline(config, checkpointer=ckpt, dhcp=dhcp)
        outcome = pipe.run(trace_path, dataset_for, resume=True)

    Without a checkpointer this is still the memory-bounded chunked
    execution path (nothing is persisted); with one, every stage lands
    a checkpoint and ``resume=True`` restarts after the last complete
    stage.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        ingest: IngestConfig | None = None,
        checkpointer: PipelineCheckpointer | None = None,
        dhcp: DhcpLog | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.ingest = ingest or IngestConfig()
        self.ingest.validate()
        self.checkpointer = checkpointer
        self._identity = (
            HostIdentityResolver(dhcp) if dhcp is not None else None
        )
        self.resumed_from: str | None = None

    # -- stage helpers ---------------------------------------------------

    def _restorable(self, stage: str, resume: bool) -> bool:
        return (
            resume
            and self.checkpointer is not None
            and self.checkpointer.has(stage)
        )

    def _save_graphs(
        self,
        stage: str,
        graphs: tuple[BipartiteGraph, BipartiteGraph, BipartiteGraph],
        meta: Mapping[str, object],
        extra: Callable[[Path], None] | None = None,
        *,
        complete: bool = True,
    ) -> None:
        assert self.checkpointer is not None

        def populate(staging: Path) -> None:
            for graph, name in zip(graphs, _GRAPH_FILES):
                save_bipartite_graph(graph, staging / name)
            if extra is not None:
                extra(staging)

        self.checkpointer.save(stage, populate, meta, complete=complete)

    def _run_ingest(
        self, trace: str | Path | IO[str], resume: bool
    ) -> tuple[tuple[BipartiteGraph, BipartiteGraph, BipartiteGraph], int]:
        """Chunked graph construction, with rolling checkpoints."""
        ckpt = self.checkpointer
        cursor = 0
        if self._restorable(STAGE_INGEST, resume):
            assert ckpt is not None
            directory, manifest = ckpt.verify(STAGE_INGEST)
            graphs = _load_shared_graphs(directory)
            cursor = int(manifest.meta["cursor"])
            self.resumed_from = STAGE_INGEST
            _log.info(
                "ingest_resumed", cursor=cursor, complete=manifest.complete
            )
            if manifest.complete:
                return graphs, cursor
        else:
            domains = VertexTable()
            graphs = (
                BipartiteGraph(kind="host", left=domains),
                BipartiteGraph(kind="ip", left=domains),
                BipartiteGraph(kind="time", left=domains),
            )
        host, ip_graph, time_graph = graphs
        every = self.ingest.checkpoint_every_chunks
        chunks_since_save = 0
        with ChunkedTraceReader(
            trace, self.ingest.chunk, start_record=cursor
        ) as reader:
            for batch in reader:
                fold_records_into_graphs(
                    batch.records,
                    host,
                    ip_graph,
                    time_graph,
                    identity=self._identity,
                    window_seconds=self.config.time_window_seconds,
                )
                chunks_since_save += 1
                if ckpt is not None and every and chunks_since_save >= every:
                    self._save_graphs(
                        STAGE_INGEST,
                        graphs,
                        {"cursor": reader.cursor},
                        complete=False,
                    )
                    chunks_since_save = 0
            cursor = reader.cursor
        for graph in graphs:
            graph.edges.compact()
        if ckpt is not None:
            self._save_graphs(
                STAGE_INGEST, graphs, {"cursor": cursor}, complete=True
            )
        return graphs, cursor

    # -- the run ---------------------------------------------------------

    def run(
        self,
        trace: str | Path | IO[str],
        dataset_for: Callable[[list[str]], LabeledDataset] | None = None,
        *,
        resume: bool = False,
        cluster_k_max: int | None = None,
        cluster_seed: int = 0,
    ) -> PipelineOutcome:
        """Execute (or resume) the pipeline over ``trace``.

        Args:
            trace: ``dns.log`` path or text stream.
            dataset_for: Maps the surviving domain list to a
                :class:`LabeledDataset` for the classify stage; ``None``
                skips classification (cluster-only runs).
            resume: Restore every existing stage checkpoint and only
                compute what follows. Requires a checkpointer; torn,
                tampered, or configuration-mismatched checkpoints raise
                :class:`~repro.errors.ArtifactIntegrityError`.
            cluster_k_max: When set, run (and checkpoint) the X-Means
                stage with this ``k_max``.
            cluster_seed: Seed for the cluster stage.
        """
        ckpt = self.checkpointer
        if resume and ckpt is None:
            raise IngestError(
                "resume requested without a checkpoint directory"
            )
        self.resumed_from = None
        detector = MaliciousDomainDetector(self.config)
        records_ingested = 0

        # Stages ingest + prune. A complete prune checkpoint supersedes
        # the (much larger) raw ingest graphs, which are never needed
        # downstream — so resume skips loading them entirely.
        if self._restorable(STAGE_PRUNE, resume):
            assert ckpt is not None
            directory, manifest = ckpt.verify(STAGE_PRUNE)
            graphs = _load_shared_graphs(directory)
            with np.load(directory / "domains.npz") as archive:
                order = [str(d) for d in archive["surviving"]]
                report = PruningReport(
                    total_hosts=int(manifest.meta["total_hosts"]),
                    domains_before=int(manifest.meta["domains_before"]),
                    dropped_popular=[
                        str(d) for d in archive["dropped_popular"]
                    ],
                    dropped_single_host=[
                        str(d) for d in archive["dropped_single_host"]
                    ],
                    surviving_domains=set(order),
                )
            detector.adopt_pruned_graphs(*graphs, order, report)
            records_ingested = int(manifest.meta.get("records_ingested", 0))
            self.resumed_from = STAGE_PRUNE
        else:
            graphs, records_ingested = self._run_ingest(trace, resume)
            report = detector.adopt_graphs(*graphs)
            if ckpt is not None:
                assert detector.host_domain is not None
                assert detector.domain_ip is not None
                assert detector.domain_time is not None

                def save_report(staging: Path) -> None:
                    np.savez_compressed(
                        staging / "domains.npz",
                        surviving=np.array(detector.domains, dtype=np.str_),
                        dropped_popular=np.array(
                            report.dropped_popular, dtype=np.str_
                        ),
                        dropped_single_host=np.array(
                            report.dropped_single_host, dtype=np.str_
                        ),
                    )

                self._save_graphs(
                    STAGE_PRUNE,
                    (
                        detector.host_domain,
                        detector.domain_ip,
                        detector.domain_time,
                    ),
                    {
                        "records_ingested": records_ingested,
                        "total_hosts": report.total_hosts,
                        "domains_before": report.domains_before,
                    },
                    save_report,
                )
                ckpt.invalidate_after(STAGE_PRUNE)

        # Stage project.
        if self._restorable(STAGE_PROJECT, resume):
            assert ckpt is not None
            directory, __ = ckpt.verify(STAGE_PROJECT)
            detector.adopt_similarity_graphs(
                {
                    view: load_similarity_graph(
                        directory / f"{view.value}.npz"
                    )
                    for view in _VIEWS
                }
            )
            self.resumed_from = STAGE_PROJECT
        else:
            detector.build_similarity_graphs()
            if ckpt is not None:

                def save_projections(staging: Path) -> None:
                    for view, graph in detector.similarity_graphs.items():
                        save_similarity_graph(
                            graph, staging / f"{view.value}.npz"
                        )

                ckpt.save(
                    STAGE_PROJECT,
                    save_projections,
                    {"domains": len(detector.domains)},
                )
                ckpt.invalidate_after(STAGE_PROJECT)

        # Stage embed.
        if self._restorable(STAGE_EMBED, resume):
            assert ckpt is not None
            directory, __ = ckpt.verify(STAGE_EMBED)
            detector.adopt_feature_space(load_feature_space(directory))
            self.resumed_from = STAGE_EMBED
        else:
            detector.learn_embeddings()
            if ckpt is not None:
                space = detector.feature_space
                assert space is not None
                ckpt.save(
                    STAGE_EMBED,
                    lambda staging: save_feature_space(space, staging),
                    {"dimension": space.query.vectors.shape[1]},
                )
                ckpt.invalidate_after(STAGE_EMBED)

        # Stage classify (skipped entirely without a labeled dataset).
        domains = detector.domains
        scores = np.empty(0, dtype=np.float64)
        verdicts = np.empty(0, dtype=np.int64)
        if dataset_for is not None:
            if self._restorable(STAGE_CLASSIFY, resume):
                assert ckpt is not None
                directory, __ = ckpt.verify(STAGE_CLASSIFY)
                detector.adopt_classifier(
                    load_classifier(directory / "classifier.npz")
                )
                with np.load(directory / "scores.npz") as archive:
                    domains = [str(d) for d in archive["domains"]]
                    scores = np.asarray(archive["scores"], dtype=np.float64)
                    verdicts = np.asarray(
                        archive["verdicts"], dtype=np.int64
                    )
                self.resumed_from = STAGE_CLASSIFY
            else:
                detector.fit(dataset_for(domains))
                scores = detector.decision_scores(domains)
                verdicts = detector.predict(domains)
                if ckpt is not None:
                    classifier = detector.classifier
                    assert classifier is not None

                    def save_classify(staging: Path) -> None:
                        save_classifier(
                            classifier, staging / "classifier.npz"
                        )
                        np.savez_compressed(
                            staging / "scores.npz",
                            domains=np.array(domains, dtype=np.str_),
                            scores=scores,
                            verdicts=verdicts,
                        )

                    ckpt.save(
                        STAGE_CLASSIFY,
                        save_classify,
                        {"domains": len(domains)},
                    )
                    ckpt.invalidate_after(STAGE_CLASSIFY)

        # Stage cluster (opt-in).
        clusters: list[DomainCluster] | None = None
        if cluster_k_max is not None:
            if self._restorable(STAGE_CLUSTER, resume):
                assert ckpt is not None
                directory, __ = ckpt.verify(STAGE_CLUSTER)
                with np.load(directory / "clusters.npz") as archive:
                    labels = np.asarray(archive["labels"], dtype=np.int64)
                    centers = np.asarray(
                        archive["centers"], dtype=np.float64
                    )
                    cluster_ids = np.asarray(
                        archive["cluster_ids"], dtype=np.int64
                    )
                clusters = [
                    DomainCluster(
                        cluster_id=int(cid),
                        domains=[
                            d
                            for d, label in zip(domains, labels)
                            if label == cid
                        ],
                        center=centers[position],
                    )
                    for position, cid in enumerate(cluster_ids)
                ]
                self.resumed_from = STAGE_CLUSTER
            else:
                clusters = detector.cluster(
                    domains, k_max=cluster_k_max, seed=cluster_seed
                )
                if ckpt is not None:
                    index_of = {d: i for i, d in enumerate(domains)}
                    labels = np.full(len(domains), -1, dtype=np.int64)
                    for cluster in clusters:
                        for member in cluster.domains:
                            labels[index_of[member]] = cluster.cluster_id
                    centers = (
                        np.stack([c.center for c in clusters])
                        if clusters
                        else np.empty((0, 0), dtype=np.float64)
                    )
                    cluster_ids = np.array(
                        [c.cluster_id for c in clusters], dtype=np.int64
                    )

                    def save_clusters(staging: Path) -> None:
                        np.savez_compressed(
                            staging / "clusters.npz",
                            labels=labels,
                            centers=centers,
                            cluster_ids=cluster_ids,
                        )

                    ckpt.save(
                        STAGE_CLUSTER,
                        save_clusters,
                        {"clusters": len(clusters)},
                    )

        default_registry().gauge("ingest.peak_rss_mb").set(_peak_rss_mb())
        _log.info(
            "pipeline_done",
            resumed_from=self.resumed_from,
            records=records_ingested,
            domains=len(domains),
            clusters=None if clusters is None else len(clusters),
        )
        return PipelineOutcome(
            detector=detector,
            domains=list(domains),
            scores=scores,
            verdicts=verdicts,
            clusters=clusters,
            resumed_from=self.resumed_from,
            records_ingested=records_ingested,
        )
