"""Checkpointed out-of-core pipeline runner.

:class:`CheckpointedPipeline` executes the shared detection stage graph
(:mod:`repro.core.dataflow`) under the engine's
:class:`~repro.core.stages.CheckpointPolicy`, with the chunked
out-of-core :class:`ChunkedIngestStage` as the graph's source::

    ingest -> prune -> project -> embed -> classify -> cluster

Each stage persists its output through
:class:`~repro.ingest.checkpoint.PipelineCheckpointer`; a crashed or
killed run restarts from its last complete checkpoint with
**byte-identical** outputs to a cold run. Two properties make that
guarantee hold:

* graph accumulation is order-preserving and idempotent under
  checkpoint/restore — the columnar edge buffers dedup to the same
  first-occurrence order whether records arrived in one pass or across
  a save/load boundary, and vertex interners persist their ids exactly;
* every downstream stage is a pure function of its checkpointed inputs
  (projection edge order is canonicalized, LINE is seeded, the SVM and
  X-Means are deterministic), so recomputation from any prefix of
  checkpoints reproduces the suffix bit-for-bit.

The ingest stage additionally writes *rolling* partial checkpoints
(every ``checkpoint_every_chunks`` chunks) carrying the reader's
monotone record cursor, so even a crash mid-ingest loses at most a few
chunks of work rather than the whole pass.
"""

from __future__ import annotations

import resource
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Callable

import numpy as np

from repro.core.clustering import DomainCluster
from repro.core.dataflow import (
    CLUSTERS,
    DECISION_SCORES,
    DOMAIN_ORDER,
    INGEST_CURSOR,
    RAW_GRAPHS,
    RECORDS_INGESTED,
    SCORED_DOMAINS,
    STAGE_EMBED,
    STAGE_INGEST,
    VERDICTS,
    EmbedStage,
    GraphTriple,
    detection_stages,
    load_shared_graphs,
    pipeline_fingerprint,
    write_graph_files,
)
from repro.core.pipeline import MaliciousDomainDetector, PipelineConfig
from repro.core.stages import (
    ArtifactStore,
    CheckpointManifest,
    CheckpointPolicy,
    ExecutionContext,
    Stage,
    StageGraph,
)
from repro.dns.dhcp import DhcpLog, HostIdentityResolver
from repro.errors import IngestError
from repro.graphs.bipartite import BipartiteGraph, fold_records_into_graphs
from repro.graphs.core import VertexTable
from repro.ingest.checkpoint import PipelineCheckpointer
from repro.ingest.chunking import ChunkedTraceReader, ChunkPolicy
from repro.labels.dataset import LabeledDataset
from repro.obs.logging import get_logger
from repro.obs.metrics import default_registry

__all__ = [
    "ChunkedIngestStage",
    "IngestConfig",
    "PipelineOutcome",
    "CheckpointedPipeline",
    "pipeline_fingerprint",
]

_log = get_logger(__name__)


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (ru_maxrss: KiB on Linux, bytes on mac)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1 << 20 if sys.platform == "darwin" else 1 << 10
    return peak / divisor


@dataclass(slots=True)
class IngestConfig:
    """Chunked-ingestion knobs.

    Attributes:
        chunk: Per-chunk record/time bounds.
        checkpoint_every_chunks: Rolling ingest-checkpoint cadence; 0
            disables mid-ingest checkpoints (one is still written when
            ingest completes, if a checkpointer is attached).
    """

    chunk: ChunkPolicy = field(default_factory=ChunkPolicy)
    checkpoint_every_chunks: int = 8

    def validate(self) -> None:
        self.chunk.validate()
        if self.checkpoint_every_chunks < 0:
            raise IngestError(
                "checkpoint_every_chunks must be non-negative, got "
                f"{self.checkpoint_every_chunks}"
            )


@dataclass(slots=True)
class PipelineOutcome:
    """Everything a checkpointed run produced.

    Attributes:
        detector: The fully materialized detector (graphs through
            classifier, depending on the stages that ran).
        domains: Scored domains in canonical (sorted) order.
        scores: ``decision_function`` value per domain (empty when no
            labeled dataset was supplied).
        verdicts: 1 = malicious, 0 = benign, per domain (empty without
            a dataset).
        clusters: X-Means clusters, when clustering was requested.
        resumed_from: Name of the latest stage restored from a
            checkpoint, or ``None`` for a cold run.
        records_ingested: Total trace records consumed (including those
            accounted by a restored ingest checkpoint).
    """

    detector: MaliciousDomainDetector
    domains: list[str]
    scores: np.ndarray
    verdicts: np.ndarray
    clusters: list[DomainCluster] | None = None
    resumed_from: str | None = None
    records_ingested: int = 0


class ChunkedIngestStage(Stage[None, GraphTriple]):
    """Out-of-core graph construction over a chunked trace.

    The checkpointed twin of
    :class:`~repro.core.dataflow.BatchGraphStage`: records stream
    through a :class:`ChunkedTraceReader` whose monotone cursor is
    carried in every checkpoint, so a restored *partial* checkpoint
    makes :meth:`run` continue mid-trace instead of starting over.
    Rolling saves land every ``checkpoint_every_chunks`` chunks while
    the engine's checkpoint policy writes the final complete one.
    """

    name = STAGE_INGEST
    outputs = (RAW_GRAPHS, RECORDS_INGESTED, INGEST_CURSOR)

    def __init__(
        self,
        trace: str | Path | IO[str],
        chunk: ChunkPolicy,
        *,
        checkpoint_every_chunks: int = 8,
        identity: HostIdentityResolver | None = None,
        window_seconds: float = 60.0,
    ) -> None:
        self.trace = trace
        self.chunk = chunk
        self.checkpoint_every_chunks = checkpoint_every_chunks
        self.identity = identity
        self.window_seconds = window_seconds

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        cursor = store.maybe(INGEST_CURSOR) or 0
        graphs = store.maybe(RAW_GRAPHS)
        if graphs is None:
            domains = VertexTable()
            graphs = (
                BipartiteGraph(kind="host", left=domains),
                BipartiteGraph(kind="ip", left=domains),
                BipartiteGraph(kind="time", left=domains),
            )
        host, ip_graph, time_graph = graphs
        ckpt = ctx.checkpointer
        every = self.checkpoint_every_chunks
        chunks_since_save = 0
        with ChunkedTraceReader(
            self.trace, self.chunk, start_record=cursor
        ) as reader:
            for batch in reader:
                fold_records_into_graphs(
                    batch.records,
                    host,
                    ip_graph,
                    time_graph,
                    identity=self.identity,
                    window_seconds=self.window_seconds,
                )
                chunks_since_save += 1
                if ckpt is not None and every and chunks_since_save >= every:
                    ckpt.save(
                        self.name,
                        lambda staging: write_graph_files(staging, graphs),
                        {"cursor": reader.cursor},
                        complete=False,
                    )
                    chunks_since_save = 0
            cursor = reader.cursor
        for graph in graphs:
            graph.edges.compact()
        store.put(RAW_GRAPHS, graphs)
        store.put(RECORDS_INGESTED, cursor)
        store.put(INGEST_CURSOR, cursor)

    def save_artifacts(
        self, staging: Path, store: ArtifactStore
    ) -> dict[str, object]:
        write_graph_files(staging, store.get(RAW_GRAPHS))
        return {"cursor": store.get(INGEST_CURSOR)}

    def load_artifacts(
        self,
        directory: Path,
        manifest: CheckpointManifest,
        store: ArtifactStore,
    ) -> None:
        graphs = load_shared_graphs(directory)
        cursor = int(manifest.meta["cursor"])
        store.put(RAW_GRAPHS, graphs)
        store.put(RECORDS_INGESTED, cursor)
        store.put(INGEST_CURSOR, cursor)
        _log.info("ingest_resumed", cursor=cursor, complete=manifest.complete)


class _FacadeEmbedStage(EmbedStage):
    """Embed by calling the detector facade instead of training inline.

    The checkpointed path historically ran
    :meth:`MaliciousDomainDetector.learn_embeddings`, and callers rely
    on that as an extension point (tests replace it to kill the run at
    the embed boundary). The facade itself executes the shared
    :class:`~repro.core.dataflow.EmbedStage` under its canonical span,
    so this delegating wrapper opts out of tracing to keep the span
    observed exactly once.
    """

    traced = False

    def __init__(self, config: PipelineConfig) -> None:
        super().__init__(config.embedding, config.parallel)
        self.config = config

    def run(self, store: ArtifactStore, ctx: ExecutionContext) -> None:
        detector = MaliciousDomainDetector.from_store(self.config, store)
        detector.learn_embeddings(progress=ctx.progress)


class CheckpointedPipeline:
    """Runs the detection pipeline chunked, checkpointed, and resumable.

    Typical use::

        ckpt = PipelineCheckpointer(dir, pipeline_fingerprint(config, src))
        pipe = CheckpointedPipeline(config, checkpointer=ckpt, dhcp=dhcp)
        outcome = pipe.run(trace_path, dataset_for, resume=True)

    Without a checkpointer this is still the memory-bounded chunked
    execution path (nothing is persisted); with one, every stage lands
    a checkpoint and ``resume=True`` restarts after the last complete
    stage. Either way the run is one
    :meth:`~repro.core.stages.StageGraph.execute` call under the
    engine's checkpoint policy — the same stage objects the batch and
    streaming paths execute.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        ingest: IngestConfig | None = None,
        checkpointer: PipelineCheckpointer | None = None,
        dhcp: DhcpLog | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.ingest = ingest or IngestConfig()
        self.ingest.validate()
        self.checkpointer = checkpointer
        self._identity = (
            HostIdentityResolver(dhcp) if dhcp is not None else None
        )
        self.resumed_from: str | None = None

    def run(
        self,
        trace: str | Path | IO[str],
        dataset_for: Callable[[list[str]], LabeledDataset] | None = None,
        *,
        resume: bool = False,
        cluster_k_max: int | None = None,
        cluster_seed: int = 0,
    ) -> PipelineOutcome:
        """Execute (or resume) the pipeline over ``trace``.

        Args:
            trace: ``dns.log`` path or text stream.
            dataset_for: Maps the surviving domain list to a
                :class:`LabeledDataset` for the classify stage; ``None``
                skips classification (cluster-only runs).
            resume: Restore every existing stage checkpoint and only
                compute what follows. Requires a checkpointer; torn,
                tampered, or configuration-mismatched checkpoints raise
                :class:`~repro.errors.ArtifactIntegrityError`.
            cluster_k_max: When set, run (and checkpoint) the X-Means
                stage with this ``k_max``.
            cluster_seed: Seed for the cluster stage.
        """
        if resume and self.checkpointer is None:
            raise IngestError(
                "resume requested without a checkpoint directory"
            )
        source = ChunkedIngestStage(
            trace,
            self.ingest.chunk,
            checkpoint_every_chunks=self.ingest.checkpoint_every_chunks,
            identity=self._identity,
            window_seconds=self.config.time_window_seconds,
        )
        stages = detection_stages(
            self.config,
            source=source,
            dataset_for=dataset_for,
            score_all=True,
            cluster_k_max=cluster_k_max,
            cluster_seed=cluster_seed,
        )
        graph = StageGraph(
            [
                _FacadeEmbedStage(self.config)
                if stage.name == STAGE_EMBED
                else stage
                for stage in stages
            ]
        )
        store = ArtifactStore()
        report = graph.execute(
            store,
            CheckpointPolicy(resume=resume),
            ExecutionContext(checkpointer=self.checkpointer, resume=resume),
        )
        self.resumed_from = report.resumed_from

        domains = store.maybe(SCORED_DOMAINS)
        if domains is None:
            domains = store.maybe(DOMAIN_ORDER) or []
        scores = store.maybe(DECISION_SCORES)
        if scores is None:
            scores = np.empty(0, dtype=np.float64)
        verdicts = store.maybe(VERDICTS)
        if verdicts is None:
            verdicts = np.empty(0, dtype=np.int64)
        clusters = store.maybe(CLUSTERS)
        records_ingested = store.maybe(RECORDS_INGESTED) or 0

        default_registry().gauge("ingest.peak_rss_mb").set(_peak_rss_mb())
        _log.info(
            "pipeline_done",
            resumed_from=self.resumed_from,
            records=records_ingested,
            domains=len(domains),
            clusters=None if clusters is None else len(clusters),
        )
        return PipelineOutcome(
            detector=MaliciousDomainDetector.from_store(self.config, store),
            domains=list(domains),
            scores=scores,
            verdicts=verdicts,
            clusters=clusters,
            resumed_from=self.resumed_from,
            records_ingested=records_ingested,
        )
