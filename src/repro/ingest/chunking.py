"""Memory-bounded chunked reading of DNS trace sources.

The batch pipeline used to materialize an entire capture as one Python
list before building any graph — fine for a tiny simulated trace,
impossible for the month-of-campus-traffic scale the paper ingests. This
module turns any trace source into a stream of bounded
:class:`RecordBatch` chunks:

* chunks are bounded by **record count** (``max_records``) and, when
  configured, by **trace-time span** (``max_seconds``) — a quiet
  overnight hour and a 9am burst both land in right-sized batches;
* the reader maintains a **monotone cursor** (records consumed since the
  start of the trace), which is what stage checkpoints persist — a
  resumed run skips exactly ``cursor`` records (cheaply, without
  parsing) and continues byte-identically;
* iteration is context-managed end to end: the underlying file handle
  is released when the reader is closed or exhausted, never left to the
  garbage collector.

See ``docs/ingestion.md`` for the full chunking model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, TextIO

from repro.dns.logfmt import DnsTraceReader, TraceRecordIterator
from repro.errors import IngestError
from repro.obs.logging import get_logger
from repro.obs.metrics import default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dns.types import DnsQuery, DnsResponse

__all__ = ["ChunkPolicy", "RecordBatch", "ChunkedTraceReader"]

_log = get_logger(__name__)


@dataclass(slots=True, frozen=True)
class ChunkPolicy:
    """Bounds one ingestion chunk.

    Attributes:
        max_records: Hard per-chunk record cap — the peak-memory knob.
        max_seconds: Optional trace-time span cap: a chunk never covers
            more than this many seconds of capture time, so wall-clock
            aligned checkpoints stay possible even at low traffic rates.
            ``None`` disables the time bound.
    """

    max_records: int = 100_000
    max_seconds: float | None = None

    def validate(self) -> None:
        """Raise :class:`IngestError` on out-of-range bounds."""
        if self.max_records < 1:
            raise IngestError(
                f"chunk max_records must be >= 1, got {self.max_records}"
            )
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise IngestError(
                f"chunk max_seconds must be positive, got {self.max_seconds}"
            )


@dataclass(slots=True)
class RecordBatch:
    """One bounded batch of interleaved trace records.

    Attributes:
        index: Zero-based chunk sequence number.
        records: The parsed records, in capture order.
        start_record: Cursor value *before* this batch (records consumed
            by all earlier batches, including skipped ones on resume).
        end_record: Cursor value after this batch — what a checkpoint
            taken at this boundary persists.
        min_timestamp / max_timestamp: Trace-time span of the batch
            (both 0.0 for an empty trace).
    """

    index: int
    records: list["DnsQuery | DnsResponse"] = field(default_factory=list)
    start_record: int = 0
    end_record: int = 0
    min_timestamp: float = 0.0
    max_timestamp: float = 0.0

    def __len__(self) -> int:
        return len(self.records)


class ChunkedTraceReader:
    """Yields bounded :class:`RecordBatch` chunks from one trace pass.

    One instance makes a single pass; :attr:`cursor` is the monotone
    count of records consumed from the trace so far (including the
    ``start_record`` records skipped on a resumed run). Usable as a
    context manager; :meth:`close` releases the underlying file handle
    even when iteration is abandoned mid-trace.
    """

    def __init__(
        self,
        source: str | Path | TextIO | DnsTraceReader,
        policy: ChunkPolicy | None = None,
        *,
        start_record: int = 0,
    ) -> None:
        """Args:
            source: A trace path / text stream, or an existing
                :class:`DnsTraceReader`.
            policy: Chunk bounds (defaults to :class:`ChunkPolicy`).
            start_record: Resume cursor — this many records are skipped
                (without parsing) before the first batch is assembled.
        """
        self.policy = policy or ChunkPolicy()
        self.policy.validate()
        if start_record < 0:
            raise IngestError(
                f"start_record must be non-negative, got {start_record}"
            )
        if isinstance(source, DnsTraceReader):
            reader = source
        else:
            reader = DnsTraceReader(source)
        self._records: TraceRecordIterator = reader.records()
        self._start_record = start_record
        self._cursor = 0
        self._skipped = False
        self._chunk_index = 0

    @property
    def cursor(self) -> int:
        """Monotone count of trace records consumed so far."""
        return self._cursor

    @property
    def chunks_read(self) -> int:
        """Number of batches yielded so far."""
        return self._chunk_index

    def close(self) -> None:
        """Release the underlying trace file handle (idempotent)."""
        self._records.close()

    @property
    def closed(self) -> bool:
        return self._records.closed

    def __enter__(self) -> "ChunkedTraceReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _skip_to_start(self) -> None:
        if self._skipped:
            return
        self._skipped = True
        if self._start_record == 0:
            return
        skipped = self._records.skip_records(self._start_record)
        if skipped != self._start_record:
            raise IngestError(
                f"resume cursor {self._start_record} lies beyond the trace "
                f"({skipped} records found) — wrong trace for this checkpoint?"
            )
        self._cursor = skipped
        _log.debug("ingest_skipped", records=skipped)

    def __iter__(self) -> Iterator[RecordBatch]:
        self._skip_to_start()
        policy = self.policy
        registry = default_registry()
        records_counter = registry.counter("ingest.records")
        chunks_counter = registry.counter("ingest.chunks")
        pending: "DnsQuery | DnsResponse | None" = None
        while True:
            batch = RecordBatch(
                index=self._chunk_index, start_record=self._cursor
            )
            append = batch.records.append
            first_stamp: float | None = None
            min_stamp = 0.0
            max_stamp = 0.0
            while len(batch.records) < policy.max_records:
                if pending is not None:
                    record, pending = pending, None
                else:
                    try:
                        record = next(self._records)
                    except StopIteration:
                        break
                stamp = record.timestamp
                if first_stamp is None:
                    first_stamp = min_stamp = max_stamp = stamp
                elif (
                    policy.max_seconds is not None
                    and stamp - first_stamp >= policy.max_seconds
                ):
                    # Time bound hit: this record opens the next chunk.
                    pending = record
                    break
                else:
                    min_stamp = min(min_stamp, stamp)
                    max_stamp = max(max_stamp, stamp)
                append(record)
                self._cursor += 1
            if not batch.records:
                self.close()
                return
            batch.end_record = self._cursor
            batch.min_timestamp = min_stamp
            batch.max_timestamp = max_stamp
            self._chunk_index += 1
            records_counter.inc(len(batch.records))
            chunks_counter.inc()
            yield batch
