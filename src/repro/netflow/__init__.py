"""Netflow substrate for cluster traffic-pattern mining (paper §7.2.2)."""

from repro.netflow.flows import FlowRecord, NetflowSimulator
from repro.netflow.patterns import ClusterTrafficPattern, mine_cluster_patterns

__all__ = [
    "ClusterTrafficPattern",
    "FlowRecord",
    "NetflowSimulator",
    "mine_cluster_patterns",
]
