"""Flow-record simulation for the campus edge routers.

Section 7.2.2 of the paper correlates malicious-domain clusters with
netflow records: e.g. one spam cluster's 12 domains share a single IP and
talk to 518 campus hosts on ports 80, 1337, 2710; a C&C cluster's 32
domains share 3 IPs and talk to 8 hosts on port 80.

The simulator derives flows directly from the DNS trace: every resolution
of a malicious domain is followed by a TCP exchange with one of the
resolved addresses on the malware family's characteristic port set, and a
sample of benign resolutions produce ordinary web flows on 80/443.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.dns.psl import default_psl
from repro.dns.names import is_valid_domain_name
from repro.dns.types import DnsResponse
from repro.errors import DomainNameError
from repro.simulation.groundtruth import DomainCategory, GroundTruth

# Characteristic destination-port sets per malware category; the spam set
# matches the paper's observed {80, 1337, 2710}.
_CATEGORY_PORTS: dict[DomainCategory, tuple[int, ...]] = {
    DomainCategory.SPAM: (80, 1337, 2710),
    DomainCategory.PHISHING: (80, 443),
    DomainCategory.CNC: (80,),
    DomainCategory.DGA: (443, 8080),
    DomainCategory.FASTFLUX: (80, 443, 8443),
}
_BENIGN_PORTS = (80, 443)


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One aggregated flow seen at the campus edge."""

    start: float
    src_ip: str
    dst_ip: str
    dst_port: int
    packets: int
    octets: int
    domain: str  # the resolution that triggered the flow (provenance)


class NetflowSimulator:
    """Derives edge-router flows from DNS responses plus ground truth."""

    def __init__(
        self,
        truth: GroundTruth,
        benign_sampling_rate: float = 0.2,
        seed: int = 71,
    ) -> None:
        if not 0.0 <= benign_sampling_rate <= 1.0:
            raise ValueError("benign_sampling_rate must lie in [0, 1]")
        self._truth = truth
        self._benign_rate = benign_sampling_rate
        self._rng = np.random.default_rng(seed)
        self._psl = default_psl()
        self._e2ld_cache: dict[str, str | None] = {}

    def _to_e2ld(self, qname: str) -> str | None:
        cached = self._e2ld_cache.get(qname, "")
        if cached != "":
            return cached
        e2ld: str | None = None
        if is_valid_domain_name(qname):
            try:
                e2ld = self._psl.registered_domain(qname)
            except DomainNameError:
                e2ld = None
        self._e2ld_cache[qname] = e2ld
        return e2ld

    def flows_from(self, responses: Iterable[DnsResponse]) -> Iterator[FlowRecord]:
        """Yield the flows triggered by the given resolutions."""
        for response in responses:
            if response.nxdomain or not response.resolved_ips:
                continue
            e2ld = self._to_e2ld(response.qname)
            if e2ld is None:
                continue
            record = self._truth.get(e2ld)
            if record is not None and record.is_malicious:
                ports = _CATEGORY_PORTS[record.category]
                port = ports[int(self._rng.integers(len(ports)))]
                packets = int(self._rng.integers(4, 60))
            else:
                if self._rng.random() > self._benign_rate:
                    continue
                port = _BENIGN_PORTS[int(self._rng.integers(2))]
                packets = int(self._rng.integers(8, 400))
            dst = response.resolved_ips[
                int(self._rng.integers(len(response.resolved_ips)))
            ]
            yield FlowRecord(
                start=response.timestamp,
                src_ip=response.destination_ip,
                dst_ip=dst,
                dst_port=port,
                packets=packets,
                octets=packets * int(self._rng.integers(60, 1400)),
                domain=e2ld,
            )
