"""Cluster traffic-pattern mining (paper section 7.2.2).

Given discovered domain clusters and the edge-router flow records, this
module reports per-cluster infrastructure patterns: the server IPs the
cluster shares, the destination ports used, and how many campus hosts
communicate with it — the analysis behind the paper's examples (a spam
cluster of 12 domains / 1 IP / 518 hosts / ports 80,1337,2710; a C&C
cluster of 32 domains / 3 IPs / 8 hosts / port 80).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.clustering import DomainCluster
from repro.netflow.flows import FlowRecord


@dataclass(slots=True)
class ClusterTrafficPattern:
    """Infrastructure/traffic profile of one domain cluster."""

    cluster_id: int
    domain_count: int
    server_ips: set[str] = field(default_factory=set)
    destination_ports: set[int] = field(default_factory=set)
    campus_hosts: set[str] = field(default_factory=set)
    flow_count: int = 0
    total_octets: int = 0

    def summary(self) -> str:
        ports = ",".join(str(p) for p in sorted(self.destination_ports))
        return (
            f"cluster {self.cluster_id}: {self.domain_count} domains share "
            f"{len(self.server_ips)} server IP(s), talk to "
            f"{len(self.campus_hosts)} campus host(s) on port(s) {ports} "
            f"({self.flow_count} flows)"
        )


def mine_cluster_patterns(
    clusters: Sequence[DomainCluster],
    flows: Iterable[FlowRecord],
) -> list[ClusterTrafficPattern]:
    """Join flow records onto clusters via the triggering domain."""
    domain_to_cluster: dict[str, int] = {}
    patterns: dict[int, ClusterTrafficPattern] = {}
    for cluster in clusters:
        patterns[cluster.cluster_id] = ClusterTrafficPattern(
            cluster_id=cluster.cluster_id,
            domain_count=len(cluster.domains),
        )
        for domain in cluster.domains:
            domain_to_cluster[domain] = cluster.cluster_id

    for flow in flows:
        cluster_id = domain_to_cluster.get(flow.domain)
        if cluster_id is None:
            continue
        pattern = patterns[cluster_id]
        pattern.server_ips.add(flow.dst_ip)
        pattern.destination_ports.add(flow.dst_port)
        pattern.campus_hosts.add(flow.src_ip)
        pattern.flow_count += 1
        pattern.total_octets += flow.octets
    return [patterns[cluster.cluster_id] for cluster in clusters]


def shared_infrastructure_index(
    flows: Iterable[FlowRecord],
) -> dict[str, set[str]]:
    """Server IP -> set of domains contacted there (diagnostics)."""
    index: dict[str, set[str]] = defaultdict(set)
    for flow in flows:
        index[flow.dst_ip].add(flow.domain)
    return dict(index)
