"""Exception hierarchy for the repro library.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch a single base class at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DnsLogFormatError(ReproError):
    """A DNS or DHCP log line could not be parsed."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        self.line_number = line_number
        self.line = line
        self.reason = reason
        super().__init__(f"line {line_number}: {reason}: {line!r}")


class DomainNameError(ReproError):
    """A string is not a syntactically valid domain name."""


class SimulationConfigError(ReproError):
    """A simulation configuration is inconsistent or out of range."""


class GraphConstructionError(ReproError):
    """A bipartite graph or projection could not be built."""


class EmbeddingError(ReproError):
    """Graph embedding failed (empty graph, bad hyperparameters, ...)."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before fit()."""

    def __init__(self, model_name: str) -> None:
        super().__init__(
            f"{model_name} is not fitted yet; call fit() before using this method"
        )


class DatasetError(ReproError):
    """A labeled dataset could not be assembled or is inconsistent."""


class ArtifactIntegrityError(ReproError):
    """A persisted model artifact failed checksum or schema validation."""


class StageGraphError(ReproError):
    """A stage graph is ill-formed or an artifact dependency is missing."""


class IngestError(ReproError):
    """Chunked ingestion could not proceed (bad bounds, stale cursor)."""
