"""repro: reproduction of "Detecting Malicious Domains with Behavioral
Modeling and Graph Embedding" (Lei et al., ICDCS 2019).

The public API centers on :class:`~repro.core.pipeline.MaliciousDomainDetector`
(DNS logs -> bipartite graphs -> one-mode projections -> LINE embeddings ->
SVM / X-Means) plus the campus-trace simulator and simulated label feeds
that substitute for the paper's proprietary data. See DESIGN.md for the
full system inventory and EXPERIMENTS.md for the reproduced results.
"""

from repro import obs
from repro.core import (
    DomainCluster,
    DomainClusterer,
    FeatureSpace,
    FeatureView,
    MaliciousDomainClassifier,
    MaliciousDomainDetector,
    PipelineConfig,
    expand_from_seeds,
)
from repro.embedding import LineConfig, LineEmbedding, train_line, tsne_embed
from repro.graphs import (
    BipartiteGraph,
    PruningRules,
    SimilarityGraph,
    VertexTable,
    project_to_similarity,
)
from repro.parallel import ParallelConfig
from repro.serve import (
    DomainScorer,
    ModelBundle,
    ModelRegistry,
    ScoringService,
    ServiceConfig,
)
from repro.labels import (
    IntelligenceFeed,
    LabeledDataset,
    SimulatedThreatBook,
    SimulatedVirusTotal,
    build_labeled_dataset,
)
from repro.simulation import SimulatedTrace, SimulationConfig, TraceGenerator

__version__ = "1.0.0"

__all__ = [
    "BipartiteGraph",
    "DomainCluster",
    "DomainClusterer",
    "DomainScorer",
    "FeatureSpace",
    "FeatureView",
    "IntelligenceFeed",
    "LabeledDataset",
    "LineConfig",
    "LineEmbedding",
    "MaliciousDomainClassifier",
    "MaliciousDomainDetector",
    "ModelBundle",
    "ModelRegistry",
    "ParallelConfig",
    "PipelineConfig",
    "ScoringService",
    "ServiceConfig",
    "PruningRules",
    "SimilarityGraph",
    "SimulatedThreatBook",
    "SimulatedTrace",
    "SimulatedVirusTotal",
    "SimulationConfig",
    "TraceGenerator",
    "VertexTable",
    "build_labeled_dataset",
    "expand_from_seeds",
    "obs",
    "project_to_similarity",
    "train_line",
    "tsne_embed",
    "__version__",
]
